//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The relogic build environment has no network access to a crates.io
//! mirror, so the workspace vendors a minimal wall-clock runner with
//! criterion's surface API for the subset the benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `finish`), [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: a warm-up phase estimates the cost of one iteration,
//! the iteration count is then chosen so each sample runs ≈25 ms, and the
//! median over `sample_size` samples is reported (with min/max spread and,
//! when a throughput was declared, elements or bytes per second).

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration workload, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many abstract elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, None, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix, sample size, and declared
/// throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration workload for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<D: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Ends the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

fn run_benchmark(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: grow the iteration count until one batch takes >= 5 ms so
    // the per-iteration estimate is meaningful even for nanosecond bodies.
    let mut iters: u64 = 1;
    let per_iter_ns = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        #[allow(clippy::cast_precision_loss)]
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
            break (b.elapsed.as_nanos() as f64 / iters as f64).max(0.1);
        }
        iters = iters.saturating_mul(4);
    };

    // Aim for ~25 ms per sample.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let sample_iters = ((25e6 / per_iter_ns).ceil() as u64).max(1);
    let mut samples_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            #[allow(clippy::cast_precision_loss)]
            {
                b.elapsed.as_nanos() as f64 / sample_iters as f64
            }
        })
        .collect();
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = samples_ns[samples_ns.len() / 2];
    let (lo, hi) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);

    let mut line = format!(
        "{id:<40} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            #[allow(clippy::cast_precision_loss)]
            let rate = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {} elem/s", format_count(rate)));
        }
        Some(Throughput::Bytes(n)) => {
            #[allow(clippy::cast_precision_loss)]
            let rate = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {}B/s", format_count(rate)));
        }
        None => {}
    }
    println!("{line}");
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn format_count(rate: f64) -> String {
    if rate < 1e3 {
        format!("{rate:.1} ")
    } else if rate < 1e6 {
        format!("{:.2} K", rate / 1e3)
    } else if rate < 1e9 {
        format!("{:.2} M", rate / 1e6)
    } else {
        format!("{:.2} G", rate / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_elapsed_time() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.elapsed > Duration::ZERO || b.iters == 100);
    }

    #[test]
    fn formatting_scales_units() {
        assert_eq!(format_time(12.5), "12.50 ns");
        assert_eq!(format_time(12_500.0), "12.50 us");
        assert_eq!(format_time(12_500_000.0), "12.50 ms");
        assert!(format_count(5e7).ends_with('M'));
    }
}
