//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The relogic build environment has no network access to a crates.io
//! mirror, so the workspace vendors a minimal property-testing harness that
//! keeps proptest's surface syntax for the subset the test suites use:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, and `boxed`;
//! * strategies for numeric ranges, tuples (up to arity 10), [`any`],
//!   [`Just`], [`collection::vec`], and [`Union`] (via [`prop_oneof!`]);
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support, and
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`].
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (derived from the test's name), there is **no shrinking**
//! (a failing case is reported verbatim), and `prop_assert*` panic rather
//! than returning `Err`.

#![warn(clippy::all)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Everything a test module normally imports from proptest.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Runner configuration. Only `cases` is honoured by this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Per-test driver: owns the deterministic RNG the strategies draw from.
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
    cases: u32,
}

impl TestRunner {
    /// Creates a runner for the named test; the name seeds the RNG so each
    /// test sees a stable, independent case sequence.
    #[must_use]
    pub fn new(config: &ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(h),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG strategies sample from.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// produces one more level from the strategy for the level below. The
    /// result nests at most `depth` levels (sizes are bounded by
    /// construction, so `desired_size`/`expected_branch_size` are accepted
    /// for signature compatibility but unused).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            // Mostly recurse, sometimes bottom out early: weights 1:3.
            strat = Union {
                arms: vec![(1, self.clone().boxed()), (3, deeper)],
            }
            .boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut SmallRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut SmallRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable [`Strategy`].
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between strategies of a common value type; what
/// [`prop_oneof!`] builds.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug> Union<T> {
    /// Equal-weight union of the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union {
            arms: arms.into_iter().map(|s| (1, s)).collect(),
        }
    }

    /// Weighted union of the given strategies.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|&(w, _)| w > 0), "all weights are zero");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        let total: u32 = self.arms.iter().map(|&(w, _)| w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Strategy that always yields a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn arbitrary(rng: &mut SmallRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        rng.gen_range(0.0f64..=1.0)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
    A.0, B.1, C.2, D.3, E.4
)(A.0, B.1, C.2, D.3, E.4, F.5)(
    A.0, B.1, C.2, D.3, E.4, F.5, G.6
)(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)(
    A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8
)(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9));

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a size range.
    pub trait IntoSizeRange {
        /// Inclusive lower and upper length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Chooses between strategies (optionally `weight => strategy` arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(&config, stringify!($name));
                // A tuple of strategies is itself a strategy for a tuple.
                let strategies = ( $( ($strat), )+ );
                for case in 0..runner.cases() {
                    let values = $crate::Strategy::sample(&strategies, runner.rng());
                    let described = format!("{values:?}");
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || {
                            let ( $($pat,)+ ) = values;
                            $body
                        },
                    ));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {case} (no shrinking) with input {described}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRunner;

    #[test]
    fn union_respects_weights_roughly() {
        let mut runner = TestRunner::new(&ProptestConfig::with_cases(1), "w");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| s.sample(runner.rng())).count();
        assert!(hits > 800, "{hits}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.0f64..=0.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=0.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn mapped_values_compose(n in (0u8..10).prop_map(|b| u32::from(b) * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }
    }
}
