//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The relogic build environment has no network access to a crates.io
//! mirror, so the workspace vendors the small slice of the rand 0.8 API it
//! actually uses:
//!
//! * [`RngCore`] / [`SeedableRng`] — the core generator traits.
//! * [`Rng`] — the user-facing extension trait (`gen`, `gen_range`,
//!   `gen_bool`), blanket-implemented for every [`RngCore`].
//! * [`rngs::SmallRng`] — xoshiro256++, the same algorithm real rand 0.8
//!   uses for `SmallRng` on 64-bit targets, seeded from a `u64` via
//!   SplitMix64 exactly like `rand_core`'s default `seed_from_u64`.
//!
//! The implementation is deterministic and dependency-free. It is **not**
//! cryptographically secure and makes no attempt to match the real crate's
//! output streams bit-for-bit beyond `SmallRng`; it exists so the workspace
//! builds and tests offline.

#![warn(missing_docs)]
#![warn(clippy::all)]

/// The core of a random number generator: uniform words and byte fills.
pub trait RngCore {
    /// Returns the next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through SplitMix64
    /// (the same construction `rand_core` 0.6 documents for its default
    /// implementation).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// mixed output word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the algorithm
    /// real rand 0.8 uses for `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

/// Sampling distributions.
pub mod distributions {
    use super::RngCore;

    /// A distribution that can produce values of `T` from a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: uniform over all values for
    /// integers and `bool`, uniform over `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            super::unit_f64_open(rng)
        }
    }

    impl Distribution<f32> for Standard {
        #[allow(clippy::cast_possible_truncation)]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            super::unit_f64_open(rng) as f32
        }
    }

    /// Uniform range sampling.
    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can be sampled uniformly.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            ///
            /// # Panics
            ///
            /// Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Maps a uniform `u64` onto `[0, span)` by widening multiply
        /// (Lemire reduction without the rejection step; the bias is
        /// ≤ 2⁻⁶⁴·span, irrelevant for simulation workloads).
        #[inline]
        #[allow(clippy::cast_possible_truncation)]
        pub(crate) fn reduce(word: u64, span: u64) -> u64 {
            ((u128::from(word) * u128::from(span)) >> 64) as u64
        }

        macro_rules! int_range {
            ($($t:ty => $u:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                        let v = reduce(rng.next_u64(), span);
                        (self.start as $u).wrapping_add(v as $u) as $t
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                        // span == 0 means the range covers the whole 64-bit
                        // domain, so the raw word is already uniform.
                        let v = if span == 0 {
                            rng.next_u64()
                        } else {
                            reduce(rng.next_u64(), span)
                        };
                        (start as $u).wrapping_add(v as $u) as $t
                    }
                }
            )*};
        }
        int_range!(
            u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
            i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
        );

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = super::super::unit_f64_open(rng);
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = super::super::unit_f64_closed(rng);
                start + (end - start) * u
            }
        }
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one word.
#[inline]
#[allow(clippy::cast_precision_loss)]
fn unit_f64_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Uniform `f64` in `[0, 1]` (both endpoints reachable).
#[inline]
#[allow(clippy::cast_precision_loss)]
fn unit_f64_closed<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_991.0)
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the type's [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        unit_f64_open(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// Re-exported so `use rand::distributions::...` call sites and the trait
// bounds above stay importable the way real rand lays them out.
pub use distributions::uniform::SampleRange;
pub use distributions::{Distribution, Standard};

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mean_of_uniform_words_is_centered() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mut acc = 0f64;
        for _ in 0..n {
            acc += (rng.next_u64() >> 40) as f64;
        }
        let mean = acc / f64::from(n) / f64::from(1u32 << 24);
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        #[allow(clippy::cast_precision_loss)]
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.01, "{rate}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(3..=6);
            assert!((3..=6).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bool_samples_are_balanced() {
        let mut rng = SmallRng::seed_from_u64(5);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..=5_500).contains(&ones), "{ones}");
    }
}
