//! Bridge between [`relogic_netlist::Circuit`] and the BDD manager:
//! variable ordering, whole-circuit symbolic construction, and targeted
//! cone rebuilds with an auxiliary variable (the primitive behind exact
//! observability analysis).

use crate::{BddManager, BddRef, Var};
use relogic_netlist::{Circuit, GateKind, NodeId};

/// A mapping from primary-input position to BDD variable index.
///
/// # Examples
///
/// ```
/// use relogic_bdd::VarOrder;
/// use relogic_netlist::Circuit;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.and([b, a]);
/// c.add_output("y", g);
///
/// let natural = VarOrder::natural(&c);
/// assert_eq!(natural.var_of_position(0), 0);
/// let dfs = VarOrder::dfs(&c);
/// assert_eq!(dfs.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarOrder {
    /// `var_of[pos]` is the BDD variable assigned to input position `pos`.
    var_of: Vec<Var>,
}

impl VarOrder {
    /// Declaration order: input position `i` becomes variable `i`.
    #[must_use]
    pub fn natural(circuit: &Circuit) -> Self {
        VarOrder {
            var_of: (0..circuit.input_count())
                .map(|i| Var::try_from(i).expect("input count overflow"))
                .collect(),
        }
    }

    /// Depth-first order: inputs are numbered by first appearance in a DFS
    /// from the outputs, which keeps related inputs adjacent and usually
    /// yields far smaller BDDs on structured logic than declaration order.
    #[must_use]
    pub fn dfs(circuit: &Circuit) -> Self {
        let mut var_of = vec![Var::MAX; circuit.input_count()];
        let mut next: Var = 0;
        let mut visited = vec![false; circuit.len()];
        let mut stack: Vec<NodeId> = circuit.outputs().iter().rev().map(|o| o.node()).collect();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut visited[id.index()], true) {
                continue;
            }
            let node = circuit.node(id);
            if node.kind() == GateKind::Input {
                let pos = circuit
                    .input_position(id)
                    .expect("input node has a position");
                if var_of[pos] == Var::MAX {
                    var_of[pos] = next;
                    next += 1;
                }
            }
            for &f in node.fanins().iter().rev() {
                stack.push(f);
            }
        }
        // Inputs unreachable from any output get the remaining variables.
        for slot in &mut var_of {
            if *slot == Var::MAX {
                *slot = next;
                next += 1;
            }
        }
        VarOrder { var_of }
    }

    /// Fanin-weight order: each output carries weight 1.0, split evenly
    /// down its fanin cone in reverse topological order, and inputs are
    /// numbered by descending accumulated weight (declaration position as
    /// the tie-break, so the order is deterministic).
    ///
    /// Inputs feeding many outputs through shallow logic accumulate large
    /// weights and land near the top of the order — the classic static
    /// heuristic for reconvergent circuits, complementing [`VarOrder::dfs`]
    /// (which optimizes for locality rather than influence).
    #[must_use]
    pub fn weighted(circuit: &Circuit) -> Self {
        let mut weight = vec![0.0f64; circuit.len()];
        for out in circuit.outputs() {
            weight[out.node().index()] += 1.0;
        }
        // Nodes are stored in topological order, so a reverse scan sees
        // every node after all of its fanouts.
        for idx in (0..circuit.len()).rev() {
            let node = circuit.node(NodeId::from_index(idx));
            let fanins = node.fanins();
            if fanins.is_empty() || weight[idx] == 0.0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let share = weight[idx] / fanins.len() as f64;
            for f in fanins {
                weight[f.index()] += share;
            }
        }
        let mut by_weight: Vec<(usize, f64)> = (0..circuit.input_count())
            .map(|pos| {
                let id = circuit.inputs()[pos];
                (pos, weight[id.index()])
            })
            .collect();
        by_weight.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut var_of = vec![Var::MAX; circuit.input_count()];
        for (rank, (pos, _)) in by_weight.into_iter().enumerate() {
            var_of[pos] = Var::try_from(rank).expect("input count overflow");
        }
        VarOrder { var_of }
    }

    /// Number of inputs covered by this order.
    #[must_use]
    pub fn len(&self) -> usize {
        self.var_of.len()
    }

    /// Returns `true` if the order covers no inputs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.var_of.is_empty()
    }

    /// The BDD variable assigned to input position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[must_use]
    pub fn var_of_position(&self, pos: usize) -> Var {
        self.var_of[pos]
    }

    /// Translates a probability vector indexed by input position into one
    /// indexed by BDD variable (padding extra variables with `pad`).
    #[must_use]
    pub fn permute_probs(&self, by_position: &[f64], var_count: usize, pad: f64) -> Vec<f64> {
        assert_eq!(by_position.len(), self.var_of.len());
        let mut by_var = vec![pad; var_count];
        for (pos, &v) in self.var_of.iter().enumerate() {
            by_var[v as usize] = by_position[pos];
        }
        by_var
    }
}

/// Returned by [`CircuitBdds::try_build_budgeted`] when the base circuit
/// construction exceeds its live-node budget.
///
/// The construction sequence is deterministic (node order, operand order,
/// and manager state are pure functions of the circuit and variable
/// order), so for a given `(circuit, order, budget)` either every build
/// exceeds the budget at the same gate or none does — the error is
/// reproducible and independent of thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildBudgetExceeded {
    /// Live decision nodes when the budget check tripped.
    pub live_nodes: usize,
    /// The configured budget.
    pub budget: usize,
}

impl std::fmt::Display for BuildBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BDD build exceeded its live-node budget ({} live nodes > {})",
            self.live_nodes, self.budget
        )
    }
}

impl std::error::Error for BuildBudgetExceeded {}

/// Why an interruptible budgeted build stopped early.
///
/// The crate stays dependency-free of the cancellation layer: callers hand
/// [`CircuitBdds::try_build_interruptible`] a polling closure and get this
/// back, mapping `Interrupted` onto their own typed cancellation error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildInterrupt {
    /// The live-node budget tripped (deterministic per circuit/order).
    Budget(BuildBudgetExceeded),
    /// The caller's interrupt poll returned `true` (deadline, disconnect,
    /// drain — whatever the caller's token encodes).
    Interrupted,
}

impl std::fmt::Display for BuildInterrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildInterrupt::Budget(e) => write!(f, "{e}"),
            BuildInterrupt::Interrupted => write!(f, "BDD build interrupted by caller"),
        }
    }
}

impl std::error::Error for BuildInterrupt {}

/// Symbolic representation of a circuit: one BDD per node, over the
/// primary-input variables.
#[derive(Debug)]
pub struct CircuitBdds {
    funcs: Vec<BddRef>,
    order: VarOrder,
}

impl CircuitBdds {
    /// Builds BDDs for every node of `circuit` in topological order.
    ///
    /// The manager must have at least `order.len()` variables; extra
    /// variables (e.g. a pre-allocated observability auxiliary) are fine.
    ///
    /// # Panics
    ///
    /// Panics if the manager has fewer variables than the order requires.
    #[must_use]
    pub fn build(manager: &mut BddManager, circuit: &Circuit, order: &VarOrder) -> Self {
        assert!(manager.var_count() >= order.len());
        let mut funcs: Vec<BddRef> = Vec::with_capacity(circuit.len());
        for (id, node) in circuit.iter() {
            let f = match node.kind() {
                GateKind::Input => {
                    let pos = circuit
                        .input_position(id)
                        .expect("input node has a position");
                    manager.var(order.var_of_position(pos))
                }
                kind => build_gate(manager, kind, node.fanins(), &funcs),
            };
            funcs.push(f);
        }
        CircuitBdds {
            funcs,
            order: order.clone(),
        }
    }

    /// Like [`CircuitBdds::build`], but checks the manager's live-node
    /// count after every gate and aborts once it exceeds `budget`.
    ///
    /// This is the enforcement point for tiered estimation: the *base*
    /// construction is the deterministic part of exact analysis (every
    /// worker replays the identical sequence), so a budget enforced here
    /// trips identically for every thread count — and it is where
    /// multiplier-class circuits (c6288) blow up in the first place.
    ///
    /// # Errors
    ///
    /// [`BuildBudgetExceeded`] as soon as the live-node count passes
    /// `budget`; the partially-built functions are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the manager has fewer variables than the order requires.
    pub fn try_build_budgeted(
        manager: &mut BddManager,
        circuit: &Circuit,
        order: &VarOrder,
        budget: usize,
    ) -> Result<Self, BuildBudgetExceeded> {
        match Self::try_build_interruptible(manager, circuit, order, budget, &mut || false) {
            Ok(bdds) => Ok(bdds),
            Err(BuildInterrupt::Budget(e)) => Err(e),
            Err(BuildInterrupt::Interrupted) => unreachable!("the never-interrupt poll"),
        }
    }

    /// [`CircuitBdds::try_build_budgeted`] with a caller-supplied interrupt
    /// poll, consulted at the same per-gate point as the live-node budget —
    /// the allocation/ite hot path's existing bookkeeping stop, so the
    /// added cost is one predictable branch per gate.
    ///
    /// The poll must be cheap (the cancellation layer's `is_cancelled()`
    /// is a couple of relaxed atomic loads) and *read-only*: interrupting
    /// never changes what a completed build produces, only whether it
    /// completes.
    ///
    /// # Errors
    ///
    /// [`BuildInterrupt::Budget`] as soon as the live-node count passes
    /// `budget`, [`BuildInterrupt::Interrupted`] as soon as `interrupt`
    /// returns `true`; the partially-built functions are dropped either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if the manager has fewer variables than the order requires.
    pub fn try_build_interruptible(
        manager: &mut BddManager,
        circuit: &Circuit,
        order: &VarOrder,
        budget: usize,
        interrupt: &mut dyn FnMut() -> bool,
    ) -> Result<Self, BuildInterrupt> {
        assert!(manager.var_count() >= order.len());
        let mut funcs: Vec<BddRef> = Vec::with_capacity(circuit.len());
        for (id, node) in circuit.iter() {
            let f = match node.kind() {
                GateKind::Input => {
                    let pos = circuit
                        .input_position(id)
                        .expect("input node has a position");
                    manager.var(order.var_of_position(pos))
                }
                kind => build_gate(manager, kind, node.fanins(), &funcs),
            };
            funcs.push(f);
            let live = manager.live_node_count();
            if live > budget {
                return Err(BuildInterrupt::Budget(BuildBudgetExceeded {
                    live_nodes: live,
                    budget,
                }));
            }
            if interrupt() {
                return Err(BuildInterrupt::Interrupted);
            }
        }
        Ok(CircuitBdds {
            funcs,
            order: order.clone(),
        })
    }

    /// The function computed by `node`.
    #[must_use]
    pub fn func(&self, node: NodeId) -> BddRef {
        self.funcs[node.index()]
    }

    /// Functions for all nodes, indexed by [`NodeId::index`].
    #[must_use]
    pub fn funcs(&self) -> &[BddRef] {
        &self.funcs
    }

    /// The variable order the functions were built under.
    #[must_use]
    pub fn order(&self) -> &VarOrder {
        &self.order
    }

    /// Rebuilds the functions in the fanout cone of `target`, with the
    /// target node's function replaced by the variable `aux`.
    ///
    /// Returns a full function vector: nodes outside the cone keep their
    /// original function. This is the workhorse of exact observability —
    /// the output functions become functions of the PIs *and* the value at
    /// `target`, so `∂y/∂aux` is the observability predicate of `target`.
    ///
    /// # Panics
    ///
    /// Panics if `aux` is not a valid variable of `manager`, or if `aux`
    /// collides with a primary-input variable.
    #[must_use]
    pub fn with_aux_at(
        &self,
        manager: &mut BddManager,
        circuit: &Circuit,
        target: NodeId,
        aux: Var,
    ) -> Vec<BddRef> {
        assert!(
            (aux as usize) < manager.var_count(),
            "auxiliary variable out of range"
        );
        assert!(
            (0..self.order.len()).all(|p| self.order.var_of_position(p) != aux),
            "auxiliary variable collides with a primary input"
        );
        let mut funcs = self.funcs.clone();
        let mut dirty = vec![false; circuit.len()];
        funcs[target.index()] = manager.var(aux);
        dirty[target.index()] = true;
        for (id, node) in circuit.iter() {
            if id == target || !node.kind().is_gate() {
                continue;
            }
            if node.fanins().iter().any(|f| dirty[f.index()]) {
                funcs[id.index()] = build_gate(manager, node.kind(), node.fanins(), &funcs);
                dirty[id.index()] = true;
            }
        }
        funcs
    }

    /// Boolean difference of `gate`'s *local* function with respect to its
    /// fanin `wrt`: the predicate (over primary inputs) that flipping the
    /// value on the `wrt` pins flips the gate's output.
    ///
    /// Built as `f_gate[wrt ← 1] ⊕ f_gate[wrt ← 0]` over the base fanin
    /// functions, which stays exact when the gate reads `wrt` on several
    /// pins. This is the chain-rule factor for exact observability on
    /// fanout-free paths: if `wrt`'s only observer is `gate`, then
    /// `∂y/∂wrt = local_difference(gate, wrt) ∧ ∂y/∂gate`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not actually a gate or does not read `wrt`.
    #[must_use]
    pub fn local_difference(
        &self,
        manager: &mut BddManager,
        circuit: &Circuit,
        gate: NodeId,
        wrt: NodeId,
    ) -> BddRef {
        let node = circuit.node(gate);
        assert!(
            node.kind().is_gate(),
            "local_difference target must be a gate"
        );
        assert!(
            node.fanins().contains(&wrt),
            "gate does not read the differentiation node"
        );
        let with = |manager: &mut BddManager, value: BddRef| {
            let lookup: Vec<BddRef> = node
                .fanins()
                .iter()
                .map(|&f| {
                    if f == wrt {
                        value
                    } else {
                        self.funcs[f.index()]
                    }
                })
                .collect();
            let pins: Vec<NodeId> = (0..lookup.len()).map(NodeId::from_index).collect();
            build_gate(manager, node.kind(), &pins, &lookup)
        };
        let hi = with(manager, BddRef::TRUE);
        let lo = with(manager, BddRef::FALSE);
        manager.xor(hi, lo)
    }

    /// Boolean difference of `dom`'s function with respect to the value at
    /// `target`, where `dom` post-dominates `target` in the circuit DAG
    /// (every path from `target` to any output runs through `dom`).
    ///
    /// Splices `aux` in at `target` and rebuilds **only** the nodes inside
    /// the reconvergence region — the intersection of `target`'s fanout
    /// cone with `dom`'s fanin cone — then reads `∂f_dom/∂aux`. Because
    /// reconvergent fanout in real netlists is local, the region is
    /// typically a handful of gates, which makes this the cheap middle
    /// ground between [`CircuitBdds::local_difference`] (single observer)
    /// and a full-cone splice (no post-dominator short of the outputs).
    ///
    /// This is the generalized chain-rule factor: if `dom` post-dominates
    /// `target`, then `∂y/∂target = region_difference(target, dom) ∧
    /// ∂y/∂dom` for every output `y`.
    ///
    /// # Panics
    ///
    /// Panics if `aux` collides with a primary-input variable or is out of
    /// range, or if `dom` does not come after `target` in topological
    /// order.
    #[must_use]
    pub fn region_difference(
        &self,
        manager: &mut BddManager,
        circuit: &Circuit,
        target: NodeId,
        dom: NodeId,
        aux: Var,
    ) -> BddRef {
        assert!(
            (aux as usize) < manager.var_count(),
            "auxiliary variable out of range"
        );
        assert!(target.index() < dom.index(), "dominator must follow target");
        // Fanin cone of `dom`, truncated at `target` (nothing below the
        // splice point can become dirty).
        let mut in_cone = vec![false; dom.index() + 1];
        in_cone[dom.index()] = true;
        let mut stack = vec![dom];
        while let Some(id) = stack.pop() {
            for &f in circuit.node(id).fanins() {
                if f.index() >= target.index() && !std::mem::replace(&mut in_cone[f.index()], true)
                {
                    stack.push(f);
                }
            }
        }
        let mut funcs = self.funcs.clone();
        let mut dirty = vec![false; dom.index() + 1];
        funcs[target.index()] = manager.var(aux);
        dirty[target.index()] = true;
        for idx in target.index() + 1..=dom.index() {
            if !in_cone[idx] {
                continue;
            }
            let id = NodeId::from_index(idx);
            let node = circuit.node(id);
            if node.kind().is_gate() && node.fanins().iter().any(|f| dirty[f.index()]) {
                funcs[idx] = build_gate(manager, node.kind(), node.fanins(), &funcs);
                dirty[idx] = true;
            }
        }
        manager.boolean_difference(funcs[dom.index()], aux)
    }
}

fn build_gate(
    manager: &mut BddManager,
    kind: GateKind,
    fanins: &[NodeId],
    funcs: &[BddRef],
) -> BddRef {
    let f = |i: usize| funcs[fanins[i].index()];
    match kind {
        GateKind::Input => unreachable!("inputs handled by caller"),
        GateKind::Const(v) => BddManager::constant(v),
        GateKind::Buf => f(0),
        GateKind::Not => manager.not(f(0)),
        GateKind::And => {
            let all = (0..fanins.len()).map(f).collect::<Vec<_>>();
            manager.and_all(all)
        }
        GateKind::Nand => {
            let all = (0..fanins.len()).map(f).collect::<Vec<_>>();
            let a = manager.and_all(all);
            manager.not(a)
        }
        GateKind::Or => {
            let all = (0..fanins.len()).map(f).collect::<Vec<_>>();
            manager.or_all(all)
        }
        GateKind::Nor => {
            let all = (0..fanins.len()).map(f).collect::<Vec<_>>();
            let a = manager.or_all(all);
            manager.not(a)
        }
        GateKind::Xor => (0..fanins.len())
            .map(f)
            .collect::<Vec<_>>()
            .into_iter()
            .fold(BddRef::FALSE, |acc, g| manager.xor(acc, g)),
        GateKind::Xnor => {
            let x = (0..fanins.len())
                .map(f)
                .collect::<Vec<_>>()
                .into_iter()
                .fold(BddRef::FALSE, |acc, g| manager.xor(acc, g));
            manager.not(x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new("fa");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let cin = c.add_input("cin");
        let s1 = c.xor([a, b]);
        let sum = c.xor([s1, cin]);
        let c1 = c.and([a, b]);
        let c2 = c.and([s1, cin]);
        let cout = c.or([c1, c2]);
        c.add_output("sum", sum);
        c.add_output("cout", cout);
        c
    }

    #[test]
    fn interruptible_build_stops_at_the_per_gate_check() {
        let c = full_adder();
        let order = VarOrder::natural(&c);
        // Interrupt poll fires on the very first gate check.
        let mut m = BddManager::new(order.len());
        let err =
            CircuitBdds::try_build_interruptible(&mut m, &c, &order, usize::MAX, &mut || true)
                .unwrap_err();
        assert_eq!(err, BuildInterrupt::Interrupted);
        // A never-firing poll builds the identical functions as the plain
        // budgeted build (interruption is read-only).
        let mut m1 = BddManager::new(order.len());
        let a = CircuitBdds::try_build_budgeted(&mut m1, &c, &order, usize::MAX).unwrap();
        let mut m2 = BddManager::new(order.len());
        let b =
            CircuitBdds::try_build_interruptible(&mut m2, &c, &order, usize::MAX, &mut || false)
                .unwrap();
        assert_eq!(a.funcs(), b.funcs());
        // The budget branch still wins its own error type through the
        // interruptible path.
        let mut m3 = BddManager::new(order.len());
        let err = CircuitBdds::try_build_interruptible(&mut m3, &c, &order, 0, &mut || false)
            .unwrap_err();
        assert!(matches!(err, BuildInterrupt::Budget(_)), "{err:?}");
    }

    #[test]
    fn circuit_bdds_match_scalar_eval() {
        let c = full_adder();
        let order = VarOrder::natural(&c);
        let mut m = BddManager::new(order.len());
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|j| p >> j & 1 != 0).collect();
            let expect = c.eval(&bits);
            for (k, out) in c.outputs().iter().enumerate() {
                assert_eq!(
                    m.eval(bdds.func(out.node()), &bits),
                    expect[k],
                    "pattern {p:03b} output {k}"
                );
            }
        }
    }

    #[test]
    fn dfs_order_matches_semantics_too() {
        let c = full_adder();
        let order = VarOrder::dfs(&c);
        let mut m = BddManager::new(order.len());
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|j| p >> j & 1 != 0).collect();
            // Permute the assignment into variable space.
            let mut asg = vec![false; 3];
            for (pos, &bit) in bits.iter().enumerate() {
                asg[order.var_of_position(pos) as usize] = bit;
            }
            let expect = c.eval(&bits);
            for (k, out) in c.outputs().iter().enumerate() {
                assert_eq!(m.eval(bdds.func(out.node()), &asg), expect[k]);
            }
        }
    }

    #[test]
    fn signal_probabilities_from_bdds() {
        let c = full_adder();
        let order = VarOrder::natural(&c);
        let mut m = BddManager::new(order.len());
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        // sum = a^b^cin has probability 1/2; cout = majority has 1/2.
        let sum = bdds.func(c.outputs()[0].node());
        let cout = bdds.func(c.outputs()[1].node());
        assert!((m.probability_uniform(sum) - 0.5).abs() < 1e-12);
        assert!((m.probability_uniform(cout) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aux_rebuild_gives_observability() {
        // y = (a & b) | c ; the AND gate is observable iff c = 0.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let y = c.or([g, x]);
        c.add_output("y", y);
        let order = VarOrder::natural(&c);
        let mut m = BddManager::new(order.len() + 1);
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        let aux = 3;
        let funcs = bdds.with_aux_at(&mut m, &c, g, aux);
        let oy = funcs[y.index()];
        let diff = m.boolean_difference(oy, aux);
        // observability predicate = !c, probability 1/2
        let nc = {
            let cv = m.var(2);
            m.not(cv)
        };
        assert_eq!(diff, nc);
        let probs = vec![0.5, 0.5, 0.5, 0.5];
        assert!((m.probability(diff, &probs) - 0.5).abs() < 1e-12);
        // nodes outside the cone are untouched
        assert_eq!(funcs[a.index()], bdds.func(a));
    }

    #[test]
    fn aux_rebuild_handles_multiple_outputs() {
        let c = full_adder();
        let order = VarOrder::natural(&c);
        let mut m = BddManager::new(order.len() + 1);
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        let s1 = relogic_netlist::NodeId::from_index(3); // a ^ b
        let funcs = bdds.with_aux_at(&mut m, &c, s1, 3);
        // s1 feeds sum (xor: always observable) and c2->cout.
        let sum_f = funcs[c.outputs()[0].node().index()];
        let d = m.boolean_difference(sum_f, 3);
        assert_eq!(d, BddRef::TRUE);
    }

    #[test]
    fn weighted_order_matches_semantics_and_ranks_influence() {
        let c = full_adder();
        let order = VarOrder::weighted(&c);
        assert_eq!(order.len(), 3);
        // All three variables assigned, all distinct.
        let mut seen: Vec<Var> = (0..3).map(|p| order.var_of_position(p)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        let mut m = BddManager::new(order.len());
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|j| p >> j & 1 != 0).collect();
            let mut asg = vec![false; 3];
            for (pos, &bit) in bits.iter().enumerate() {
                asg[order.var_of_position(pos) as usize] = bit;
            }
            let expect = c.eval(&bits);
            for (k, out) in c.outputs().iter().enumerate() {
                assert_eq!(m.eval(bdds.func(out.node()), &asg), expect[k]);
            }
        }
        // cin reaches both outputs through shallower logic than a or b
        // (weight 0.75 vs 0.625), so it lands nearest the top; a and b tie
        // and keep declaration order.
        assert_eq!(order.var_of_position(2), 0);
        assert!(order.var_of_position(0) < order.var_of_position(1));
    }

    #[test]
    fn permute_probs_places_positions() {
        let mut c = Circuit::new("t");
        let _a = c.add_input("a");
        let _b = c.add_input("b");
        let order = VarOrder { var_of: vec![1, 0] };
        let probs = order.permute_probs(&[0.25, 0.75], 3, 0.5);
        assert_eq!(probs, vec![0.75, 0.25, 0.5]);
    }

    #[test]
    fn constants_become_terminals() {
        let mut c = Circuit::new("t");
        let k1 = c.add_const(true);
        let a = c.add_input("a");
        let g = c.and([k1, a]);
        c.add_output("y", g);
        let order = VarOrder::natural(&c);
        let mut m = BddManager::new(order.len());
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        assert_eq!(bdds.func(k1), BddRef::TRUE);
        assert_eq!(bdds.func(g), bdds.func(a));
    }
}
