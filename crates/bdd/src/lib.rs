//! A from-scratch reduced ordered binary decision diagram (ROBDD) package
//! for the `relogic` reliability-analysis suite.
//!
//! The DATE 2007 single-pass reliability algorithm needs three symbolic
//! primitives, all provided here:
//!
//! 1. **Signal probabilities / weight vectors** — the joint error-free input
//!    distribution at each gate, computed as weighted model counts
//!    ([`BddManager::probability`]) of conjunctions of fanin literals.
//! 2. **Observabilities** — via an auxiliary variable spliced in at a gate
//!    ([`CircuitBdds::with_aux_at`]) and the Boolean difference
//!    ([`BddManager::boolean_difference`]).
//! 3. **Functional equivalence checks** — hash-consing makes equality of
//!    [`BddRef`]s equality of functions, used to verify the synthesis
//!    transforms in `relogic-gen`.
//!
//! The manager uses **complement edges** (negation is a tag bit, so `NOT`
//! is O(1) and XOR-reconvergent circuits like the c499/c1355 analogues stay
//! linear-size), open-addressed unique/operation tables with hit-rate
//! counters ([`BddStats`]), a memoized `ite` kernel with standard-triple
//! normalization, mark-and-sweep garbage collection with external roots,
//! and optional sifting-based dynamic reordering
//! ([`BddManager::enable_reordering`]).
//!
//! # Examples
//!
//! ```
//! use relogic_bdd::{BddManager, CircuitBdds, VarOrder};
//! use relogic_netlist::Circuit;
//!
//! let mut c = Circuit::new("and2");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.and([a, b]);
//! c.add_output("y", g);
//!
//! let order = VarOrder::natural(&c);
//! let mut m = BddManager::new(order.len());
//! let bdds = CircuitBdds::build(&mut m, &c, &order);
//! assert_eq!(m.probability_uniform(bdds.func(g)), 0.25);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bridge;
mod manager;

pub use bridge::{BuildBudgetExceeded, BuildInterrupt, CircuitBdds, VarOrder};
pub use manager::{BddManager, BddOp, BddRef, BddStats, Var};
