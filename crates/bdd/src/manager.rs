//! The ROBDD node manager: complement edges, an open-addressed unique
//! table, a memoized `ite` kernel, mark-and-sweep garbage collection with
//! external roots, and optional sifting-based dynamic reordering.
//!
//! # Representation
//!
//! A [`BddRef`] packs a node index and a *complement tag*: bit 0 set means
//! the ref denotes the **negation** of the stored node's function. There is
//! a single terminal node (index 0); [`BddRef::TRUE`] is its regular ref
//! and [`BddRef::FALSE`] its complemented ref. Negation is therefore one
//! XOR — no traversal, no new nodes — which is what keeps XOR/NAND-heavy
//! circuits (parity lattices, decomposed benchmarks) from duplicating
//! every negated subgraph.
//!
//! Canonicity with complement edges requires one polarity convention:
//! every stored node keeps its **low edge regular** (never complemented).
//! [`BddManager::check_canonical`] verifies the invariant, and the
//! property suite asserts `not(not(f)) == f` as pointer equality.
//!
//! # Tables
//!
//! The unique table and the operation cache are open-addressed arrays with
//! power-of-two capacities and multiplicative (xxhash-style) mixing of the
//! packed `(var, low, high)` triple. The unique table is exact (linear
//! probing, grown at 70% load, rebuilt tombstone-free after garbage
//! collection); the operation cache is *lossy* — one entry per slot,
//! overwritten on collision — and keeps hit/miss counters surfaced through
//! [`BddManager::stats`].
//!
//! # Variable order
//!
//! Variables are identified by stable [`Var`] indices; their *levels* are
//! an indirection ([`BddManager::sift`] permutes levels, never `Var`
//! identities), so callers' probability vectors and assignments — always
//! indexed by `Var` — survive dynamic reordering untouched.

use std::collections::HashMap;
use std::fmt;

/// Handle to a BDD function owned by a [`BddManager`].
///
/// Refs pack a node index with a complement tag (bit 0); they are only
/// meaningful relative to the manager that issued them. The two constant
/// functions are [`BddRef::FALSE`] and [`BddRef::TRUE`] — the same
/// terminal node in opposite polarities. Structural equality of functions
/// is equality of refs: `f == g` as functions iff the refs are equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BddRef(pub(crate) u32);

impl BddRef {
    /// The constant-true function (the terminal node, regular polarity).
    pub const TRUE: BddRef = BddRef(0);
    /// The constant-false function (the terminal node, complemented).
    pub const FALSE: BddRef = BddRef(1);

    /// Returns `true` if this is one of the two constant functions.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// Returns `true` if this is the constant-true function.
    #[must_use]
    pub fn is_true(self) -> bool {
        self == BddRef::TRUE
    }

    /// Returns `true` if this is the constant-false function.
    #[must_use]
    pub fn is_false(self) -> bool {
        self == BddRef::FALSE
    }

    /// The complement tag: `true` when this ref denotes the negation of
    /// its stored node.
    #[inline]
    fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// `¬f` — one bit flip, no manager needed.
    #[inline]
    fn negate(self) -> BddRef {
        BddRef(self.0 ^ 1)
    }

    /// The ref with the complement tag cleared.
    #[inline]
    fn regular(self) -> BddRef {
        BddRef(self.0 & !1)
    }

    /// The index of the stored node this ref points at.
    #[inline]
    fn index(self) -> usize {
        (self.0 >> 1) as usize
    }
}

impl fmt::Debug for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BddRef::FALSE => write!(f, "⊥"),
            BddRef::TRUE => write!(f, "⊤"),
            r if r.is_complement() => write!(f, "!b{}", r.index()),
            r => write!(f, "b{}", r.index()),
        }
    }
}

/// Variable index within a manager (stable across reordering; the
/// *level* a variable is decided at is internal state).
pub type Var = u32;

const TERMINAL_VAR: Var = Var::MAX;
const FREE_VAR: Var = Var::MAX - 1;
/// Empty slot marker in the open-addressed unique table.
const EMPTY_SLOT: u32 = u32::MAX;
/// Free-list terminator.
const NIL_IDX: u32 = u32::MAX;

const UNIQUE_MIN: usize = 1 << 10;
const CACHE_MIN: usize = 1 << 11;
const CACHE_MAX: usize = 1 << 22;

/// Operation tags for the shared lossy cache. Tag 0 marks an empty slot.
const TAG_ITE: u32 = 1;
const TAG_RESTRICT0: u32 = 2;
const TAG_RESTRICT1: u32 = 3;

#[derive(Clone, Copy)]
struct Node {
    var: Var,
    /// Packed [`BddRef`] bits; regular by the canonical-form invariant
    /// (doubles as the next-free link while the node is on the free list).
    low: u32,
    /// Packed [`BddRef`] bits; may be complemented.
    high: u32,
}

#[derive(Clone, Copy)]
struct CacheEntry {
    tag: u32,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
}

const EMPTY_ENTRY: CacheEntry = CacheEntry {
    tag: 0,
    a: 0,
    b: 0,
    c: 0,
    result: 0,
};

/// xxhash-style avalanche over three 64-bit lanes.
#[inline]
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = a.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= c.wrapping_mul(0x1656_67B1_9E37_79F9);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

#[inline]
fn node_hash(var: Var, low: u32, high: u32) -> u64 {
    hash3(u64::from(var), u64::from(low), u64::from(high))
}

#[inline]
fn cache_hash(tag: u32, a: u32, b: u32, c: u32) -> u64 {
    hash3(
        (u64::from(tag) << 32) | u64::from(a),
        u64::from(b),
        u64::from(c),
    )
}

/// Binary Boolean operations supported by [`BddManager::apply`].
///
/// All three are implemented on top of the memoized [`BddManager::ite`]
/// kernel via the standard encodings `a∧b = ite(a,b,0)`, `a∨b = ite(a,1,b)`
/// and `a⊕b = ite(a,¬b,b)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BddOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
}

/// Engine counters reported by [`BddManager::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BddStats {
    /// Nodes currently allocated and reachable-or-not-yet-collected
    /// (terminal excluded).
    pub live_nodes: usize,
    /// High-water mark of `live_nodes` over the manager's lifetime.
    pub peak_live_nodes: usize,
    /// Total node slots ever allocated (free-listed slots included).
    pub allocated_nodes: usize,
    /// Occupied fraction of the open-addressed unique table.
    pub unique_load: f64,
    /// Operation-cache lookups that found their entry.
    pub cache_hits: u64,
    /// Operation-cache lookups that missed (or hit an overwritten slot).
    pub cache_misses: u64,
    /// Mark-and-sweep collections run.
    pub gc_runs: u64,
    /// Nodes reclaimed across all collections.
    pub gc_freed: u64,
    /// Sifting passes run.
    pub reorders: u64,
}

impl BddStats {
    /// Hit fraction of the operation cache (0 when never consulted).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.cache_hits as f64 / total as f64
            }
        }
    }

    /// Folds another manager's counters into this one: sums the monotonic
    /// counters, maxes the extrema — the right combination for aggregating
    /// per-worker managers into one report.
    pub fn merge(&mut self, other: &BddStats) {
        self.live_nodes += other.live_nodes;
        self.peak_live_nodes = self.peak_live_nodes.max(other.peak_live_nodes);
        self.allocated_nodes += other.allocated_nodes;
        self.unique_load = self.unique_load.max(other.unique_load);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.gc_runs += other.gc_runs;
        self.gc_freed += other.gc_freed;
        self.reorders += other.reorders;
    }
}

/// A reduced ordered binary decision diagram manager with complement
/// edges.
///
/// All BDDs created through one manager share a variable order and a
/// hash-consed node store, so semantic equality of functions is equality
/// of [`BddRef`]s, and negation ([`BddManager::not`]) is free.
///
/// # Examples
///
/// ```
/// use relogic_bdd::BddManager;
///
/// let mut m = BddManager::new(2);
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.and(a, b);
/// let g = m.or(a, b);
/// assert_ne!(f, g);
/// assert!(m.eval(f, &[true, true]));
/// assert!(!m.eval(f, &[true, false]));
/// assert_eq!(m.probability_uniform(g), 0.75);
/// let nf = m.not(f);
/// assert_eq!(m.not(nf), f); // pointer equality, O(1)
/// ```
pub struct BddManager {
    nodes: Vec<Node>,
    free_head: u32,
    live: usize,
    peak_live: usize,
    /// `level_of[var]` — the level a variable is currently decided at.
    level_of: Vec<u32>,
    /// `var_at[level]` — inverse of `level_of`.
    var_at: Vec<Var>,
    /// Open-addressed unique table: node indices or [`EMPTY_SLOT`].
    unique: Vec<u32>,
    unique_len: usize,
    /// Lossy operation cache (ite / restrict), overwrite-on-collision.
    cache: Vec<CacheEntry>,
    cache_hits: u64,
    cache_misses: u64,
    gc_runs: u64,
    gc_freed: u64,
    reorders: u64,
    reorder_trigger: Option<usize>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("vars", &self.var_at.len())
            .field("live_nodes", &self.live)
            .field("allocated", &self.nodes.len())
            .finish()
    }
}

impl BddManager {
    /// Creates a manager with `var_count` variables (indices
    /// `0..var_count`), each initially at the level equal to its index.
    ///
    /// More variables can be added later with [`BddManager::add_var`].
    #[must_use]
    pub fn new(var_count: usize) -> Self {
        let levels = u32::try_from(var_count).expect("variable count overflow");
        BddManager {
            nodes: vec![Node {
                var: TERMINAL_VAR,
                low: 0,
                high: 0,
            }],
            free_head: NIL_IDX,
            live: 0,
            peak_live: 0,
            level_of: (0..levels).collect(),
            var_at: (0..levels).collect(),
            unique: vec![EMPTY_SLOT; UNIQUE_MIN],
            unique_len: 0,
            cache: vec![EMPTY_ENTRY; CACHE_MIN],
            cache_hits: 0,
            cache_misses: 0,
            gc_runs: 0,
            gc_freed: 0,
            reorders: 0,
            reorder_trigger: None,
        }
    }

    /// Number of variables in the order.
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.level_of.len()
    }

    /// Appends a fresh variable at the bottom of the order and returns its
    /// index.
    pub fn add_var(&mut self) -> Var {
        let v = u32::try_from(self.level_of.len()).expect("variable index overflow");
        self.level_of.push(v);
        self.var_at.push(v);
        v
    }

    /// Moves variable `v` to the top of the order (level 0), shifting the
    /// variables above it down one level.
    ///
    /// Only valid while the manager holds no nodes: the observability
    /// engine uses it to pin its auxiliary splice variable at the top
    /// *before* building any circuit function, which keeps every spliced
    /// cone linear in the base BDD size (an auxiliary at the bottom drags
    /// its dependency through every path instead).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or any node has been created.
    pub fn place_var_at_top(&mut self, v: Var) {
        assert!(
            (v as usize) < self.level_of.len(),
            "variable {v} out of range"
        );
        assert_eq!(
            self.live, 0,
            "the order can only be preset on an empty manager"
        );
        let cur = self.level_of[v as usize] as usize;
        self.var_at.remove(cur);
        self.var_at.insert(0, v);
        for (lvl, &var) in self.var_at.iter().enumerate() {
            self.level_of[var as usize] = u32::try_from(lvl).expect("level fits");
        }
    }

    /// Total number of allocated node slots (terminal and free-listed
    /// slots included); a coarse memory metric. See
    /// [`BddManager::live_node_count`] for the reachable figure.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes currently allocated and not on the free list (terminal
    /// excluded).
    #[must_use]
    pub fn live_node_count(&self) -> usize {
        self.live
    }

    /// Engine counters: node census, table load, cache hit/miss, GC and
    /// reorder activity.
    #[must_use]
    pub fn stats(&self) -> BddStats {
        #[allow(clippy::cast_precision_loss)]
        let unique_load = self.unique_len as f64 / self.unique.len() as f64;
        BddStats {
            live_nodes: self.live,
            peak_live_nodes: self.peak_live,
            allocated_nodes: self.nodes.len() - 1,
            unique_load,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            gc_runs: self.gc_runs,
            gc_freed: self.gc_freed,
            reorders: self.reorders,
        }
    }

    /// Number of garbage collections run so far. Callers holding external
    /// memo tables keyed by [`BddRef`] (e.g.
    /// [`BddManager::probability_memo`]) must invalidate them whenever this
    /// advances: collection recycles node indices.
    #[must_use]
    pub fn gc_count(&self) -> u64 {
        self.gc_runs
    }

    /// Number of nodes reachable from `f` (its BDD size), the terminal
    /// excluded. Complement polarity does not affect size.
    #[must_use]
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.regular()];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r.index()) {
                continue;
            }
            count += 1;
            let n = self.nodes[r.index()];
            stack.push(BddRef(n.low).regular());
            stack.push(BddRef(n.high).regular());
        }
        count
    }

    /// Drops the operation cache (the unique table is kept, so existing
    /// refs stay valid). Useful to bound memory in long sweeps.
    pub fn clear_op_caches(&mut self) {
        self.cache.fill(EMPTY_ENTRY);
    }

    /// The level a ref's top variable is decided at (`u32::MAX` for
    /// terminals, below every variable).
    #[inline]
    fn level(&self, r: BddRef) -> u32 {
        if r.is_terminal() {
            u32::MAX
        } else {
            self.level_of[self.nodes[r.index()].var as usize]
        }
    }

    /// Low cofactor of `r` as a function (complement tag propagated).
    #[inline]
    fn low_of(&self, r: BddRef) -> BddRef {
        BddRef(self.nodes[r.index()].low ^ (r.0 & 1))
    }

    /// High cofactor of `r` as a function (complement tag propagated).
    #[inline]
    fn high_of(&self, r: BddRef) -> BddRef {
        BddRef(self.nodes[r.index()].high ^ (r.0 & 1))
    }

    /// The decision variable of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[must_use]
    pub fn topvar(&self, f: BddRef) -> Var {
        assert!(!f.is_terminal(), "terminals have no decision variable");
        self.nodes[f.index()].var
    }

    /// The `(low, high)` cofactors of `f` with respect to its top variable.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[must_use]
    pub fn cofactors(&self, f: BddRef) -> (BddRef, BddRef) {
        assert!(!f.is_terminal(), "terminals have no cofactors");
        (self.low_of(f), self.high_of(f))
    }

    // ----- unique table -------------------------------------------------

    fn unique_grow(&mut self) {
        let new_cap = self.unique.len() * 2;
        let mut slots = vec![EMPTY_SLOT; new_cap];
        let mask = new_cap - 1;
        for &idx in &self.unique {
            if idx == EMPTY_SLOT {
                continue;
            }
            let n = self.nodes[idx as usize];
            let mut i = node_hash(n.var, n.low, n.high) as usize & mask;
            while slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            slots[i] = idx;
        }
        self.unique = slots;
    }

    /// Re-inserts an already-allocated node under its (possibly new)
    /// triple. The triple must not collide with a resident node.
    fn unique_insert(&mut self, idx: u32) {
        if (self.unique_len + 1) * 10 >= self.unique.len() * 7 {
            self.unique_grow();
        }
        let n = self.nodes[idx as usize];
        let mask = self.unique.len() - 1;
        let mut i = node_hash(n.var, n.low, n.high) as usize & mask;
        while self.unique[i] != EMPTY_SLOT {
            #[cfg(debug_assertions)]
            {
                let o = self.nodes[self.unique[i] as usize];
                debug_assert!(
                    o.var != n.var || o.low != n.low || o.high != n.high,
                    "duplicate canonical triple in unique table"
                );
            }
            i = (i + 1) & mask;
        }
        self.unique[i] = idx;
        self.unique_len += 1;
    }

    /// Removes a node from the unique table by backward-shift deletion
    /// (keeps linear probe chains intact without tombstones).
    fn unique_remove(&mut self, idx: u32) {
        let mask = self.unique.len() - 1;
        let n = self.nodes[idx as usize];
        let mut i = node_hash(n.var, n.low, n.high) as usize & mask;
        while self.unique[i] != idx {
            debug_assert!(self.unique[i] != EMPTY_SLOT, "node missing from table");
            i = (i + 1) & mask;
        }
        self.unique[i] = EMPTY_SLOT;
        self.unique_len -= 1;
        let mut j = (i + 1) & mask;
        while self.unique[j] != EMPTY_SLOT {
            let m = self.nodes[self.unique[j] as usize];
            let k = node_hash(m.var, m.low, m.high) as usize & mask;
            // The entry at j may move into the hole at i iff the hole lies
            // on its probe path from its home slot k.
            if (j.wrapping_sub(k) & mask) >= (j.wrapping_sub(i) & mask) {
                self.unique[i] = self.unique[j];
                self.unique[j] = EMPTY_SLOT;
                i = j;
            }
            j = (j + 1) & mask;
        }
    }

    /// Finds or allocates the node `(var, low, high)` (raw packed edges;
    /// `low` must be regular). Returns the node index and whether it was
    /// freshly allocated.
    fn mk_raw(&mut self, var: Var, low: u32, high: u32) -> (u32, bool) {
        debug_assert_eq!(low & 1, 0, "canonical form: low edge must be regular");
        if (self.unique_len + 1) * 10 >= self.unique.len() * 7 {
            self.unique_grow();
        }
        let mask = self.unique.len() - 1;
        let mut i = node_hash(var, low, high) as usize & mask;
        loop {
            let s = self.unique[i];
            if s == EMPTY_SLOT {
                break;
            }
            let n = self.nodes[s as usize];
            if n.var == var && n.low == low && n.high == high {
                return (s, false);
            }
            i = (i + 1) & mask;
        }
        let idx = if self.free_head != NIL_IDX {
            let idx = self.free_head;
            self.free_head = self.nodes[idx as usize].low;
            self.nodes[idx as usize] = Node { var, low, high };
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("BDD node count overflow");
            assert!(idx < 1 << 31, "BDD node count overflow");
            self.nodes.push(Node { var, low, high });
            idx
        };
        self.unique[i] = idx;
        self.unique_len += 1;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        (idx, true)
    }

    /// Returns the canonical ref for the function `var ? high : low`,
    /// normalizing the complement tags so the stored low edge is regular.
    fn mk(&mut self, var: Var, low: BddRef, high: BddRef) -> BddRef {
        if low == high {
            return low;
        }
        debug_assert!(
            self.level_of[var as usize] < self.level(low)
                && self.level_of[var as usize] < self.level(high),
            "mk: children must sit strictly below the decision variable"
        );
        if low.is_complement() {
            let (idx, _) = self.mk_raw(var, low.negate().0, high.negate().0);
            BddRef(idx << 1 | 1)
        } else {
            let (idx, _) = self.mk_raw(var, low.0, high.0);
            BddRef(idx << 1)
        }
    }

    // ----- operation cache ----------------------------------------------

    /// Grows the lossy cache toward the node count (never shrinks, capped
    /// at [`CACHE_MAX`] entries). Called at public operation entry points
    /// only — never mid-recursion.
    fn maybe_grow_cache(&mut self) {
        if self.cache.len() < CACHE_MAX && self.nodes.len() > self.cache.len() {
            let want = self.nodes.len().next_power_of_two().min(CACHE_MAX);
            if want > self.cache.len() {
                self.cache = vec![EMPTY_ENTRY; want];
            }
        }
    }

    #[inline]
    fn cache_get(&mut self, tag: u32, a: u32, b: u32, c: u32) -> Option<BddRef> {
        let i = cache_hash(tag, a, b, c) as usize & (self.cache.len() - 1);
        let e = self.cache[i];
        if e.tag == tag && e.a == a && e.b == b && e.c == c {
            self.cache_hits += 1;
            Some(BddRef(e.result))
        } else {
            self.cache_misses += 1;
            None
        }
    }

    #[inline]
    fn cache_put(&mut self, tag: u32, a: u32, b: u32, c: u32, result: u32) {
        let i = cache_hash(tag, a, b, c) as usize & (self.cache.len() - 1);
        self.cache[i] = CacheEntry {
            tag,
            a,
            b,
            c,
            result,
        };
    }

    // ----- construction and Boolean operations --------------------------

    /// The single-variable function `x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: Var) -> BddRef {
        assert!(
            (v as usize) < self.level_of.len(),
            "variable {v} out of range"
        );
        self.mk(v, BddRef::FALSE, BddRef::TRUE)
    }

    /// The negated single-variable function `¬x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn nvar(&mut self, v: Var) -> BddRef {
        assert!(
            (v as usize) < self.level_of.len(),
            "variable {v} out of range"
        );
        self.mk(v, BddRef::TRUE, BddRef::FALSE)
    }

    /// A constant terminal as a `BddRef`.
    #[must_use]
    pub fn constant(value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// Negation `¬f`: flips the complement tag — `O(1)`, allocation-free.
    #[must_use]
    pub fn not(&self, f: BddRef) -> BddRef {
        let _ = self;
        f.negate()
    }

    /// Applies a binary Boolean operation (an [`BddManager::ite`]
    /// encoding).
    pub fn apply(&mut self, op: BddOp, a: BddRef, b: BddRef) -> BddRef {
        match op {
            BddOp::And => self.ite(a, b, BddRef::FALSE),
            BddOp::Or => self.ite(a, BddRef::TRUE, b),
            BddOp::Xor => self.ite(a, b.negate(), b),
        }
    }

    /// Conjunction `a ∧ b`.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, b, BddRef::FALSE)
    }

    /// Disjunction `a ∨ b`.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, BddRef::TRUE, b)
    }

    /// Exclusive or `a ⊕ b`.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, b.negate(), b)
    }

    /// Ranking key for standard-triple canonicalization: earlier level
    /// first, node index as the deterministic tie-break.
    #[inline]
    fn rank(&self, r: BddRef) -> u64 {
        (u64::from(self.level(r)) << 32) | r.index() as u64
    }

    /// If-then-else `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)` — the single
    /// memoized kernel every binary operation reduces to.
    ///
    /// Arguments are normalized to a *standard triple* before the cache
    /// lookup (constant/equal-argument reductions, operand swaps that pick
    /// the canonical representative of equivalent calls, and complement
    /// canonicalization so the cached `f` and `g` are always regular), so
    /// e.g. `and(a, b)`, `and(b, a)` and `not(or(¬a, ¬b))` all share one
    /// cache line.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        self.maybe_grow_cache();
        self.ite_rec(f, g, h)
    }

    fn ite_rec(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal f.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        let (mut f, mut g, mut h) = (f, g, h);
        // Equal/complement argument reductions.
        if f == g {
            g = BddRef::TRUE;
        } else if f == g.negate() {
            g = BddRef::FALSE;
        }
        if f == h {
            h = BddRef::FALSE;
        } else if f == h.negate() {
            h = BddRef::TRUE;
        }
        // Terminal-result cases.
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return f.negate();
        }
        // Operand swaps: pick the canonical representative among the
        // equivalent formulations so the cache collapses them.
        if g.is_true() {
            // ite(f,1,h) = f ∨ h = ite(h,1,f)
            if self.rank(h) < self.rank(f) {
                std::mem::swap(&mut f, &mut h);
            }
        } else if g.is_false() {
            // ite(f,0,h) = ¬f ∧ h = ite(¬h,0,¬f)
            if self.rank(h) < self.rank(f) {
                let nf = f.negate();
                f = h.negate();
                h = nf;
            }
        } else if h.is_false() {
            // ite(f,g,0) = f ∧ g = ite(g,f,0)
            if self.rank(g) < self.rank(f) {
                std::mem::swap(&mut f, &mut g);
            }
        } else if h.is_true() {
            // ite(f,g,1) = ¬f ∨ g = ite(¬g,¬f,1)
            if self.rank(g) < self.rank(f) {
                let nf = f.negate();
                f = g.negate();
                g = nf;
            }
        } else if g == h.negate() {
            // ite(f,g,¬g) = f ⊙ g = ite(g,f,¬f)
            if self.rank(g) < self.rank(f) {
                let nf = f.negate();
                std::mem::swap(&mut f, &mut g);
                h = nf;
            }
        }
        // Complement canonicalization: cached f and g are regular.
        if f.is_complement() {
            f = f.negate();
            std::mem::swap(&mut g, &mut h);
        }
        let complement_out = g.is_complement();
        if complement_out {
            g = g.negate();
            h = h.negate();
        }
        if let Some(r) = self.cache_get(TAG_ITE, f.0, g.0, h.0) {
            return if complement_out { r.negate() } else { r };
        }
        let v_level = self.level(f).min(self.level(g)).min(self.level(h));
        let v = self.var_at[v_level as usize];
        let (f0, f1) = self.cofactor_at(f, v_level);
        let (g0, g1) = self.cofactor_at(g, v_level);
        let (h0, h1) = self.cofactor_at(h, v_level);
        let low = self.ite_rec(f0, g0, h0);
        let high = self.ite_rec(f1, g1, h1);
        let r = self.mk(v, low, high);
        self.cache_put(TAG_ITE, f.0, g.0, h.0, r.0);
        if complement_out {
            r.negate()
        } else {
            r
        }
    }

    #[inline]
    fn cofactor_at(&self, r: BddRef, v_level: u32) -> (BddRef, BddRef) {
        if !r.is_terminal() && self.level(r) == v_level {
            (self.low_of(r), self.high_of(r))
        } else {
            (r, r)
        }
    }

    /// n-ary conjunction over an iterator of functions (true for empty).
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = BddRef>) -> BddRef {
        fs.into_iter().fold(BddRef::TRUE, |acc, f| self.and(acc, f))
    }

    /// n-ary disjunction over an iterator of functions (false for empty).
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = BddRef>) -> BddRef {
        fs.into_iter().fold(BddRef::FALSE, |acc, f| self.or(acc, f))
    }

    /// Cofactor: `f` with variable `v` fixed to `value`.
    ///
    /// Memoized in the shared operation cache, so repeated restrictions
    /// over a family of related functions (the per-output Boolean
    /// differences of one observability target) share their subgraph work.
    pub fn restrict(&mut self, f: BddRef, v: Var, value: bool) -> BddRef {
        self.maybe_grow_cache();
        let v_level = self.level_of[v as usize];
        self.restrict_rec(f, v, v_level, value)
    }

    fn restrict_rec(&mut self, f: BddRef, v: Var, v_level: u32, value: bool) -> BddRef {
        if f.is_terminal() || self.level(f) > v_level {
            return f;
        }
        let c = f.0 & 1;
        let fr = f.regular();
        if self.level(fr) == v_level {
            let r = if value {
                self.high_of(fr)
            } else {
                self.low_of(fr)
            };
            return BddRef(r.0 ^ c);
        }
        let tag = if value { TAG_RESTRICT1 } else { TAG_RESTRICT0 };
        if let Some(r) = self.cache_get(tag, fr.0, v, 0) {
            return BddRef(r.0 ^ c);
        }
        let n = self.nodes[fr.index()];
        let low = self.restrict_rec(BddRef(n.low), v, v_level, value);
        let high = self.restrict_rec(BddRef(n.high), v, v_level, value);
        let r = self.mk(n.var, low, high);
        self.cache_put(tag, fr.0, v, 0, r.0);
        BddRef(r.0 ^ c)
    }

    /// Functional composition: substitutes `g` for variable `v` in `f`.
    pub fn compose(&mut self, f: BddRef, v: Var, g: BddRef) -> BddRef {
        let v_level = self.level_of[v as usize];
        let mut cache = HashMap::new();
        self.compose_rec(f, v_level, g, &mut cache)
    }

    fn compose_rec(
        &mut self,
        f: BddRef,
        v_level: u32,
        g: BddRef,
        cache: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        if f.is_terminal() || self.level(f) > v_level {
            return f;
        }
        let c = f.0 & 1;
        let fr = f.regular();
        if let Some(&r) = cache.get(&fr) {
            return BddRef(r.0 ^ c);
        }
        let n = self.nodes[fr.index()];
        let r = if self.level_of[n.var as usize] == v_level {
            self.ite(g, BddRef(n.high), BddRef(n.low))
        } else {
            let low = self.compose_rec(BddRef(n.low), v_level, g, cache);
            let high = self.compose_rec(BddRef(n.high), v_level, g, cache);
            // The substitution may pull `g`'s variables above `n.var`, so
            // rebuild through ite rather than mk.
            let x = self.var(n.var);
            self.ite(x, high, low)
        };
        cache.insert(fr, r);
        BddRef(r.0 ^ c)
    }

    /// Existential quantification `∃v. f = f|_{v=0} ∨ f|_{v=1}`.
    pub fn exists(&mut self, f: BddRef, v: Var) -> BddRef {
        let f0 = self.restrict(f, v, false);
        let f1 = self.restrict(f, v, true);
        self.or(f0, f1)
    }

    /// Boolean difference `∂f/∂v = f|_{v=0} ⊕ f|_{v=1}`: the set of input
    /// assignments where the value of `v` is observable at `f`.
    pub fn boolean_difference(&mut self, f: BddRef, v: Var) -> BddRef {
        let f0 = self.restrict(f, v, false);
        let f1 = self.restrict(f, v, true);
        self.xor(f0, f1)
    }

    /// The set of variables `f` structurally depends on, ascending by
    /// variable index.
    #[must_use]
    pub fn support(&self, f: BddRef) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.regular()];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r.index()) {
                continue;
            }
            let n = self.nodes[r.index()];
            vars.insert(n.var);
            stack.push(BddRef(n.low).regular());
            stack.push(BddRef(n.high).regular());
        }
        vars.into_iter().collect()
    }

    /// Evaluates `f` under a full variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable with index `>= assignment.len()`.
    #[must_use]
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut r = f;
        while !r.is_terminal() {
            let n = self.nodes[r.index()];
            let next = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
            // Carry the accumulated complement parity down the path.
            r = BddRef(next ^ (r.0 & 1));
        }
        r.is_true()
    }

    /// Probability that `f` is true when each variable `v` is independently
    /// true with probability `var_probs[v]`.
    ///
    /// Runs in `O(|f|)` via a memoized bottom-up sweep.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable with index `>= var_probs.len()`.
    #[must_use]
    pub fn probability(&self, f: BddRef, var_probs: &[f64]) -> f64 {
        let mut memo: HashMap<BddRef, f64> = HashMap::new();
        self.probability_memo(f, var_probs, &mut memo)
    }

    /// Like [`BddManager::probability`] but reusing a caller-provided memo
    /// table, so many related queries (e.g. weight-vector entries) share
    /// work. The memo is only valid for one fixed `var_probs` and must be
    /// discarded whenever [`BddManager::gc_count`] advances (collection
    /// recycles node indices).
    pub fn probability_memo(
        &self,
        f: BddRef,
        var_probs: &[f64],
        memo: &mut HashMap<BddRef, f64>,
    ) -> f64 {
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        let fr = f.regular();
        let p = if let Some(&p) = memo.get(&fr) {
            p
        } else {
            let n = self.nodes[fr.index()];
            let p_hi = self.probability_memo(BddRef(n.high), var_probs, memo);
            let p_lo = self.probability_memo(BddRef(n.low), var_probs, memo);
            let pv = var_probs[n.var as usize];
            let p = pv * p_hi + (1.0 - pv) * p_lo;
            memo.insert(fr, p);
            p
        };
        if f.is_complement() {
            1.0 - p
        } else {
            p
        }
    }

    /// Probability that `f` is true under the uniform input distribution.
    #[must_use]
    pub fn probability_uniform(&self, f: BddRef) -> f64 {
        let probs = vec![0.5; self.level_of.len()];
        self.probability(f, &probs)
    }

    /// Number of satisfying assignments of `f` over all `var_count`
    /// variables (as `f64`, exact for up to 2^52 models).
    #[must_use]
    pub fn sat_count(&self, f: BddRef) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let scale = (self.level_of.len() as f64).exp2();
        self.probability_uniform(f) * scale
    }

    // ----- garbage collection -------------------------------------------

    /// Mark-and-sweep collection: every node not reachable from `roots` is
    /// reclaimed onto the free list, the unique table is rebuilt
    /// (tombstone-free), and the operation cache is dropped (its entries
    /// may name reclaimed nodes). Returns the number of nodes freed.
    ///
    /// **Every ref the caller intends to keep using must be covered by
    /// `roots`** (reachability counts: interior nodes of a rooted function
    /// survive). External memo tables keyed by [`BddRef`] must be
    /// discarded afterwards — see [`BddManager::gc_count`].
    pub fn gc(&mut self, roots: &[BddRef]) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        let mut stack: Vec<usize> = roots
            .iter()
            .filter(|r| !r.is_terminal())
            .map(|r| r.index())
            .collect();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut marked[i], true) {
                continue;
            }
            let n = self.nodes[i];
            stack.push((n.low >> 1) as usize);
            stack.push((n.high >> 1) as usize);
        }
        let mut freed = 0usize;
        for (i, mark) in marked.iter().enumerate().skip(1) {
            if !mark && self.nodes[i].var != FREE_VAR {
                self.nodes[i] = Node {
                    var: FREE_VAR,
                    low: self.free_head,
                    high: 0,
                };
                self.free_head = u32::try_from(i).expect("node index fits");
                freed += 1;
            }
        }
        self.live -= freed;
        self.rebuild_unique();
        self.cache.fill(EMPTY_ENTRY);
        self.gc_runs += 1;
        self.gc_freed += freed as u64;
        freed
    }

    /// Rebuilds the unique table from the live node population, resizing
    /// toward twice the live count.
    fn rebuild_unique(&mut self) {
        let want = (self.live * 2).next_power_of_two().max(UNIQUE_MIN);
        let mut slots = vec![EMPTY_SLOT; want];
        let mask = want - 1;
        let mut len = 0usize;
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var == FREE_VAR {
                continue;
            }
            let mut s = node_hash(n.var, n.low, n.high) as usize & mask;
            while slots[s] != EMPTY_SLOT {
                s = (s + 1) & mask;
            }
            slots[s] = u32::try_from(i).expect("node index fits");
            len += 1;
        }
        self.unique = slots;
        self.unique_len = len;
        debug_assert_eq!(len, self.live);
    }

    // ----- dynamic reordering -------------------------------------------

    /// Arms the size-growth trigger: [`BddManager::maybe_reorder`] runs a
    /// sifting pass whenever the live node count exceeds `trigger_nodes`
    /// (after which the trigger re-arms at twice the post-sift size).
    pub fn enable_reordering(&mut self, trigger_nodes: usize) {
        self.reorder_trigger = Some(trigger_nodes.max(256));
    }

    /// Checks the size-growth trigger and sifts if it fired. Must only be
    /// called at a quiescent point — no operation in progress — with
    /// `roots` covering every externally held ref (see [`BddManager::gc`]).
    /// Returns whether a reorder ran.
    pub fn maybe_reorder(&mut self, roots: &[BddRef]) -> bool {
        let Some(trigger) = self.reorder_trigger else {
            return false;
        };
        if self.live <= trigger {
            return false;
        }
        self.sift(roots);
        self.reorder_trigger = Some((self.live * 2).max(trigger));
        true
    }

    /// Sifting-based dynamic reordering (Rudell): each variable is moved
    /// through the order by adjacent-level swaps and left at its best
    /// position, with a growth abort (a variable stops exploring once the
    /// diagram has grown 20% past its pre-sift size).
    ///
    /// Reordering is *function-preserving for every outstanding ref*:
    /// nodes are rewritten in place, so a `BddRef` denotes the same
    /// Boolean function before and after. Variable identities are stable —
    /// only levels move — so probability vectors and assignments indexed
    /// by [`Var`] stay valid. Like [`BddManager::gc`] (which this runs
    /// first), `roots` must cover every ref the caller keeps, and external
    /// memo tables must be discarded afterwards.
    pub fn sift(&mut self, roots: &[BddRef]) {
        self.gc(roots);
        let nvars = self.var_at.len();
        if nvars < 2 || self.live == 0 {
            return;
        }
        // Per-variable node lists and exact reference counts (edges from
        // live nodes plus the caller's roots), maintained across swaps so
        // the live size signal stays exact and orphans free eagerly.
        let mut by_var: Vec<Vec<u32>> = vec![Vec::new(); nvars];
        let mut rc: Vec<u32> = vec![0; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var == FREE_VAR {
                continue;
            }
            by_var[n.var as usize].push(u32::try_from(i).expect("node index fits"));
            rc[(n.low >> 1) as usize] += 1;
            rc[(n.high >> 1) as usize] += 1;
        }
        for r in roots {
            rc[r.index()] += 1;
        }
        // Nodes freed mid-sift are quarantined until the pass ends so the
        // free list never recycles an index into a stale list entry.
        let mut pending_free: Vec<u32> = Vec::new();
        let mut vars: Vec<Var> = (0..nvars)
            .filter(|&v| !by_var[v].is_empty())
            .map(|v| Var::try_from(v).expect("var index fits"))
            .collect();
        vars.sort_by_key(|&v| std::cmp::Reverse(by_var[v as usize].len()));
        for v in vars {
            let limit = self.live + self.live / 5 + 16;
            self.sift_one(v, &mut by_var, &mut rc, &mut pending_free, limit);
        }
        for idx in pending_free {
            debug_assert_eq!(self.nodes[idx as usize].var, FREE_VAR);
            self.nodes[idx as usize].low = self.free_head;
            self.free_head = idx;
        }
        self.cache.fill(EMPTY_ENTRY);
        self.reorders += 1;
    }

    /// Number of sifting passes run so far.
    #[must_use]
    pub fn reorder_count(&self) -> u64 {
        self.reorders
    }

    fn sift_one(
        &mut self,
        v: Var,
        by_var: &mut [Vec<u32>],
        rc: &mut Vec<u32>,
        pending: &mut Vec<u32>,
        limit: usize,
    ) {
        let nlevels = self.var_at.len();
        let start = self.level_of[v as usize] as usize;
        let mut cur = start;
        let mut best = start;
        let mut best_size = self.live;
        // Explore downward.
        while cur + 1 < nlevels {
            self.swap_adjacent(cur, by_var, rc, pending);
            cur += 1;
            if self.live < best_size {
                best_size = self.live;
                best = cur;
            }
            if self.live > limit {
                break;
            }
        }
        // Explore upward (back through the start position to the top).
        while cur > 0 {
            self.swap_adjacent(cur - 1, by_var, rc, pending);
            cur -= 1;
            if self.live < best_size {
                best_size = self.live;
                best = cur;
            }
            if self.live > limit {
                break;
            }
        }
        // Settle at the best position seen.
        while cur < best {
            self.swap_adjacent(cur, by_var, rc, pending);
            cur += 1;
        }
        while cur > best {
            self.swap_adjacent(cur - 1, by_var, rc, pending);
            cur -= 1;
        }
    }

    /// Swaps the variables at levels `upper` and `upper + 1`.
    ///
    /// Nodes at the upper level with a child at the lower level are
    /// rewritten **in place** (same index, same function, new decision
    /// variable), so every outstanding ref — internal or external —
    /// remains valid. Upper-level nodes without a lower-level child are
    /// untouched; lower-level nodes never move.
    fn swap_adjacent(
        &mut self,
        upper: usize,
        by_var: &mut [Vec<u32>],
        rc: &mut Vec<u32>,
        pending: &mut Vec<u32>,
    ) {
        let a = self.var_at[upper];
        let b = self.var_at[upper + 1];
        // Commit the new order first so node construction below sees
        // post-swap levels.
        self.var_at[upper] = b;
        self.var_at[upper + 1] = a;
        self.level_of[a as usize] = u32::try_from(upper + 1).expect("level fits");
        self.level_of[b as usize] = u32::try_from(upper).expect("level fits");

        let a_list = std::mem::take(&mut by_var[a as usize]);
        let mut keep = Vec::with_capacity(a_list.len());
        let mut rewrite = Vec::new();
        for idx in a_list {
            let n = self.nodes[idx as usize];
            if n.var != a {
                continue; // freed (or recycled under another variable)
            }
            let lo_var = self.nodes[(n.low >> 1) as usize].var;
            let hi_var = self.nodes[(n.high >> 1) as usize].var;
            if lo_var == b || hi_var == b {
                rewrite.push(idx);
            } else {
                keep.push(idx);
            }
        }
        by_var[a as usize] = keep;
        // The rewritten nodes change their triples: pull them out of the
        // unique table up front so in-swap construction can never resolve
        // to a stale key.
        for &idx in &rewrite {
            self.unique_remove(idx);
        }
        for idx in rewrite {
            let n = self.nodes[idx as usize];
            let f0 = BddRef(n.low);
            let f1 = BddRef(n.high);
            let (f00, f01) = if self.nodes[f0.index()].var == b {
                (self.low_of(f0), self.high_of(f0))
            } else {
                (f0, f0)
            };
            let (f10, f11) = if self.nodes[f1.index()].var == b {
                (self.low_of(f1), self.high_of(f1))
            } else {
                (f1, f1)
            };
            let new_low = self.sift_mk(a, f00, f10, by_var, rc);
            let new_high = self.sift_mk(a, f01, f11, by_var, rc);
            // The fresh low child is built from regular cofactors, so the
            // in-place rewrite never needs to flip this node's polarity.
            debug_assert!(!new_low.is_complement());
            self.nodes[idx as usize] = Node {
                var: b,
                low: new_low.0,
                high: new_high.0,
            };
            self.unique_insert(idx);
            by_var[b as usize].push(idx);
            self.sift_deref(f0, rc, pending);
            self.sift_deref(f1, rc, pending);
        }
    }

    /// `mk` variant for use inside a swap: maintains reference counts and
    /// the per-variable lists, and returns with one reference charged to
    /// the caller.
    fn sift_mk(
        &mut self,
        var: Var,
        low: BddRef,
        high: BddRef,
        by_var: &mut [Vec<u32>],
        rc: &mut Vec<u32>,
    ) -> BddRef {
        if low == high {
            rc[low.index()] += 1;
            return low;
        }
        let (l, h, c) = if low.is_complement() {
            (low.negate(), high.negate(), 1)
        } else {
            (low, high, 0)
        };
        let (idx, inserted) = self.mk_raw(var, l.0, h.0);
        if inserted {
            if idx as usize >= rc.len() {
                rc.resize(self.nodes.len(), 0);
            }
            rc[idx as usize] = 0;
            rc[(l.0 >> 1) as usize] += 1;
            rc[(h.0 >> 1) as usize] += 1;
            by_var[var as usize].push(idx);
        }
        rc[idx as usize] += 1;
        BddRef(idx << 1 | c)
    }

    /// Releases one reference to `r`, freeing (and cascading through) any
    /// node whose count reaches zero. Freed indices go to `pending`, not
    /// the free list — see [`BddManager::sift`].
    fn sift_deref(&mut self, r: BddRef, rc: &mut [u32], pending: &mut Vec<u32>) {
        let mut stack = vec![r];
        while let Some(r) = stack.pop() {
            let i = r.index();
            debug_assert!(rc[i] > 0, "reference count underflow");
            rc[i] -= 1;
            if i == 0 || rc[i] > 0 {
                continue;
            }
            let n = self.nodes[i];
            self.unique_remove(u32::try_from(i).expect("node index fits"));
            self.nodes[i].var = FREE_VAR;
            self.live -= 1;
            pending.push(u32::try_from(i).expect("node index fits"));
            stack.push(BddRef(n.low));
            stack.push(BddRef(n.high));
        }
    }

    // ----- invariants ---------------------------------------------------

    /// Verifies the manager's structural invariants: every stored low edge
    /// is regular, no redundant (`low == high`) nodes exist, children sit
    /// strictly below their parent's level, and the unique table exactly
    /// indexes the live population.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_canonical(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var == FREE_VAR {
                continue;
            }
            if n.var == TERMINAL_VAR {
                return Err(format!("node {i}: stray terminal marker"));
            }
            if n.low & 1 == 1 {
                return Err(format!("node {i}: complemented low edge"));
            }
            if n.low == n.high {
                return Err(format!("node {i}: redundant node (low == high)"));
            }
            let lvl = self.level_of[n.var as usize];
            for (edge, name) in [(n.low, "low"), (n.high, "high")] {
                let child = BddRef(edge);
                if !child.is_terminal() {
                    let cn = self.nodes[child.index()];
                    if cn.var == FREE_VAR {
                        return Err(format!("node {i}: {name} edge into freed node"));
                    }
                    if self.level_of[cn.var as usize] <= lvl {
                        return Err(format!("node {i}: {name} edge violates the order"));
                    }
                }
            }
            // The node must be findable under its own triple.
            let mask = self.unique.len() - 1;
            let mut s = node_hash(n.var, n.low, n.high) as usize & mask;
            loop {
                let slot = self.unique[s];
                if slot == EMPTY_SLOT {
                    return Err(format!("node {i}: missing from the unique table"));
                }
                if slot as usize == i {
                    break;
                }
                s = (s + 1) & mask;
            }
        }
        if self.unique_len != self.live {
            return Err(format!(
                "unique table holds {} entries for {} live nodes",
                self.unique_len, self.live
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_var() -> (BddManager, BddRef, BddRef) {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        (m, a, b)
    }

    #[test]
    fn hash_consing_gives_canonical_forms() {
        let (mut m, a, b) = two_var();
        let f1 = m.and(a, b);
        let f2 = m.and(b, a);
        assert_eq!(f1, f2);
        let n1 = m.not(f1);
        let nand_direct = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(n1, nand_direct); // De Morgan, structurally
        m.check_canonical().unwrap();
    }

    #[test]
    fn terminals_and_constants() {
        assert!(BddRef::TRUE.is_true());
        assert!(BddRef::FALSE.is_false());
        assert_eq!(BddManager::constant(true), BddRef::TRUE);
        let (mut m, a, _) = two_var();
        assert_eq!(m.and(a, BddRef::FALSE), BddRef::FALSE);
        assert_eq!(m.and(a, BddRef::TRUE), a);
        assert_eq!(m.or(a, BddRef::TRUE), BddRef::TRUE);
        assert_eq!(m.xor(a, BddRef::FALSE), a);
        let na = m.not(a);
        assert_eq!(m.xor(a, BddRef::TRUE), na);
    }

    #[test]
    fn negation_is_constant_time_and_involutive() {
        let (mut m, a, b) = two_var();
        let f = m.xor(a, b);
        let before = m.node_count();
        let nf = m.not(f);
        assert_eq!(m.node_count(), before, "not must not allocate");
        assert_eq!(m.not(nf), f);
        assert_ne!(nf, f);
    }

    #[test]
    fn eval_matches_semantics() {
        let (mut m, a, b) = two_var();
        let f = m.xor(a, b);
        assert!(!m.eval(f, &[false, false]));
        assert!(m.eval(f, &[false, true]));
        assert!(m.eval(f, &[true, false]));
        assert!(!m.eval(f, &[true, true]));
    }

    #[test]
    fn ite_identities() {
        let (mut m, a, b) = two_var();
        let f = m.ite(a, b, BddRef::FALSE);
        let g = m.and(a, b);
        assert_eq!(f, g);
        let na = m.not(a);
        assert_eq!(m.ite(a, BddRef::FALSE, BddRef::TRUE), na);
        assert_eq!(m.ite(a, BddRef::TRUE, BddRef::FALSE), a);
        assert_eq!(m.ite(BddRef::TRUE, a, b), a);
        assert_eq!(m.ite(BddRef::FALSE, a, b), b);
        assert_eq!(m.ite(b, a, a), a);
    }

    #[test]
    fn ite_standard_triples_share_cache_lines() {
        let (mut m, a, b) = two_var();
        // Build once; the algebraically equal forms must all resolve to
        // the same ref without growing the node store.
        let f1 = m.and(a, b);
        let nodes_after_first = m.node_count();
        let f2 = {
            let na = m.not(a);
            let nb = m.not(b);
            let o = m.or(na, nb);
            m.not(o)
        };
        assert_eq!(f1, f2);
        assert_eq!(m.node_count(), nodes_after_first);
        let nb = m.not(b);
        let x1 = m.xor(a, b);
        let x2 = m.xor(b, a);
        let x3 = m.ite(a, nb, b);
        assert_eq!(x1, x2);
        assert_eq!(x1, x3);
        let stats = m.stats();
        assert!(stats.cache_hits > 0, "normalization should yield hits");
    }

    #[test]
    fn restrict_cofactors() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), BddRef::FALSE);
        assert_eq!(m.restrict(f, 1, true), a);
        // restricting a variable not in support is identity
        let g = m.var(0);
        assert_eq!(m.restrict(g, 1, true), g);
        // restrict distributes over complement
        let nf = m.not(f);
        let r = m.restrict(nf, 0, true);
        let nb = m.not(b);
        assert_eq!(r, nb);
    }

    #[test]
    fn compose_substitutes() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // f = a & b; substitute b := (a ^ c)  =>  a & (a ^ c) = a & !c
        let f = m.and(a, b);
        let g = m.xor(a, c);
        let h = m.compose(f, 1, g);
        let nc = m.not(c);
        let expect = m.and(a, nc);
        assert_eq!(h, expect);
        // composing a variable outside the support is identity
        assert_eq!(m.compose(a, 2, b), a);
    }

    #[test]
    fn exists_quantifies() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        assert_eq!(m.exists(f, 0), b);
        let g = m.xor(a, b);
        assert_eq!(m.exists(g, 0), BddRef::TRUE);
    }

    #[test]
    fn boolean_difference_detects_observability() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        // a is observable iff b=1
        assert_eq!(m.boolean_difference(f, 0), b);
        let g = m.xor(a, b);
        // xor always observes both inputs
        assert_eq!(m.boolean_difference(g, 0), BddRef::TRUE);
    }

    #[test]
    fn support_lists_dependencies() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.or(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert_eq!(m.support(BddRef::TRUE), Vec::<Var>::new());
    }

    #[test]
    fn probability_weighted_and_uniform() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        assert!((m.probability(f, &[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((m.probability(f, &[0.1, 0.9]) - 0.09).abs() < 1e-12);
        let g = m.or(a, b);
        assert!((m.probability(g, &[0.1, 0.9]) - (1.0 - 0.9 * 0.1)).abs() < 1e-12);
        assert_eq!(m.sat_count(f), 1.0);
        assert_eq!(m.sat_count(g), 3.0);
    }

    #[test]
    fn size_exploits_complement_sharing() {
        let (mut m, a, b) = two_var();
        let f = m.xor(a, b);
        // With complement edges an xor is one decision node per variable:
        // the two b-children are the same node in opposite polarity.
        assert_eq!(m.size(f), 2);
        assert_eq!(m.size(BddRef::TRUE), 0);
        let nf = m.not(f);
        assert_eq!(m.size(nf), m.size(f));
    }

    #[test]
    fn add_var_extends_order() {
        let mut m = BddManager::new(1);
        let v = m.add_var();
        assert_eq!(v, 1);
        let b = m.var(1);
        let a = m.var(0);
        let f = m.and(a, b);
        assert!(m.eval(f, &[true, true]));
    }

    #[test]
    fn place_var_at_top_reorders_levels() {
        let mut m = BddManager::new(3);
        m.place_var_at_top(2);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.and(a, c);
        // c sits at the top now, so it is the decision variable of f.
        assert_eq!(m.topvar(f), 2);
        assert!(m.eval(f, &[true, false, true]));
        assert!(!m.eval(f, &[true, false, false]));
        m.check_canonical().unwrap();
    }

    #[test]
    fn clear_caches_preserves_refs() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        m.clear_op_caches();
        let g = m.and(a, b);
        assert_eq!(f, g);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(1);
        let _ = m.var(3);
    }

    #[test]
    fn three_variable_majority() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let t = m.or(ab, ac);
        let maj = m.or(t, bc);
        assert_eq!(m.sat_count(maj), 4.0);
        for p in 0..8u32 {
            let asg: Vec<bool> = (0..3).map(|j| p >> j & 1 != 0).collect();
            let expect = asg.iter().filter(|&&x| x).count() >= 2;
            assert_eq!(m.eval(maj, &asg), expect);
        }
        m.check_canonical().unwrap();
    }

    #[test]
    fn gc_reclaims_garbage_and_keeps_roots() {
        let mut m = BddManager::new(4);
        let vs: Vec<BddRef> = (0..4).map(|v| m.var(v)).collect();
        let keep = {
            let t = m.and(vs[0], vs[1]);
            m.or(t, vs[2])
        };
        // Build garbage: a chain of xors never rooted.
        let mut junk = vs[3];
        for &v in &vs {
            junk = m.xor(junk, v);
        }
        let live_before = m.live_node_count();
        // Root the kept function plus the variable nodes the test keeps
        // using (a single-variable BDD is its own node, not necessarily a
        // subgraph of `keep`).
        let freed = m.gc(&[keep, vs[0], vs[1], vs[2]]);
        assert!(freed > 0, "unrooted xor chain must be collected");
        assert_eq!(m.live_node_count(), live_before - freed);
        m.check_canonical().unwrap();
        // The kept function still evaluates correctly...
        assert!(m.eval(keep, &[true, true, false, false]));
        assert!(!m.eval(keep, &[true, false, false, false]));
        // ...and hash consing still resolves to the same node.
        let t = m.and(vs[0], vs[1]);
        let again = m.or(t, vs[2]);
        assert_eq!(again, keep);
        assert_eq!(m.gc_count(), 1);
    }

    #[test]
    fn gc_recycles_indices_through_the_free_list() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let junk = m.and(a, b);
        let allocated = m.node_count();
        let _ = junk;
        let freed = m.gc(&[a, b]);
        assert_eq!(freed, 1);
        // A new node must reuse the freed slot, not grow the store.
        let c = m.var(2);
        assert_eq!(m.node_count(), allocated);
        let _ = m.and(a, c);
        m.check_canonical().unwrap();
    }

    #[test]
    fn stats_track_cache_and_peak() {
        let mut m = BddManager::new(6);
        let vs: Vec<BddRef> = (0..6).map(|v| m.var(v)).collect();
        let mut f = BddRef::FALSE;
        for &v in &vs {
            f = m.xor(f, v);
        }
        let s = m.stats();
        assert!(s.live_nodes > 0);
        assert!(s.peak_live_nodes >= s.live_nodes);
        assert!(s.unique_load > 0.0 && s.unique_load < 1.0);
        assert!(s.cache_misses > 0);
        let mut merged = BddStats::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.cache_misses, 2 * s.cache_misses);
        assert_eq!(merged.peak_live_nodes, s.peak_live_nodes);
        assert!(merged.cache_hit_rate() >= 0.0);
    }

    #[test]
    fn sift_preserves_functions_and_canonicity() {
        let mut m = BddManager::new(6);
        let vs: Vec<BddRef> = (0..6).map(|v| m.var(v)).collect();
        // An order-sensitive function: (v0&v3) | (v1&v4) | (v2&v5) is
        // exponential in the interleaved order, linear when paired.
        let t0 = m.and(vs[0], vs[3]);
        let t1 = m.and(vs[1], vs[4]);
        let t2 = m.and(vs[2], vs[5]);
        let o = m.or(t0, t1);
        let f = m.or(o, t2);
        let size_before = m.size(f);
        let truth: Vec<bool> = (0..64u32)
            .map(|p| {
                let asg: Vec<bool> = (0..6).map(|j| p >> j & 1 != 0).collect();
                m.eval(f, &asg)
            })
            .collect();
        m.sift(&[f]);
        m.check_canonical().unwrap();
        assert!(m.size(f) <= size_before, "sift must not grow the root");
        for (p, &expect) in truth.iter().enumerate() {
            let asg: Vec<bool> = (0..6).map(|j| p >> j & 1 != 0).collect();
            assert_eq!(m.eval(f, &asg), expect, "pattern {p:06b}");
        }
        assert_eq!(m.reorder_count(), 1);
        // Probabilities stay indexed by Var, not level.
        assert!((m.probability_uniform(f) - m.sat_count(f) / 64.0).abs() < 1e-12);
    }

    #[test]
    fn reorder_trigger_fires_and_rearms() {
        let mut m = BddManager::new(8);
        m.enable_reordering(256);
        let vs: Vec<BddRef> = (0..8).map(|v| m.var(v)).collect();
        // Interleaved achilles-heel function to force growth.
        let t0 = m.and(vs[0], vs[4]);
        let t1 = m.and(vs[1], vs[5]);
        let t2 = m.and(vs[2], vs[6]);
        let t3 = m.and(vs[3], vs[7]);
        let o0 = m.or(t0, t1);
        let o1 = m.or(o0, t2);
        let f = m.or(o1, t3);
        assert!(!m.maybe_reorder(&[f]), "small diagrams must not trigger");
        // Force the trigger artificially low and confirm it runs and
        // re-arms above the post-sift size.
        m.enable_reordering(256);
        let mut g = BddRef::FALSE;
        for i in 0..8 {
            for j in (i + 1)..8 {
                let t = m.and(vs[i], vs[j]);
                g = m.xor(g, t);
            }
        }
        let fired = m.maybe_reorder(&[f, g]);
        let expected = m.live_node_count() > 256;
        assert_eq!(fired, expected);
        m.check_canonical().unwrap();
    }
}
