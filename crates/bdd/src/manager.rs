//! The ROBDD node manager: hash-consed nodes, Boolean operations, and
//! structural queries.

use std::collections::HashMap;
use std::fmt;

/// Handle to a BDD node owned by a [`BddManager`].
///
/// Refs are plain indices; they are only meaningful relative to the manager
/// that issued them. The two terminals are [`BddRef::FALSE`] and
/// [`BddRef::TRUE`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BddRef(pub(crate) u32);

impl BddRef {
    /// The constant-false terminal.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true terminal.
    pub const TRUE: BddRef = BddRef(1);

    /// Returns `true` if this is one of the two terminals.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// Returns `true` if this is the constant-true terminal.
    #[must_use]
    pub fn is_true(self) -> bool {
        self == BddRef::TRUE
    }

    /// Returns `true` if this is the constant-false terminal.
    #[must_use]
    pub fn is_false(self) -> bool {
        self == BddRef::FALSE
    }
}

impl fmt::Debug for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BddRef::FALSE => write!(f, "⊥"),
            BddRef::TRUE => write!(f, "⊤"),
            BddRef(i) => write!(f, "b{i}"),
        }
    }
}

/// Variable index within a manager's fixed variable order (0 is topmost).
pub type Var = u32;

const TERMINAL_VAR: Var = Var::MAX;

#[derive(Clone, Copy)]
struct Node {
    var: Var,
    low: BddRef,
    high: BddRef,
}

/// Binary Boolean operations supported by [`BddManager::apply`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BddOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Exclusive or.
    Xor,
}

impl BddOp {
    fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BddOp::And => a && b,
            BddOp::Or => a || b,
            BddOp::Xor => a ^ b,
        }
    }

    /// Short-circuit result when one operand is a terminal, if determined.
    fn terminal_shortcut(self, t: BddRef, other: BddRef) -> Option<BddRef> {
        match (self, t) {
            (BddOp::And, BddRef::FALSE) => Some(BddRef::FALSE),
            (BddOp::And, BddRef::TRUE) => Some(other),
            (BddOp::Or, BddRef::TRUE) => Some(BddRef::TRUE),
            (BddOp::Or, BddRef::FALSE) => Some(other),
            (BddOp::Xor, BddRef::FALSE) => Some(other),
            (BddOp::Xor, BddRef::TRUE) => None, // needs structural negation
            _ => None,
        }
    }
}

/// A reduced ordered binary decision diagram manager.
///
/// All BDDs created through one manager share a global variable order
/// (variable 0 is decided first) and a hash-consed node store, so
/// structural equality of functions is pointer equality of [`BddRef`]s —
/// `f == g` as functions iff the refs are equal.
///
/// # Examples
///
/// ```
/// use relogic_bdd::BddManager;
///
/// let mut m = BddManager::new(2);
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.and(a, b);
/// let g = m.or(a, b);
/// assert_ne!(f, g);
/// assert!(m.eval(f, &[true, true]));
/// assert!(!m.eval(f, &[true, false]));
/// assert_eq!(m.probability_uniform(g), 0.75);
/// ```
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(Var, BddRef, BddRef), BddRef>,
    apply_cache: HashMap<(BddOp, BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    var_count: usize,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("vars", &self.var_count)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl BddManager {
    /// Creates a manager with `var_count` variables (indices `0..var_count`).
    ///
    /// More variables can be added later with [`BddManager::add_var`].
    #[must_use]
    pub fn new(var_count: usize) -> Self {
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                low: BddRef::FALSE,
                high: BddRef::FALSE,
            },
            Node {
                var: TERMINAL_VAR,
                low: BddRef::TRUE,
                high: BddRef::TRUE,
            },
        ];
        BddManager {
            nodes,
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            ite_cache: HashMap::new(),
            var_count,
        }
    }

    /// Number of variables in the order.
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// Appends a fresh variable at the bottom of the order and returns its
    /// index.
    pub fn add_var(&mut self) -> Var {
        let v = Var::try_from(self.var_count).expect("variable index overflow");
        self.var_count += 1;
        v
    }

    /// Total number of allocated nodes (including the two terminals); a
    /// coarse memory metric.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from `f` (its BDD size), terminals excluded.
    #[must_use]
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            count += 1;
            let n = self.nodes[r.0 as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Drops all operation caches (the unique table is kept, so existing
    /// refs stay valid). Useful to bound memory in long sweeps.
    pub fn clear_op_caches(&mut self) {
        self.apply_cache.clear();
        self.not_cache.clear();
        self.ite_cache.clear();
    }

    fn node(&self, r: BddRef) -> Node {
        self.nodes[r.0 as usize]
    }

    /// The decision variable of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[must_use]
    pub fn topvar(&self, f: BddRef) -> Var {
        assert!(!f.is_terminal(), "terminals have no decision variable");
        self.node(f).var
    }

    /// The `(low, high)` cofactors of `f` with respect to its top variable.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    #[must_use]
    pub fn cofactors(&self, f: BddRef) -> (BddRef, BddRef) {
        assert!(!f.is_terminal(), "terminals have no cofactors");
        let n = self.node(f);
        (n.low, n.high)
    }

    fn var_of(&self, r: BddRef) -> Var {
        self.node(r).var // TERMINAL_VAR for terminals, sorting below all vars
    }

    /// Returns the canonical node for `(var, low, high)`.
    fn mk(&mut self, var: Var, low: BddRef, high: BddRef) -> BddRef {
        if low == high {
            return low;
        }
        debug_assert!(var < self.var_of(low) && var < self.var_of(high));
        if let Some(&r) = self.unique.get(&(var, low, high)) {
            return r;
        }
        let r = BddRef(u32::try_from(self.nodes.len()).expect("BDD node count overflow"));
        self.nodes.push(Node { var, low, high });
        self.unique.insert((var, low, high), r);
        r
    }

    /// The single-variable function `x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: Var) -> BddRef {
        assert!((v as usize) < self.var_count, "variable {v} out of range");
        self.mk(v, BddRef::FALSE, BddRef::TRUE)
    }

    /// The negated single-variable function `¬x_v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn nvar(&mut self, v: Var) -> BddRef {
        assert!((v as usize) < self.var_count, "variable {v} out of range");
        self.mk(v, BddRef::TRUE, BddRef::FALSE)
    }

    /// A constant terminal as a `BddRef`.
    #[must_use]
    pub fn constant(value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// Applies a binary Boolean operation.
    pub fn apply(&mut self, op: BddOp, a: BddRef, b: BddRef) -> BddRef {
        if a.is_terminal() && b.is_terminal() {
            return Self::constant(op.eval(a.is_true(), b.is_true()));
        }
        if a.is_terminal() {
            if let Some(r) = op.terminal_shortcut(a, b) {
                return r;
            }
        }
        if b.is_terminal() {
            if let Some(r) = op.terminal_shortcut(b, a) {
                return r;
            }
        }
        // Commutative ops: canonicalize operand order for cache hits.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if a == b {
            return match op {
                BddOp::And | BddOp::Or => a,
                BddOp::Xor => BddRef::FALSE,
            };
        }
        if let Some(&r) = self.apply_cache.get(&(op, a, b)) {
            return r;
        }
        let (va, vb) = (self.var_of(a), self.var_of(b));
        let v = va.min(vb);
        let (a0, a1) = if va == v {
            let n = self.node(a);
            (n.low, n.high)
        } else {
            (a, a)
        };
        let (b0, b1) = if vb == v {
            let n = self.node(b);
            (n.low, n.high)
        } else {
            (b, b)
        };
        let low = self.apply(op, a0, b0);
        let high = self.apply(op, a1, b1);
        let r = self.mk(v, low, high);
        self.apply_cache.insert((op, a, b), r);
        r
    }

    /// Conjunction `a ∧ b`.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(BddOp::And, a, b)
    }

    /// Disjunction `a ∨ b`.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(BddOp::Or, a, b)
    }

    /// Exclusive or `a ⊕ b`.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(BddOp::Xor, a, b)
    }

    /// Negation `¬f`.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        if f.is_terminal() {
            return Self::constant(f.is_false());
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let n = self.node(f);
        let low = self.not(n.low);
        let high = self.not(n.high);
        let r = self.mk(n.var, low, high);
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        r
    }

    /// If-then-else `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return self.not(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let cof = |m: &Self, r: BddRef| -> (BddRef, BddRef) {
            if !r.is_terminal() && m.var_of(r) == v {
                let n = m.node(r);
                (n.low, n.high)
            } else {
                (r, r)
            }
        };
        let (f0, f1) = cof(self, f);
        let (g0, g1) = cof(self, g);
        let (h0, h1) = cof(self, h);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(v, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// n-ary conjunction over an iterator of functions (true for empty).
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = BddRef>) -> BddRef {
        fs.into_iter().fold(BddRef::TRUE, |acc, f| self.and(acc, f))
    }

    /// n-ary disjunction over an iterator of functions (false for empty).
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = BddRef>) -> BddRef {
        fs.into_iter().fold(BddRef::FALSE, |acc, f| self.or(acc, f))
    }

    /// Cofactor: `f` with variable `v` fixed to `value`.
    pub fn restrict(&mut self, f: BddRef, v: Var, value: bool) -> BddRef {
        let mut cache = HashMap::new();
        self.restrict_rec(f, v, value, &mut cache)
    }

    fn restrict_rec(
        &mut self,
        f: BddRef,
        v: Var,
        value: bool,
        cache: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        if f.is_terminal() || self.var_of(f) > v {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let n = self.node(f);
        let r = if n.var == v {
            if value {
                n.high
            } else {
                n.low
            }
        } else {
            let low = self.restrict_rec(n.low, v, value, cache);
            let high = self.restrict_rec(n.high, v, value, cache);
            self.mk(n.var, low, high)
        };
        cache.insert(f, r);
        r
    }

    /// Functional composition: substitutes `g` for variable `v` in `f`.
    pub fn compose(&mut self, f: BddRef, v: Var, g: BddRef) -> BddRef {
        let mut cache = HashMap::new();
        self.compose_rec(f, v, g, &mut cache)
    }

    fn compose_rec(
        &mut self,
        f: BddRef,
        v: Var,
        g: BddRef,
        cache: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        if f.is_terminal() || self.var_of(f) > v {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let n = self.node(f);
        let r = if n.var == v {
            self.ite(g, n.high, n.low)
        } else {
            let low = self.compose_rec(n.low, v, g, cache);
            let high = self.compose_rec(n.high, v, g, cache);
            let x = self.var(n.var);
            self.ite(x, high, low)
        };
        cache.insert(f, r);
        r
    }

    /// Existential quantification `∃v. f = f|_{v=0} ∨ f|_{v=1}`.
    pub fn exists(&mut self, f: BddRef, v: Var) -> BddRef {
        let f0 = self.restrict(f, v, false);
        let f1 = self.restrict(f, v, true);
        self.or(f0, f1)
    }

    /// Boolean difference `∂f/∂v = f|_{v=0} ⊕ f|_{v=1}`: the set of input
    /// assignments where the value of `v` is observable at `f`.
    pub fn boolean_difference(&mut self, f: BddRef, v: Var) -> BddRef {
        let f0 = self.restrict(f, v, false);
        let f1 = self.restrict(f, v, true);
        self.xor(f0, f1)
    }

    /// The set of variables `f` structurally depends on, ascending.
    #[must_use]
    pub fn support(&self, f: BddRef) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            vars.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.into_iter().collect()
    }

    /// Evaluates `f` under a full variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable with index `>= assignment.len()`.
    #[must_use]
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut r = f;
        while !r.is_terminal() {
            let n = self.node(r);
            r = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        r.is_true()
    }

    /// Probability that `f` is true when each variable `v` is independently
    /// true with probability `var_probs[v]`.
    ///
    /// Runs in `O(|f|)` via a memoized bottom-up sweep.
    ///
    /// # Panics
    ///
    /// Panics if `f` depends on a variable with index `>= var_probs.len()`.
    #[must_use]
    pub fn probability(&self, f: BddRef, var_probs: &[f64]) -> f64 {
        let mut memo: HashMap<BddRef, f64> = HashMap::new();
        self.probability_memo(f, var_probs, &mut memo)
    }

    /// Like [`BddManager::probability`] but reusing a caller-provided memo
    /// table, so many related queries (e.g. weight-vector entries) share
    /// work. The memo is only valid for one fixed `var_probs`.
    pub fn probability_memo(
        &self,
        f: BddRef,
        var_probs: &[f64],
        memo: &mut HashMap<BddRef, f64>,
    ) -> f64 {
        if f.is_false() {
            return 0.0;
        }
        if f.is_true() {
            return 1.0;
        }
        if let Some(&p) = memo.get(&f) {
            return p;
        }
        let n = self.node(f);
        let p_hi = self.probability_memo(n.high, var_probs, memo);
        let p_lo = self.probability_memo(n.low, var_probs, memo);
        let pv = var_probs[n.var as usize];
        let p = pv * p_hi + (1.0 - pv) * p_lo;
        memo.insert(f, p);
        p
    }

    /// Probability that `f` is true under the uniform input distribution.
    #[must_use]
    pub fn probability_uniform(&self, f: BddRef) -> f64 {
        let probs = vec![0.5; self.var_count];
        self.probability(f, &probs)
    }

    /// Number of satisfying assignments of `f` over all `var_count`
    /// variables (as `f64`, exact for up to 2^52 models).
    #[must_use]
    pub fn sat_count(&self, f: BddRef) -> f64 {
        self.probability_uniform(f) * (self.var_count as f64).exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_var() -> (BddManager, BddRef, BddRef) {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        (m, a, b)
    }

    #[test]
    fn hash_consing_gives_canonical_forms() {
        let (mut m, a, b) = two_var();
        let f1 = m.and(a, b);
        let f2 = m.and(b, a);
        assert_eq!(f1, f2);
        let n1 = m.not(f1);
        let nand_direct = {
            let na = m.not(a);
            let nb = m.not(b);
            m.or(na, nb)
        };
        assert_eq!(n1, nand_direct); // De Morgan, structurally
    }

    #[test]
    fn terminals_and_constants() {
        assert!(BddRef::TRUE.is_true());
        assert!(BddRef::FALSE.is_false());
        assert_eq!(BddManager::constant(true), BddRef::TRUE);
        let (mut m, a, _) = two_var();
        assert_eq!(m.and(a, BddRef::FALSE), BddRef::FALSE);
        assert_eq!(m.and(a, BddRef::TRUE), a);
        assert_eq!(m.or(a, BddRef::TRUE), BddRef::TRUE);
        assert_eq!(m.xor(a, BddRef::FALSE), a);
        let na = m.not(a);
        assert_eq!(m.xor(a, BddRef::TRUE), na);
    }

    #[test]
    fn double_negation_is_identity() {
        let (mut m, a, b) = two_var();
        let f = m.xor(a, b);
        let nf = m.not(f);
        assert_eq!(m.not(nf), f);
    }

    #[test]
    fn eval_matches_semantics() {
        let (mut m, a, b) = two_var();
        let f = m.xor(a, b);
        assert!(!m.eval(f, &[false, false]));
        assert!(m.eval(f, &[false, true]));
        assert!(m.eval(f, &[true, false]));
        assert!(!m.eval(f, &[true, true]));
    }

    #[test]
    fn ite_identities() {
        let (mut m, a, b) = two_var();
        let f = m.ite(a, b, BddRef::FALSE);
        let g = m.and(a, b);
        assert_eq!(f, g);
        let na = m.not(a);
        assert_eq!(m.ite(a, BddRef::FALSE, BddRef::TRUE), na);
        assert_eq!(m.ite(a, BddRef::TRUE, BddRef::FALSE), a);
        assert_eq!(m.ite(BddRef::TRUE, a, b), a);
        assert_eq!(m.ite(BddRef::FALSE, a, b), b);
        assert_eq!(m.ite(b, a, a), a);
    }

    #[test]
    fn restrict_cofactors() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), BddRef::FALSE);
        assert_eq!(m.restrict(f, 1, true), a);
        // restricting a variable not in support is identity
        let g = m.var(0);
        assert_eq!(m.restrict(g, 1, true), g);
    }

    #[test]
    fn compose_substitutes() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // f = a & b; substitute b := (a ^ c)  =>  a & (a ^ c) = a & !c
        let f = m.and(a, b);
        let g = m.xor(a, c);
        let h = m.compose(f, 1, g);
        let nc = m.not(c);
        let expect = m.and(a, nc);
        assert_eq!(h, expect);
        // composing a variable outside the support is identity
        assert_eq!(m.compose(a, 2, b), a);
    }

    #[test]
    fn exists_quantifies() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        assert_eq!(m.exists(f, 0), b);
        let g = m.xor(a, b);
        assert_eq!(m.exists(g, 0), BddRef::TRUE);
    }

    #[test]
    fn boolean_difference_detects_observability() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        // a is observable iff b=1
        assert_eq!(m.boolean_difference(f, 0), b);
        let g = m.xor(a, b);
        // xor always observes both inputs
        assert_eq!(m.boolean_difference(g, 0), BddRef::TRUE);
    }

    #[test]
    fn support_lists_dependencies() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.or(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert_eq!(m.support(BddRef::TRUE), Vec::<Var>::new());
    }

    #[test]
    fn probability_weighted_and_uniform() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        assert!((m.probability(f, &[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((m.probability(f, &[0.1, 0.9]) - 0.09).abs() < 1e-12);
        let g = m.or(a, b);
        assert!((m.probability(g, &[0.1, 0.9]) - (1.0 - 0.9 * 0.1)).abs() < 1e-12);
        assert_eq!(m.sat_count(f), 1.0);
        assert_eq!(m.sat_count(g), 3.0);
    }

    #[test]
    fn size_and_node_count() {
        let (mut m, a, b) = two_var();
        let f = m.xor(a, b);
        assert_eq!(m.size(f), 3); // root + two b-nodes
        assert_eq!(m.size(BddRef::TRUE), 0);
        assert!(m.node_count() >= 5);
    }

    #[test]
    fn add_var_extends_order() {
        let mut m = BddManager::new(1);
        let v = m.add_var();
        assert_eq!(v, 1);
        let b = m.var(1);
        let a = m.var(0);
        let f = m.and(a, b);
        assert!(m.eval(f, &[true, true]));
    }

    #[test]
    fn clear_caches_preserves_refs() {
        let (mut m, a, b) = two_var();
        let f = m.and(a, b);
        m.clear_op_caches();
        let g = m.and(a, b);
        assert_eq!(f, g);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_out_of_range_panics() {
        let mut m = BddManager::new(1);
        let _ = m.var(3);
    }

    #[test]
    fn three_variable_majority() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let t = m.or(ab, ac);
        let maj = m.or(t, bc);
        assert_eq!(m.sat_count(maj), 4.0);
        for p in 0..8u32 {
            let asg: Vec<bool> = (0..3).map(|j| p >> j & 1 != 0).collect();
            let expect = asg.iter().filter(|&&x| x).count() >= 2;
            assert_eq!(m.eval(maj, &asg), expect);
        }
    }
}
