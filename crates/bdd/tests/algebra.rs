//! Property tests: BDD operations obey Boolean algebra and agree with a
//! brute-force truth-table oracle on random expressions.

use proptest::prelude::*;
use relogic_bdd::{BddManager, BddRef};

const VARS: usize = 5;

/// A random Boolean expression over `VARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..VARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(m: &mut BddManager, e: &Expr) -> BddRef {
    match e {
        Expr::Var(v) => m.var(*v as u32),
        Expr::Not(a) => {
            let fa = build(m, a);
            m.not(fa)
        }
        Expr::And(a, b) => {
            let fa = build(m, a);
            let fb = build(m, b);
            m.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = build(m, a);
            let fb = build(m, b);
            m.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = build(m, a);
            let fb = build(m, b);
            m.xor(fa, fb)
        }
    }
}

fn eval(e: &Expr, asg: &[bool]) -> bool {
    match e {
        Expr::Var(v) => asg[*v],
        Expr::Not(a) => !eval(a, asg),
        Expr::And(a, b) => eval(a, asg) && eval(b, asg),
        Expr::Or(a, b) => eval(a, asg) || eval(b, asg),
        Expr::Xor(a, b) => eval(a, asg) ^ eval(b, asg),
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1usize << VARS).map(|v| (0..VARS).map(|j| v >> j & 1 != 0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut m = BddManager::new(VARS);
        let f = build(&mut m, &e);
        for asg in assignments() {
            prop_assert_eq!(m.eval(f, &asg), eval(&e, &asg));
        }
    }

    #[test]
    fn equality_is_functional_equivalence(a in arb_expr(), b in arb_expr()) {
        let mut m = BddManager::new(VARS);
        let fa = build(&mut m, &a);
        let fb = build(&mut m, &b);
        let same_fn = assignments().all(|asg| eval(&a, &asg) == eval(&b, &asg));
        prop_assert_eq!(fa == fb, same_fn, "hash consing must be canonical");
    }

    #[test]
    fn shannon_expansion_holds(e in arb_expr(), v in 0..VARS) {
        let mut m = BddManager::new(VARS);
        let f = build(&mut m, &e);
        let v = v as u32;
        let f0 = m.restrict(f, v, false);
        let f1 = m.restrict(f, v, true);
        let x = m.var(v);
        let rebuilt = m.ite(x, f1, f0);
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn de_morgan_and_involution(a in arb_expr(), b in arb_expr()) {
        let mut m = BddManager::new(VARS);
        let fa = build(&mut m, &a);
        let fb = build(&mut m, &b);
        let and = m.and(fa, fb);
        let nand = m.not(and);
        let na = m.not(fa);
        let nb = m.not(fb);
        let or_of_nots = m.or(na, nb);
        prop_assert_eq!(nand, or_of_nots);
        prop_assert_eq!(m.not(nand), and);
    }

    #[test]
    fn probability_equals_model_fraction(e in arb_expr()) {
        let mut m = BddManager::new(VARS);
        let f = build(&mut m, &e);
        let models = assignments().filter(|asg| eval(&e, asg)).count();
        let expect = models as f64 / (1usize << VARS) as f64;
        prop_assert!((m.probability_uniform(f) - expect).abs() < 1e-12);
        prop_assert!((m.sat_count(f) - models as f64).abs() < 1e-9);
    }

    #[test]
    fn compose_agrees_with_substitution(e in arb_expr(), g in arb_expr(), v in 0..VARS) {
        let mut m = BddManager::new(VARS);
        let f = build(&mut m, &e);
        let sub = build(&mut m, &g);
        let composed = m.compose(f, v as u32, sub);
        for asg in assignments() {
            let mut patched = asg.clone();
            patched[v] = eval(&g, &asg);
            prop_assert_eq!(m.eval(composed, &asg), eval(&e, &patched));
        }
    }

    #[test]
    fn boolean_difference_marks_sensitivity(e in arb_expr(), v in 0..VARS) {
        let mut m = BddManager::new(VARS);
        let f = build(&mut m, &e);
        let diff = m.boolean_difference(f, v as u32);
        for asg in assignments() {
            let mut flipped = asg.clone();
            flipped[v] = !flipped[v];
            let sensitive = eval(&e, &asg) != eval(&e, &flipped);
            prop_assert_eq!(m.eval(diff, &asg), sensitive);
        }
    }

    #[test]
    fn support_is_exactly_the_sensitive_vars(e in arb_expr()) {
        let mut m = BddManager::new(VARS);
        let f = build(&mut m, &e);
        let support = m.support(f);
        for v in 0..VARS {
            let sensitive = assignments().any(|asg| {
                let mut flipped = asg.clone();
                flipped[v] = !flipped[v];
                eval(&e, &asg) != eval(&e, &flipped)
            });
            prop_assert_eq!(support.contains(&(v as u32)), sensitive, "var {}", v);
        }
    }
}
