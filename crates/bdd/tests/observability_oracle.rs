//! Property tests: BDD-backed exact observability (auxiliary-variable
//! splice + Boolean difference) agrees with exhaustive enumeration on
//! random ≤12-input circuits, and the complement-edge canonical form holds
//! under everything those computations throw at the manager.

use proptest::collection;
use proptest::prelude::*;
use relogic_bdd::{BddManager, BddRef, CircuitBdds, Var, VarOrder};
use relogic_netlist::{Circuit, GateKind, NodeId};

/// Recipe for one random gate: a kind selector plus two fanin selectors
/// (reduced modulo the number of already-built nodes, so every recipe is
/// valid for any prefix).
type GateSeed = (u8, u32, u32);

#[derive(Clone, Debug)]
struct CircuitSeed {
    inputs: usize,
    gates: Vec<GateSeed>,
    outputs: Vec<u32>,
}

fn arb_circuit() -> impl Strategy<Value = CircuitSeed> {
    (
        2usize..=12,
        collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..24),
        collection::vec(any::<u32>(), 1..4),
    )
        .prop_map(|(inputs, gates, outputs)| CircuitSeed {
            inputs,
            gates,
            outputs,
        })
}

fn build_circuit(seed: &CircuitSeed) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..seed.inputs {
        c.add_input(format!("x{i}"));
    }
    for &(kind_sel, a, b) in &seed.gates {
        let kinds = GateKind::LOGIC_KINDS;
        let kind = kinds[kind_sel as usize % kinds.len()];
        let n = u32::try_from(c.len()).expect("node count fits");
        let fa = NodeId::from_index((a % n) as usize);
        let fb = NodeId::from_index((b % n) as usize);
        let fanins: Vec<NodeId> = if kind.accepts_arity(2) {
            vec![fa, fb]
        } else {
            vec![fa]
        };
        c.add_gate(kind, fanins).expect("arity checked");
    }
    let n = u32::try_from(c.len()).expect("node count fits");
    for (k, &sel) in seed.outputs.iter().enumerate() {
        c.add_output(format!("y{k}"), NodeId::from_index((sel % n) as usize));
    }
    c
}

/// Evaluates the circuit on `inputs` with the value at `flip` inverted,
/// returning the output vector.
fn eval_with_flip(c: &Circuit, inputs: &[bool], flip: NodeId) -> Vec<bool> {
    let mut vals = vec![false; c.len()];
    for (id, node) in c.iter() {
        let v = match node.kind() {
            GateKind::Input => inputs[c.input_position(id).expect("input has a position")],
            GateKind::Const(b) => b,
            k => {
                let fan: Vec<bool> = node.fanins().iter().map(|f| vals[f.index()]).collect();
                k.eval(&fan)
            }
        };
        vals[id.index()] = if id == flip { !v } else { v };
    }
    c.outputs().iter().map(|o| vals[o.node().index()]).collect()
}

fn eval_plain(c: &Circuit, inputs: &[bool]) -> Vec<bool> {
    c.eval(inputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every node and every output of a random circuit, the spliced
    /// Boolean-difference observability equals the exhaustive fraction of
    /// input assignments on which flipping the node flips the output.
    #[test]
    fn splice_observability_matches_exhaustive(seed in arb_circuit()) {
        let c = build_circuit(&seed);
        let order = VarOrder::dfs(&c);
        let mut m = BddManager::new(order.len() + 1);
        let aux = Var::try_from(order.len()).expect("≤ 12 inputs");
        m.place_var_at_top(aux);
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        let n_asg = 1usize << c.input_count();
        for target in c.node_ids() {
            let funcs = bdds.with_aux_at(&mut m, &c, target, aux);
            for (k, out) in c.outputs().iter().enumerate() {
                let pred = m.boolean_difference(funcs[out.node().index()], aux);
                let got = m.probability_uniform(pred);
                let mut flips = 0usize;
                for v in 0..n_asg {
                    let bits: Vec<bool> =
                        (0..c.input_count()).map(|j| v >> j & 1 != 0).collect();
                    if eval_plain(&c, &bits)[k] != eval_with_flip(&c, &bits, target)[k] {
                        flips += 1;
                    }
                }
                #[allow(clippy::cast_precision_loss)]
                let expect = flips as f64 / n_asg as f64;
                prop_assert!(
                    (got - expect).abs() < 1e-12,
                    "node {target}, output {k}: bdd {got} vs exhaustive {expect}"
                );
            }
        }
        // Everything above ran through complement-edge ite: the store must
        // still be in canonical low-edge-regular form.
        m.check_canonical().expect("canonical after splices");
    }

    /// Complement-edge canonicity: the node store never holds a
    /// complemented low edge, and double negation is the identity at the
    /// pointer level (no new nodes, same tagged ref).
    #[test]
    fn complement_edges_stay_canonical(seed in arb_circuit()) {
        let c = build_circuit(&seed);
        let order = VarOrder::dfs(&c);
        let mut m = BddManager::new(order.len().max(1));
        let bdds = CircuitBdds::build(&mut m, &c, &order);
        m.check_canonical().expect("canonical after circuit build");
        for &f in bdds.funcs() {
            let nf = m.not(f);
            let nnf = m.not(nf);
            prop_assert_eq!(nnf, f, "not(not(f)) must be pointer-identical");
            prop_assert!(f != nf, "f and ¬f must differ");
        }
        // NOT is a tag flip: negating every function allocates nothing.
        let before = m.live_node_count();
        for &f in bdds.funcs() {
            let _ = m.not(f);
        }
        prop_assert_eq!(m.live_node_count(), before);
        m.check_canonical().expect("canonical after negations");
    }

    /// Constants are canonical complements of each other.
    #[test]
    fn constant_complement_identity(_x in 0u8..1) {
        let m = BddManager::new(1);
        prop_assert_eq!(m.not(BddRef::TRUE), BddRef::FALSE);
        prop_assert_eq!(m.not(BddRef::FALSE), BddRef::TRUE);
    }
}
