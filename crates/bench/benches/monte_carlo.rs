//! Criterion bench: Monte Carlo fault-injection throughput — the "Monte
//! Carlo" runtime column of Table 2 (per evaluation, scaled pattern count)
//! plus the raw packed-simulator and biased-bit kernels it is built from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use relogic::GateEps;
use relogic_sim::{estimate, BiasedBits, MonteCarloConfig, PackedSim};
use std::hint::black_box;

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo_estimate");
    group.sample_size(10);
    for name in ["x2", "b9", "c499", "i10"] {
        let circuit = relogic_gen::suite::build(name).expect("suite circuit");
        let eps = GateEps::uniform(&circuit, 0.1);
        let cfg = MonteCarloConfig {
            patterns: 1 << 14,
            ..MonteCarloConfig::default()
        };
        group.throughput(Throughput::Elements(1 << 14));
        group.bench_function(name, |b| {
            b.iter(|| black_box(estimate(&circuit, eps.as_slice(), &cfg)));
        });
    }
    group.finish();
}

fn bench_packed_sim(c: &mut Criterion) {
    let circuit = relogic_gen::suite::i10();
    let mut sim = PackedSim::new(&circuit);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut group = c.benchmark_group("packed_sim_block");
    group.throughput(Throughput::Elements(64));
    group.bench_function("i10_propagate", |b| {
        b.iter(|| {
            sim.randomize_inputs(&mut rng);
            sim.propagate(&circuit);
            black_box(sim.words()[circuit.len() - 1])
        });
    });
    group.finish();
}

fn bench_biased_bits(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let gen24 = BiasedBits::new(0.1, 24);
    let gen8 = BiasedBits::new(0.1, 8);
    let mut group = c.benchmark_group("biased_bits_word");
    group.throughput(Throughput::Elements(64));
    group.bench_function("resolution24", |b| {
        b.iter(|| black_box(gen24.next_word(&mut rng)));
    });
    group.bench_function("resolution8", |b| {
        b.iter(|| black_box(gen8.next_word(&mut rng)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_monte_carlo,
    bench_packed_sim,
    bench_biased_bits
);
criterion_main!(benches);
