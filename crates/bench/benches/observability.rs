//! Criterion bench: observability computation (the Fig. 1 engine) and the
//! closed-form evaluation (Eq. 3), in both BDD and fault-simulation
//! backends, plus the correlation-coefficient overhead of the single-pass
//! engine (the §4.1 machinery behind Figs. 5 and 8).

use criterion::{criterion_group, criterion_main, Criterion};
use relogic::{
    consolidate::Consolidator, Backend, GateEps, InputDistribution, ObservabilityMatrix,
    SinglePass, SinglePassOptions, Weights,
};
use std::hint::black_box;

fn bench_observability(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability_matrix");
    group.sample_size(10);
    let x2 = relogic_gen::suite::x2();
    group.bench_function("x2_bdd", |b| {
        b.iter(|| {
            black_box(ObservabilityMatrix::compute(
                &x2,
                &InputDistribution::Uniform,
                Backend::Bdd,
            ))
        });
    });
    group.bench_function("x2_sim", |b| {
        b.iter(|| {
            black_box(ObservabilityMatrix::compute(
                &x2,
                &InputDistribution::Uniform,
                Backend::Simulation {
                    patterns: 1 << 12,
                    seed: 2,
                },
            ))
        });
    });
    group.finish();
}

fn bench_closed_form(c: &mut Criterion) {
    let b9 = relogic_gen::suite::b9();
    let obs = ObservabilityMatrix::compute(&b9, &InputDistribution::Uniform, Backend::Bdd);
    let eps = GateEps::uniform(&b9, 0.1);
    // The closed form is the cheap part: one product per output (Eq. 3) —
    // this is what makes it attractive for soft-error-rate sweeps.
    c.bench_function("closed_form_b9", |b| {
        b.iter(|| black_box(obs.closed_form(black_box(&eps))));
    });
}

fn bench_consolidation(c: &mut Criterion) {
    let mut group = c.benchmark_group("consolidation");
    group.sample_size(10);
    let b9 = relogic_gen::suite::b9();
    let backend = Backend::Simulation {
        patterns: 1 << 14,
        seed: 7,
    };
    let weights = Weights::compute(&b9, &InputDistribution::Uniform, backend);
    let engine = SinglePass::new(&b9, &weights, SinglePassOptions::default());
    let result = engine.run(&GateEps::uniform(&b9, 0.1));
    let cons = Consolidator::new(&b9, &InputDistribution::Uniform, backend);
    group.bench_function("b9_any_output", |b| {
        b.iter(|| black_box(cons.any_output_error(black_box(&result))));
    });
    group.bench_function("b9_build_consolidator", |b| {
        b.iter(|| black_box(Consolidator::new(&b9, &InputDistribution::Uniform, backend)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_observability,
    bench_closed_form,
    bench_consolidation
);
criterion_main!(benches);
