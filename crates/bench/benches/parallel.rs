//! Criterion bench: Monte Carlo fault-injection throughput of the
//! deterministic parallel execution layer at 1/2/4/8 worker threads, on
//! the i10 analogue (the suite's largest circuit, c6288-class at 2643
//! gates) and on an ε-sweep of the single-pass engine.
//!
//! All thread counts compute the bit-identical estimate, so any spread
//! between the `threads/N` rows is pure execution-layer speedup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use relogic::sweep::{epsilon_grid, sweep_single_pass_threads};
use relogic::{Backend, GateEps, InputDistribution, SinglePassOptions, Weights};
use relogic_sim::{estimate, MonteCarloConfig};
use std::hint::black_box;

const PATTERNS: u64 = 1 << 15;

fn bench_mc_threads(c: &mut Criterion) {
    let circuit = relogic_gen::suite::i10();
    let eps = GateEps::uniform(&circuit, 0.1);
    let mut group = c.benchmark_group("monte_carlo_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PATTERNS));
    for threads in [1usize, 2, 4, 8] {
        let cfg = MonteCarloConfig {
            patterns: PATTERNS,
            threads,
            ..MonteCarloConfig::default()
        };
        group.bench_function(format!("i10/threads{threads}"), |b| {
            b.iter(|| black_box(estimate(&circuit, eps.as_slice(), &cfg)));
        });
    }
    group.finish();
}

fn bench_sweep_threads(c: &mut Criterion) {
    let circuit = relogic_gen::suite::build("c499").expect("suite circuit");
    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    let grid = epsilon_grid(50, 0.0, 0.5);
    let mut group = c.benchmark_group("sweep_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(grid.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("c499x50/threads{threads}"), |b| {
            b.iter(|| {
                black_box(sweep_single_pass_threads(
                    &circuit,
                    &weights,
                    SinglePassOptions::default(),
                    &grid,
                    threads,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mc_threads, bench_sweep_threads);
criterion_main!(benches);
