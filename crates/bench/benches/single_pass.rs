//! Criterion bench: single-pass reliability analysis runtime per circuit —
//! the "Single-pass analysis" runtime column of Table 2.
//!
//! Weight vectors are precomputed outside the measured region, exactly as
//! the paper amortizes them across a 50-run sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use relogic::{Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights};
use std::hint::black_box;

fn bench_single_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_pass_run");
    group.sample_size(10);
    for name in ["x2", "b9", "c499", "i10"] {
        let circuit = relogic_gen::suite::build(name).expect("suite circuit");
        let backend = relogic_bench::backend_for(name);
        let weights = Weights::compute(&circuit, &InputDistribution::Uniform, backend);
        let engine = SinglePass::new(&circuit, &weights, SinglePassOptions::default());
        let eps = GateEps::uniform(&circuit, 0.1);
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.run(black_box(&eps))));
        });
    }
    group.finish();
}

fn bench_single_pass_no_correlation(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_pass_plain");
    group.sample_size(10);
    for name in ["b9", "c499"] {
        let circuit = relogic_gen::suite::build(name).expect("suite circuit");
        let weights = Weights::compute(
            &circuit,
            &InputDistribution::Uniform,
            relogic_bench::backend_for(name),
        );
        let engine = SinglePass::new(
            &circuit,
            &weights,
            SinglePassOptions::without_correlations(),
        );
        let eps = GateEps::uniform(&circuit, 0.1);
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.run(black_box(&eps))));
        });
    }
    group.finish();
}

fn bench_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("weights_precompute");
    group.sample_size(10);
    let b9 = relogic_gen::suite::b9();
    group.bench_function("b9_bdd", |b| {
        b.iter(|| {
            black_box(Weights::compute(
                &b9,
                &InputDistribution::Uniform,
                Backend::Bdd,
            ))
        });
    });
    let i10 = relogic_gen::suite::i10();
    group.bench_function("i10_sim", |b| {
        b.iter(|| {
            black_box(Weights::compute(
                &i10,
                &InputDistribution::Uniform,
                Backend::Simulation {
                    patterns: 1 << 14,
                    seed: 1,
                },
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_pass,
    bench_single_pass_no_correlation,
    bench_weights
);
criterion_main!(benches);
