//! Criterion bench: the substrate layers — BDD construction/model counting
//! and netlist parsing — whose costs bound the exact backends.

use criterion::{criterion_group, criterion_main, Criterion};
use relogic_bdd::{BddManager, CircuitBdds, VarOrder};
use relogic_netlist::bench as bench_format;
use std::hint::black_box;

fn bench_bdd_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_build");
    group.sample_size(10);
    for name in ["b9", "c499"] {
        let circuit = relogic_gen::suite::build(name).expect("suite circuit");
        group.bench_function(name, |b| {
            b.iter(|| {
                let order = VarOrder::dfs(&circuit);
                let mut m = BddManager::new(order.len());
                let bdds = CircuitBdds::build(&mut m, &circuit, &order);
                black_box(bdds.func(circuit.outputs()[0].node()))
            });
        });
    }
    group.finish();
}

fn bench_bdd_probability(c: &mut Criterion) {
    let circuit = relogic_gen::suite::c499();
    let order = VarOrder::dfs(&circuit);
    let mut m = BddManager::new(order.len());
    let bdds = CircuitBdds::build(&mut m, &circuit, &order);
    let probs = vec![0.5; order.len()];
    let roots: Vec<_> = circuit
        .outputs()
        .iter()
        .map(|o| bdds.func(o.node()))
        .collect();
    c.bench_function("bdd_probability_c499_outputs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &r in &roots {
                acc += m.probability(r, &probs);
            }
            black_box(acc)
        });
    });
}

fn bench_parse(c: &mut Criterion) {
    let circuit = relogic_gen::suite::c1908();
    let text = bench_format::write(&circuit);
    c.bench_function("bench_format_parse_c1908", |b| {
        b.iter(|| black_box(bench_format::parse(black_box(&text)).expect("parses")));
    });
}

criterion_group!(benches, bench_bdd_build, bench_bdd_probability, bench_parse);
criterion_main!(benches);
