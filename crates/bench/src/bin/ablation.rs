//! Ablation studies for the implementation's design knobs:
//!
//! 1. **Correlation partner cap** — accuracy of the single-pass engine on
//!    the reconvergence-heavy c499 analogue as the per-signal partner
//!    budget shrinks (`None` = track everything … 0 = plain §4 algorithm).
//! 2. **Biased-bit resolution** — quantization error of the Monte Carlo
//!    fault masks vs the binary digits spent per ε.
//! 3. **Weight-vector sampling budget** — single-pass accuracy as the
//!    simulation backend's pattern count grows (vs exact BDD weights).
//!
//! ```text
//! cargo run -p relogic-bench --release --bin ablation
//! ```

use relogic::{
    metrics, Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights,
};
use relogic_bench::{render_table, Cli};
use relogic_sim::MonteCarloConfig;

fn main() {
    let cli = Cli::parse();
    partner_cap_ablation(&cli);
    bit_resolution_ablation();
    weight_budget_ablation(&cli);
}

fn partner_cap_ablation(cli: &Cli) {
    println!("Ablation 1: correlation partner cap on c499 (avg % error vs MC)\n");
    let circuit = relogic_gen::suite::c499();
    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    let eps_points = [0.05, 0.15, 0.3];
    // Reference Monte Carlo per ε.
    let refs: Vec<Vec<f64>> = eps_points
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            let eps = GateEps::uniform(&circuit, e);
            relogic_sim::estimate(
                &circuit,
                eps.as_slice(),
                &MonteCarloConfig {
                    seed: 0xAB1A_0000 + i as u64,
                    ..cli.mc_config()
                },
            )
            .per_output()
            .to_vec()
        })
        .collect();

    let mut rows = Vec::new();
    let configs: Vec<(String, SinglePassOptions)> = vec![
        (
            "off (plain §4)".into(),
            SinglePassOptions::without_correlations(),
        ),
        (
            "cap 4".into(),
            SinglePassOptions {
                partner_cap: Some(4),
                ..SinglePassOptions::default()
            },
        ),
        (
            "cap 16".into(),
            SinglePassOptions {
                partner_cap: Some(16),
                ..SinglePassOptions::default()
            },
        ),
        ("cap 64 (default)".into(), SinglePassOptions::default()),
        (
            "unbounded".into(),
            SinglePassOptions {
                partner_cap: None,
                ..SinglePassOptions::default()
            },
        ),
    ];
    for (label, opts) in configs {
        let engine = SinglePass::new(&circuit, &weights, opts);
        let t0 = std::time::Instant::now();
        let mut row = vec![label];
        for (i, &e) in eps_points.iter().enumerate() {
            let r = engine.run(&GateEps::uniform(&circuit, e));
            row.push(format!(
                "{:.2}",
                metrics::average_percent_error(r.per_output(), &refs[i])
            ));
        }
        row.push(format!("{:.0}ms", t0.elapsed().as_secs_f64() * 1e3 / 3.0));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["partner cap", "e=.05", "e=.15", "e=.30", "per run"],
            &rows
        )
    );
}

fn bit_resolution_ablation() {
    println!("Ablation 2: biased-bit resolution (inverter, δ must equal ε = 0.3)\n");
    let mut c = relogic_netlist::Circuit::new("inv");
    let a = c.add_input("a");
    let g = c.not(a);
    c.add_output("y", g);
    let mut eps = GateEps::zero(&c);
    eps.set(g, 0.3);
    let mut rows = Vec::new();
    for resolution in [2, 4, 8, 16, 24] {
        let r = relogic_sim::estimate(
            &c,
            eps.as_slice(),
            &MonteCarloConfig {
                patterns: 1 << 20,
                bit_resolution: resolution,
                ..MonteCarloConfig::default()
            },
        );
        let effective = relogic_sim::BiasedBits::new(0.3, resolution).effective_probability();
        rows.push(vec![
            resolution.to_string(),
            format!("{effective:.6}"),
            format!("{:.6}", r.per_output()[0]),
            format!("{:+.6}", r.per_output()[0] - 0.3),
        ]);
    }
    println!(
        "{}",
        render_table(&["bits", "quantized ε", "measured δ", "bias"], &rows)
    );
}

fn weight_budget_ablation(cli: &Cli) {
    println!("Ablation 3: weight-vector sampling budget on b9 (avg % error vs MC at ε = 0.1)\n");
    let circuit = relogic_gen::suite::b9();
    let eps = GateEps::uniform(&circuit, 0.1);
    let mc = relogic_sim::estimate(&circuit, eps.as_slice(), &cli.mc_config());
    let mut rows = Vec::new();
    for patterns in [1u64 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16] {
        let w = Weights::compute(
            &circuit,
            &InputDistribution::Uniform,
            Backend::Simulation { patterns, seed: 5 },
        );
        let r = SinglePass::new(&circuit, &w, SinglePassOptions::default()).run(&eps);
        rows.push(vec![
            patterns.to_string(),
            format!(
                "{:.2}",
                metrics::average_percent_error(r.per_output(), mc.per_output())
            ),
        ]);
    }
    let exact = Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    let r = SinglePass::new(&circuit, &exact, SinglePassOptions::default()).run(&eps);
    rows.push(vec![
        "exact (BDD)".into(),
        format!(
            "{:.2}",
            metrics::average_percent_error(r.per_output(), mc.per_output())
        ),
    ]);
    println!("{}", render_table(&["weight patterns", "avg %err"], &rows));
}
