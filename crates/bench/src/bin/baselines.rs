//! Measured comparison against the §2 baselines the paper only cites:
//!
//! 1. **Accuracy**: von Neumann-style compositional analysis vs the
//!    single-pass engine on the small suite circuits (vs Monte Carlo).
//! 2. **Scalability**: runtime of the PTM-equivalent exact engine vs the
//!    single-pass engine on growing random circuits — the exponential
//!    blow-up that, in the paper's words, "suggests their inapplicability
//!    to large circuits".
//!
//! ```text
//! cargo run -p relogic-bench --release --bin baselines
//! ```

use relogic::baselines::{compositional, ptm_exact};
use relogic::{
    metrics, Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights,
};
use relogic_bench::{backend_for, fmt_duration, render_table, Cli};
use relogic_gen::{generate, RandomCircuitConfig};
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    accuracy(&cli);
    scalability();
}

fn accuracy(cli: &Cli) {
    println!("Baseline accuracy: avg % error vs Monte Carlo at eps = 0.1\n");
    let mut rows = Vec::new();
    for name in ["x2", "cu", "b9", "c1908"] {
        let c = relogic_gen::suite::build(name).expect("suite circuit");
        let eps = GateEps::uniform(&c, 0.1);
        let mc = relogic_sim::estimate(&c, eps.as_slice(), &cli.mc_config());
        let comp = compositional(&c, &eps);
        let w = Weights::compute(&c, &InputDistribution::Uniform, backend_for(name));
        let sp = SinglePass::new(&c, &w, SinglePassOptions::default()).run(&eps);
        rows.push(vec![
            name.to_owned(),
            format!(
                "{:.2}",
                metrics::average_percent_error(&comp, mc.per_output())
            ),
            format!(
                "{:.2}",
                metrics::average_percent_error(sp.per_output(), mc.per_output())
            ),
        ]);
    }
    println!(
        "{}",
        render_table(&["circuit", "compositional", "single-pass"], &rows)
    );
    println!(
        "The compositional rules (uniform, independent inputs; refs [3,4]) pay the\n\
         accuracy penalty the paper describes; the weight-vector single pass does not.\n"
    );
}

fn scalability() {
    println!("Baseline scalability: PTM-equivalent exact engine vs single-pass\n");
    let mut rows = Vec::new();
    for gates in [8usize, 12, 16, 20, 24, 28] {
        // Uniformly random fanins keep many signals live simultaneously,
        // which is exactly what makes PTM-style state propagation explode.
        let c = generate(&RandomCircuitConfig {
            name: format!("ptm{gates}"),
            inputs: 8,
            gates,
            outputs: 2,
            seed: 0xBA5E + gates as u64,
            max_arity: 2,
            xor_fraction: 0.2,
            locality: 1000,
            global_edge_fraction: 1.0,
        });
        let eps = GateEps::uniform(&c, 0.1);

        let t0 = Instant::now();
        let ptm = ptm_exact(&c, &eps, 26);
        let ptm_time = t0.elapsed();

        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let engine = SinglePass::new(&c, &w, SinglePassOptions::default());
        let t1 = Instant::now();
        let sp = engine.run(&eps);
        let sp_time = t1.elapsed();

        let (ptm_cell, err_cell) = match &ptm {
            Ok(v) => (
                fmt_duration(ptm_time),
                format!("{:.2}", metrics::average_percent_error(sp.per_output(), v)),
            ),
            Err(e) => (format!("gave up ({e})"), "-".to_owned()),
        };
        rows.push(vec![
            gates.to_string(),
            ptm_cell,
            fmt_duration(sp_time),
            err_cell,
        ]);
        eprintln!("  finished {gates} gates");
    }
    println!(
        "{}",
        render_table(
            &["gates", "PTM exact", "single-pass", "SP avg %err vs exact"],
            &rows
        )
    );
    println!(
        "PTM cost grows exponentially with the live-cut width while the single pass\n\
         stays linear — the scalability gap that motivates the paper."
    );
}
