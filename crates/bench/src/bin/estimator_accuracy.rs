//! Estimator-tier accuracy and cost on the generated ISCAS-85 analogue
//! suite: per-circuit |estimate − MC| and wall time for each tier of the
//! hybrid estimator (exact BDD under the default live-node budget, the
//! propagation-probability closed form, and the Monte Carlo reference
//! itself). Archives to `results/estimator_accuracy.json`.
//!
//! The methodology matches the pinned oracle test in
//! `crates/estimate/tests/oracle.rs`: ε = `PROPAGATION_VS_MC_BOUND_EPS`,
//! a 2^16-pattern seed-7 Monte Carlo reference, and the mean-|Δδ| summary
//! checked against `PROPAGATION_VS_MC_MEAN_ABS_BOUND` — so the archived
//! numbers are the bound's provenance, not a second contract.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin estimator_accuracy \
//!     [-- --out results/estimator_accuracy.json --patterns N --only NAME]
//! ```

use relogic::{GateEps, InputDistribution, ObservabilityMatrix};
use relogic_estimate::{
    PropagationEstimate, DEFAULT_BDD_NODE_BUDGET, PROPAGATION_VS_MC_BOUND_EPS,
    PROPAGATION_VS_MC_MEAN_ABS_BOUND,
};
use relogic_sim::MonteCarloConfig;
use std::fmt::Write as _;
use std::time::Instant;

fn mean_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(1);
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / n as f64
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

struct Row {
    name: &'static str,
    outputs: usize,
    gates: usize,
    mc_ms: f64,
    prop_ms: f64,
    prop_mean_err: f64,
    prop_max_err: f64,
    /// `None` when the exact tier tripped the live-node budget.
    exact: Option<(f64, f64, f64)>, // (wall_ms, mean_err, max_err)
    exact_note: String,
}

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--out" {
                path = args.next();
            }
        }
        path
    };
    let cli = relogic_bench::Cli::parse();
    let patterns = cli.patterns.unwrap_or(1 << 16);
    let eps_value = PROPAGATION_VS_MC_BOUND_EPS;

    println!(
        "estimator tier accuracy vs {patterns}-pattern MC at eps = {eps_value} \
         (pinned mean-|d| bound: {PROPAGATION_VS_MC_MEAN_ABS_BOUND})\n"
    );
    let mut rows = Vec::new();
    for entry in relogic_gen::suite::entries() {
        if cli.only.as_deref().is_some_and(|only| only != entry.name) {
            continue;
        }
        let circuit = (entry.build)();
        let eps = GateEps::uniform(&circuit, eps_value);

        let started = Instant::now();
        let mc = relogic_sim::try_estimate(
            &circuit,
            eps.as_slice(),
            &MonteCarloConfig {
                patterns,
                seed: 7,
                ..MonteCarloConfig::default()
            },
        )
        .expect("suite circuits simulate")
        .per_output()
        .to_vec();
        let mc_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let prop = PropagationEstimate::try_compute(&circuit, &InputDistribution::Uniform)
            .expect("suite circuits fit the estimator")
            .closed_form(&eps);
        let prop_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let (exact, exact_note) = match ObservabilityMatrix::try_compute_budgeted(
            &circuit,
            &InputDistribution::Uniform,
            1,
            DEFAULT_BDD_NODE_BUDGET,
        ) {
            Ok(matrix) => {
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                let deltas = matrix.closed_form(&eps);
                (
                    Some((
                        wall_ms,
                        mean_abs_diff(&deltas, &mc),
                        max_abs_diff(&deltas, &mc),
                    )),
                    "ok".to_owned(),
                )
            }
            Err(e) => (None, e.to_string()),
        };

        let row = Row {
            name: entry.name,
            outputs: circuit.output_count(),
            gates: circuit.gate_count(),
            mc_ms,
            prop_ms,
            prop_mean_err: mean_abs_diff(&prop, &mc),
            prop_max_err: max_abs_diff(&prop, &mc),
            exact,
            exact_note,
        };
        let exact_col = match row.exact {
            Some((wall_ms, mean_err, _)) => {
                format!("exact {wall_ms:>8.1} ms  |d| {mean_err:.4}")
            }
            None => format!("exact escalated ({})", row.exact_note),
        };
        println!(
            "{:>6}: {:>5} gates  mc {:>8.1} ms  prop {:>7.2} ms  \
             prop |d| mean {:.4} max {:.4}  {exact_col}",
            row.name, row.gates, row.mc_ms, row.prop_ms, row.prop_mean_err, row.prop_max_err,
        );
        assert!(
            row.prop_mean_err < PROPAGATION_VS_MC_MEAN_ABS_BOUND,
            "{}: propagation error {:.4} breaches the pinned bound",
            row.name,
            row.prop_mean_err
        );
        rows.push(row);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"estimator_accuracy\",");
    let _ = writeln!(json, "  \"eps\": {eps_value},");
    let _ = writeln!(json, "  \"mc_patterns\": {patterns},");
    let _ = writeln!(json, "  \"mc_seed\": 7,");
    let _ = writeln!(json, "  \"bdd_node_budget\": {DEFAULT_BDD_NODE_BUDGET},");
    let _ = writeln!(
        json,
        "  \"pinned_mean_abs_bound\": {PROPAGATION_VS_MC_MEAN_ABS_BOUND},"
    );
    let _ = writeln!(json, "  \"circuits\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", row.name);
        let _ = writeln!(json, "      \"gates\": {},", row.gates);
        let _ = writeln!(json, "      \"outputs\": {},", row.outputs);
        let _ = writeln!(json, "      \"mc_wall_ms\": {:.1},", row.mc_ms);
        let _ = writeln!(json, "      \"propagation_wall_ms\": {:.2},", row.prop_ms);
        let _ = writeln!(
            json,
            "      \"propagation_mean_abs_err\": {:.6},",
            row.prop_mean_err
        );
        let _ = writeln!(
            json,
            "      \"propagation_max_abs_err\": {:.6},",
            row.prop_max_err
        );
        match row.exact {
            Some((wall_ms, mean_err, max_err)) => {
                let _ = writeln!(json, "      \"exact_wall_ms\": {wall_ms:.1},");
                let _ = writeln!(json, "      \"exact_mean_abs_err\": {mean_err:.6},");
                let _ = writeln!(json, "      \"exact_max_abs_err\": {max_err:.6}");
            }
            None => {
                let _ = writeln!(json, "      \"exact_wall_ms\": null,");
                let _ = writeln!(
                    json,
                    "      \"exact_escalation\": \"{}\"",
                    row.exact_note.replace('"', "'")
                );
            }
        }
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = out_path.unwrap_or_else(|| "results/estimator_accuracy.json".to_owned());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(&path, &json).expect("write results JSON");
    println!("\nwrote {path}");
}
