//! Regenerates **Figure 1(b)/(c)**: observability-based closed-form
//! reliability (Eq. 3) vs Monte Carlo.
//!
//! * Fig. 1(b): on the small Fig. 1(a)-style circuit, the closed form
//!   tracks Monte Carlo closely, deviating slightly as ε → 0.5.
//! * Fig. 1(c): on one output of b9, the deviation grows with ε because
//!   multiple simultaneous gate failures dominate.
//!
//! Also reproduces the §3.1 discussion: the exact joint flip influence of
//! the `Gx`/`Gz` pair vs the independence estimate the closed form uses
//! (the paper's "46/256 vs 19/256" observation).
//!
//! ```text
//! cargo run -p relogic-bench --release --bin fig1 [-- --points 50]
//! ```

use relogic::{sweep, InputDistribution, ObservabilityMatrix};
use relogic_bench::{render_table, Cli};
use relogic_gen::suite;
use relogic_sim::flip_influence;

fn main() {
    let cli = Cli::parse();
    let points = cli.points.unwrap_or(50);
    let grid = sweep::epsilon_grid(points, 0.0, 0.5);

    // ---- Fig. 1(b): small circuit ----
    let small = suite::fig1_example();
    let obs =
        ObservabilityMatrix::compute(&small, &InputDistribution::Uniform, relogic::Backend::Bdd);
    let cf = sweep::sweep_closed_form(&small, &obs, &grid);
    let mc = sweep::sweep_monte_carlo(&small, &cli.mc_config(), &grid);
    println!("Fig. 1(b) analogue: delta(eps) for the Fig. 1(a)-style circuit\n");
    let rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            vec![
                format!("{e:.3}"),
                format!("{:.5}", mc.delta[i][0]),
                format!("{:.5}", cf.delta[i][0]),
                format!("{:+.5}", cf.delta[i][0] - mc.delta[i][0]),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["eps", "MonteCarlo", "ClosedForm", "diff"], &rows)
    );

    // ---- §3.1: multi-failure interaction Gx & Gz ----
    let gx = small.find("Gx").expect("Gx named");
    let gz = small.find("Gz").expect("Gz named");
    let both = flip_influence(&small, &[gx, gz])[0];
    let ox = obs.at_output(gx, 0);
    let oz = obs.at_output(gz, 0);
    // The closed form treats the two observabilities as independent events:
    // P(odd number observable) = ox(1-oz) + oz(1-ox).
    let independent = ox * (1.0 - oz) + oz * (1.0 - ox);
    println!(
        "S3.1 check (both Gx and Gz fail): exact output-failure probability = {both:.4}, \
         independence estimate = {independent:.4}\n"
    );

    // ---- Fig. 1(c): the deepest-cone output of b9 ----
    let b9 = suite::b9();
    let obs_b9 =
        ObservabilityMatrix::compute(&b9, &InputDistribution::Uniform, relogic::Backend::Bdd);
    let cf9 = sweep::sweep_closed_form(&b9, &obs_b9, &grid);
    let mc9 = sweep::sweep_monte_carlo(&b9, &cli.mc_config(), &grid);
    let cones = relogic_netlist::structure::output_cone_sizes(&b9);
    let output = cones
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(k, _)| k)
        .expect("b9 has outputs");
    println!(
        "Fig. 1(c) analogue: delta(eps) for output {output} of b9 (cone of {} gates)\n",
        cones[output]
    );
    let rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            vec![
                format!("{e:.3}"),
                format!("{:.5}", mc9.delta[i][output]),
                format!("{:.5}", cf9.delta[i][output]),
                format!("{:+.5}", cf9.delta[i][output] - mc9.delta[i][output]),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["eps", "MonteCarlo", "ClosedForm", "diff"], &rows)
    );
    println!(
        "The closed form is accurate for small eps and deviates as eps grows (multiple\n\
         simultaneous gate failures violate its single-failure assumption) - the paper's\n\
         Fig. 1(c) observation."
    );
}
