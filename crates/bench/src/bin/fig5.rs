//! Regenerates **Figure 5**: consolidated error probability of two
//! correlated outputs of b9 — Monte Carlo vs single-pass, with and without
//! correlation coefficients.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin fig5 [-- --points 25]
//! ```

use relogic::{
    consolidate::Consolidator, sweep, GateEps, InputDistribution, SinglePass, SinglePassOptions,
    Weights,
};
use relogic_bench::{backend_for, render_table, Cli};
use relogic_sim::MonteCarloConfig;

fn main() {
    let cli = Cli::parse();
    let points = cli.points.unwrap_or(25);
    let grid = sweep::epsilon_grid(points, 0.0, 0.5);

    let circuit = relogic_gen::suite::b9();
    let backend = backend_for("b9");
    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, backend);
    let corr_engine = SinglePass::new(&circuit, &weights, SinglePassOptions::default());
    let plain_engine = SinglePass::new(
        &circuit,
        &weights,
        SinglePassOptions::without_correlations(),
    );

    // Pick the most error-correlated output pair at a probe ε.
    let probe = corr_engine.run(&GateEps::uniform(&circuit, 0.1));
    let outs: Vec<_> = circuit.outputs().iter().map(|o| o.node()).collect();
    let mut best = (0usize, 1usize, 0.0f64);
    for a in 0..outs.len() {
        for b in (a + 1)..outs.len() {
            if let Some(c) = probe.correlation(outs[a], outs[b]) {
                let strength = c
                    .iter()
                    .flatten()
                    .map(|&x| (x - 1.0).abs())
                    .fold(0.0, f64::max);
                if strength > best.2 {
                    best = (a, b, strength);
                }
            }
        }
    }
    let (a, b, strength) = best;
    println!(
        "Fig. 5 analogue: consolidated error of b9 outputs {a} and {b} \
         (correlation strength {strength:.2})\n"
    );

    let consolidator =
        Consolidator::for_pairs(&circuit, &[(a, b)], &InputDistribution::Uniform, backend);
    let mut rows = Vec::with_capacity(points);
    for (i, &e) in grid.iter().enumerate() {
        let eps = GateEps::uniform(&circuit, e);
        let rc = corr_engine.run(&eps);
        let rp = plain_engine.run(&eps);
        let with_corr = consolidator.pair_error(&rc, a, b);
        // Independence assumption: P(e_a ∪ e_b) = δa + δb − δa·δb.
        let da = rp.per_output()[a];
        let db = rp.per_output()[b];
        let without = da + db - da * db;
        let mc = relogic_sim::estimate(
            &circuit,
            eps.as_slice(),
            &MonteCarloConfig {
                seed: 0xF150_0000 + i as u64,
                joint_pairs: vec![(a, b)],
                ..cli.mc_config()
            },
        );
        let mc_pair =
            mc.per_output()[a] + mc.per_output()[b] - mc.joint(a, b).expect("pair tracked");
        rows.push(vec![
            format!("{e:.3}"),
            format!("{mc_pair:.5}"),
            format!("{with_corr:.5}"),
            format!("{without:.5}"),
        ]);
    }
    println!(
        "{}",
        render_table(&["eps", "MonteCarlo", "SP+corr", "SP indep"], &rows)
    );
    println!(
        "SP+corr uses the S4.1 correlation coefficients at the two outputs;\n\
         SP indep assumes the output error events are independent."
    );
}
