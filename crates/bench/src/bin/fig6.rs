//! Regenerates **Figure 6**: δ(ε) curves for two outputs of i10 (the
//! paper picks cones of 662 and 1034 gates), Monte Carlo vs single-pass —
//! the curves should be nearly indistinguishable.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin fig6 [-- --points 25]
//! ```

use relogic::{metrics, sweep, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights};
use relogic_bench::{backend_for, render_table, Cli};
use relogic_netlist::structure::output_cone_sizes;
use relogic_sim::MonteCarloConfig;

fn main() {
    let cli = Cli::parse();
    let points = cli.points.unwrap_or(25);
    let grid = sweep::epsilon_grid(points, 0.0, 0.5);

    let circuit = relogic_gen::suite::i10();
    let cones = output_cone_sizes(&circuit);
    // Pick the two outputs whose cone sizes are closest to the paper's 662
    // and 1034.
    let pick = |target: usize, exclude: Option<usize>| -> usize {
        cones
            .iter()
            .enumerate()
            .filter(|(k, _)| Some(*k) != exclude)
            .min_by_key(|(_, &c)| c.abs_diff(target))
            .map(|(k, _)| k)
            .expect("i10 has outputs")
    };
    let o1 = pick(662, None);
    let o2 = pick(1034, Some(o1));
    println!(
        "Fig. 6 analogue: i10 outputs {o1} (cone {} gates) and {o2} (cone {} gates)\n",
        cones[o1], cones[o2]
    );

    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, backend_for("i10"));
    let engine = SinglePass::new(&circuit, &weights, SinglePassOptions::default());

    let mut rows = Vec::with_capacity(points);
    let mut sp1 = Vec::new();
    let mut mc1 = Vec::new();
    let mut sp2 = Vec::new();
    let mut mc2 = Vec::new();
    for (i, &e) in grid.iter().enumerate() {
        let eps = GateEps::uniform(&circuit, e);
        let sp = engine.run(&eps);
        let mc = relogic_sim::estimate(
            &circuit,
            eps.as_slice(),
            &MonteCarloConfig {
                seed: 0xF160_0000 + i as u64,
                ..cli.mc_config()
            },
        );
        sp1.push(sp.per_output()[o1]);
        mc1.push(mc.per_output()[o1]);
        sp2.push(sp.per_output()[o2]);
        mc2.push(mc.per_output()[o2]);
        rows.push(vec![
            format!("{e:.3}"),
            format!("{:.5}", mc.per_output()[o1]),
            format!("{:.5}", sp.per_output()[o1]),
            format!("{:.5}", mc.per_output()[o2]),
            format!("{:.5}", sp.per_output()[o2]),
        ]);
    }
    println!(
        "{}",
        render_table(&["eps", "MC out1", "SP out1", "MC out2", "SP out2"], &rows)
    );
    println!(
        "max |SP - MC|: out1 = {:.4}, out2 = {:.4} (curves should be nearly indistinguishable)",
        metrics::max_abs_error(&sp1, &mc1),
        metrics::max_abs_error(&sp2, &mc2)
    );
}
