//! Regenerates **Figure 7**: per-output average % error of single-pass
//! analysis on c499 over many runs with *independent random per-gate ε*
//! drawn from Uniform(0, 0.5).
//!
//! The paper reports 1.5–3.5% per output over 1000 runs; the default here
//! is 50 runs (`--runs N` / `--full` for 1000).
//!
//! ```text
//! cargo run -p relogic-bench --release --bin fig7 [-- --runs 100]
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use relogic::{metrics, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights};
use relogic_bench::{backend_for, render_table, Cli};
use relogic_sim::MonteCarloConfig;

fn main() {
    let cli = Cli::parse();
    let runs = cli.runs.unwrap_or(if cli.full { 1000 } else { 50 });

    let circuit = relogic_gen::suite::c499();
    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, backend_for("c499"));
    let engine = SinglePass::new(&circuit, &weights, SinglePassOptions::default());
    let m = circuit.output_count();
    let mut sums = vec![0.0f64; m];
    let mut rng = SmallRng::seed_from_u64(0xF170_0007);

    println!(
        "Fig. 7 analogue: per-output avg % error on c499, {runs} runs, \
         per-gate eps ~ U(0, 0.5), MC reference {} patterns\n",
        cli.mc_patterns()
    );
    for run in 0..runs {
        let eps = GateEps::random_uniform(&circuit, 0.0, 0.5, &mut rng);
        let sp = engine.run(&eps);
        let mc = relogic_sim::estimate(
            &circuit,
            eps.as_slice(),
            &MonteCarloConfig {
                seed: 0xF170_0000 + run as u64,
                ..cli.mc_config()
            },
        );
        let errs = metrics::percent_errors(sp.per_output(), mc.per_output());
        for (s, e) in sums.iter_mut().zip(&errs) {
            *s += e;
        }
        if (run + 1) % 10 == 0 {
            eprintln!("  {} / {runs} runs", run + 1);
        }
    }

    #[allow(clippy::cast_precision_loss)]
    let rows: Vec<Vec<String>> = sums
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            let avg = s / runs as f64;
            let bar = "#".repeat((avg * 4.0).round().clamp(0.0, 60.0) as usize);
            vec![format!("q{k}"), format!("{avg:.2}"), bar]
        })
        .collect();
    println!(
        "{}",
        render_table(&["output", "avg %err", "profile"], &rows)
    );
    #[allow(clippy::cast_precision_loss)]
    let overall = sums.iter().sum::<f64>() / (runs as f64 * m as f64);
    println!("overall average error: {overall:.2}% (paper: 1.5-3.5% per output)");
}
