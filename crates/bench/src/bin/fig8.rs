//! Regenerates **Figure 8**: redundancy-free design-space exploration —
//! consolidated output error of a low-fanout vs a high-fanout
//! implementation of the same function (b9), for ε ∈ [0, 0.15].
//!
//! The two versions come from `relogic_gen::suite::b9_variants`: the same
//! random specification of associative-operator trees instantiated once
//! with shared chain-form subexpressions (high fanout, more levels) and
//! once with duplicated balanced trees (fanout ≤ 2, fewer levels).
//!
//! ```text
//! cargo run -p relogic-bench --release --bin fig8 [-- --points 16]
//! ```

use relogic::{
    consolidate::Consolidator, sweep, Backend, GateEps, InputDistribution, SinglePass,
    SinglePassOptions, Weights,
};
use relogic_bench::{render_table, Cli};
use relogic_netlist::structure::{depth, total_output_levels, CircuitStats, FanoutMap};
use relogic_netlist::Circuit;
use relogic_sim::MonteCarloConfig;

fn describe(name: &str, c: &Circuit) {
    let s = CircuitStats::of(c);
    let fan = FanoutMap::build(c);
    let gate_fanout = c
        .node_ids()
        .filter(|&id| c.node(id).kind().is_gate())
        .map(|id| fan.logic_fanout(id))
        .max()
        .unwrap_or(0);
    println!(
        "  {name}: {} gates, max gate fanout {}, {} levels (max), {} total output levels",
        s.gates,
        gate_fanout,
        depth(c),
        total_output_levels(c)
    );
}

fn main() {
    let cli = Cli::parse();
    let points = cli.points.unwrap_or(16);
    let grid = sweep::epsilon_grid(points, 0.0, 0.15);

    let (low, high) = relogic_gen::suite::b9_variants();
    println!("Fig. 8 analogue: two functionally equivalent versions of b9\n");
    describe("high-fanout", &high);
    describe("low-fanout ", &low);
    println!();

    // Consolidated error needs output-pair joints; simulation backend keeps
    // this affordable for 21 outputs on both variants.
    let backend = Backend::Simulation {
        patterns: 1 << 16,
        seed: 0xF180,
    };
    let analyze = |c: &Circuit| -> (Vec<f64>, Vec<f64>) {
        let weights = Weights::compute(c, &InputDistribution::Uniform, backend);
        let engine = SinglePass::new(c, &weights, SinglePassOptions::default());
        let cons = Consolidator::new(c, &InputDistribution::Uniform, backend);
        let mut sp = Vec::with_capacity(grid.len());
        let mut mc = Vec::with_capacity(grid.len());
        for (i, &e) in grid.iter().enumerate() {
            let eps = GateEps::uniform(c, e);
            sp.push(cons.any_output_error(&engine.run(&eps)));
            mc.push(
                relogic_sim::estimate(
                    c,
                    eps.as_slice(),
                    &MonteCarloConfig {
                        seed: 0xF180_0000 + i as u64,
                        ..cli.mc_config()
                    },
                )
                .any_output(),
            );
        }
        (sp, mc)
    };
    let (low_sp, low_mc) = analyze(&low);
    let (high_sp, high_mc) = analyze(&high);

    let rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            vec![
                format!("{e:.3}"),
                format!("{:.5}", low_sp[i]),
                format!("{:.5}", high_sp[i]),
                format!("{:.5}", low_mc[i]),
                format!("{:.5}", high_mc[i]),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["eps", "low SP", "high SP", "low MC", "high MC"], &rows)
    );
    let wins = grid
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(i, _)| low_mc[*i] <= high_mc[*i])
        .count();
    println!(
        "low-fanout beats high-fanout at {wins}/{} nonzero eps points (Monte Carlo);\n\
         the paper attributes this to fewer levels of noisy logic between inputs and outputs.",
        grid.len() - 1
    );
}
