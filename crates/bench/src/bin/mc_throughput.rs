//! Measures Monte Carlo fault-injection throughput (patterns/second) of
//! the compiled-tape execution layer at 1/2/4/8 worker threads on the
//! i10 analogue (c6288-class, 2643 gates), and writes the numbers as
//! JSON for `results/mc_throughput.json`. The graph walker the tape
//! replaced is measured in the same run and archived under the
//! `"baseline"` key, so the file carries its own before/after.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin mc_throughput [-- --out results/mc_throughput.json]
//! ```
//!
//! Every thread count computes the bit-identical estimate (asserted
//! below), so the speedup column is pure execution-layer scaling on the
//! machine at hand.

use relogic::GateEps;
use relogic_sim::{
    available_threads, estimate, estimate_tape, CircuitTape, MonteCarloConfig, DEFAULT_LANES,
};
use std::fmt::Write as _;
use std::time::Instant;

const PATTERNS: u64 = 1 << 17;
const REPS: u32 = 3;

fn row_json(json: &mut String, rows: &[(usize, f64, f64, f64)], indent: &str) {
    for (i, (threads, secs, pps, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "{indent}{{ \"threads\": {threads}, \"seconds\": {secs:.6}, \
             \"patterns_per_sec\": {pps:.0}, \"speedup\": {speedup:.3} }}{comma}"
        );
    }
}

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--out" {
                path = args.next();
            }
        }
        path
    };

    let circuit = relogic_gen::suite::i10();
    let eps = GateEps::uniform(&circuit, 0.1);
    let hw_threads = available_threads();
    println!(
        "MC throughput on i10 ({} gates), {} patterns x {} reps, {} lanes, {} hardware thread(s)\n",
        circuit.gate_count(),
        PATTERNS,
        REPS,
        DEFAULT_LANES,
        hw_threads
    );

    let tape = CircuitTape::compile(&circuit);
    let reference = estimate_tape(
        &circuit,
        &tape,
        eps.as_slice(),
        &MonteCarloConfig {
            patterns: PATTERNS,
            threads: 1,
            ..MonteCarloConfig::default()
        },
        DEFAULT_LANES,
    );

    let mut tape_rows = Vec::new();
    let mut graph_rows = Vec::new();
    let mut tape_base = 0.0f64;
    let mut graph_base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let cfg = MonteCarloConfig {
            patterns: PATTERNS,
            threads,
            ..MonteCarloConfig::default()
        };
        // One warmup (also the invariance check), then best of REPS.
        let r = estimate_tape(&circuit, &tape, eps.as_slice(), &cfg, DEFAULT_LANES);
        assert_eq!(r, reference, "estimate must be thread-count invariant");
        let mut tape_best = f64::INFINITY;
        let mut graph_best = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            std::hint::black_box(estimate_tape(
                &circuit,
                &tape,
                eps.as_slice(),
                &cfg,
                DEFAULT_LANES,
            ));
            tape_best = tape_best.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            std::hint::black_box(estimate(&circuit, eps.as_slice(), &cfg));
            graph_best = graph_best.min(t.elapsed().as_secs_f64());
        }
        #[allow(clippy::cast_precision_loss)]
        let (tape_pps, graph_pps) = (PATTERNS as f64 / tape_best, PATTERNS as f64 / graph_best);
        if threads == 1 {
            tape_base = tape_pps;
            graph_base = graph_pps;
        }
        println!(
            "threads {threads:>2}:  tape {tape_pps:>12.0} patterns/s (x{:.2})   graph {graph_pps:>12.0} patterns/s (x{:.2})",
            tape_pps / tape_base,
            graph_pps / graph_base
        );
        tape_rows.push((threads, tape_best, tape_pps, tape_pps / tape_base));
        graph_rows.push((threads, graph_best, graph_pps, graph_pps / graph_base));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"mc_throughput\",");
    let _ = writeln!(json, "  \"circuit\": \"i10\",");
    let _ = writeln!(json, "  \"gates\": {},", circuit.gate_count());
    let _ = writeln!(json, "  \"patterns\": {PATTERNS},");
    let _ = writeln!(json, "  \"eps\": 0.1,");
    let _ = writeln!(json, "  \"engine\": \"tape\",");
    let _ = writeln!(json, "  \"lanes\": {DEFAULT_LANES},");
    let _ = writeln!(json, "  \"hardware_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"deterministic\": true,");
    if hw_threads == 1 {
        let _ = writeln!(
            json,
            "  \"note\": \"single-core host: multi-thread rows measure overhead, not scaling\","
        );
    }
    let _ = writeln!(json, "  \"rows\": [");
    row_json(&mut json, &tape_rows, "    ");
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"baseline\": {{ \"engine\": \"graph\", \"rows\": ["
    );
    row_json(&mut json, &graph_rows, "    ");
    let _ = writeln!(json, "  ] }}");
    json.push_str("}\n");

    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write results JSON");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}
