//! Measures Monte Carlo fault-injection throughput (patterns/second) of
//! the deterministic parallel execution layer at 1/2/4/8 worker threads
//! on the i10 analogue (c6288-class, 2643 gates), and writes the numbers
//! as JSON for `results/mc_throughput.json`.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin mc_throughput [-- --out results/mc_throughput.json]
//! ```
//!
//! Every thread count computes the bit-identical estimate (asserted
//! below), so the speedup column is pure execution-layer scaling on the
//! machine at hand.

use relogic::GateEps;
use relogic_sim::{available_threads, estimate, MonteCarloConfig};
use std::fmt::Write as _;
use std::time::Instant;

const PATTERNS: u64 = 1 << 17;
const REPS: u32 = 3;

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--out" {
                path = args.next();
            }
        }
        path
    };

    let circuit = relogic_gen::suite::i10();
    let eps = GateEps::uniform(&circuit, 0.1);
    let hw_threads = available_threads();
    println!(
        "MC throughput on i10 ({} gates), {} patterns x {} reps, {} hardware thread(s)\n",
        circuit.gate_count(),
        PATTERNS,
        REPS,
        hw_threads
    );

    let reference = estimate(
        &circuit,
        eps.as_slice(),
        &MonteCarloConfig {
            patterns: PATTERNS,
            threads: 1,
            ..MonteCarloConfig::default()
        },
    );

    let mut rows = Vec::new();
    let mut base_pps = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let cfg = MonteCarloConfig {
            patterns: PATTERNS,
            threads,
            ..MonteCarloConfig::default()
        };
        // One warmup, then the best of REPS timed runs.
        let r = estimate(&circuit, eps.as_slice(), &cfg);
        assert_eq!(r, reference, "estimate must be thread-count invariant");
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            std::hint::black_box(estimate(&circuit, eps.as_slice(), &cfg));
            best = best.min(t.elapsed().as_secs_f64());
        }
        #[allow(clippy::cast_precision_loss)]
        let pps = PATTERNS as f64 / best;
        if threads == 1 {
            base_pps = pps;
        }
        let speedup = pps / base_pps;
        println!("threads {threads:>2}:  {pps:>12.0} patterns/s   speedup x{speedup:.2}");
        rows.push((threads, best, pps, speedup));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"mc_throughput\",");
    let _ = writeln!(json, "  \"circuit\": \"i10\",");
    let _ = writeln!(json, "  \"gates\": {},", circuit.gate_count());
    let _ = writeln!(json, "  \"patterns\": {PATTERNS},");
    let _ = writeln!(json, "  \"eps\": 0.1,");
    let _ = writeln!(json, "  \"hardware_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"deterministic\": true,");
    if hw_threads == 1 {
        let _ = writeln!(
            json,
            "  \"note\": \"single-core host: multi-thread rows measure overhead, not scaling\","
        );
    }
    let _ = writeln!(json, "  \"rows\": [");
    for (i, (threads, secs, pps, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"threads\": {threads}, \"seconds\": {secs:.6}, \
             \"patterns_per_sec\": {pps:.0}, \"speedup\": {speedup:.3} }}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write results JSON");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}
