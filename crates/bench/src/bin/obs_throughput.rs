//! Exact-observability throughput on the generated ISCAS-85 analogue
//! suite: wall time and BDD engine statistics for the full
//! `ObservabilityMatrix` (every node × every output + any-output column)
//! with the BDD backend. Archives node counts, cache hit rates, and wall
//! times to `results/obs_throughput.json`.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin obs_throughput [-- --out results/obs_throughput.json]
//! ```
//!
//! These are the circuits the paper's Table 2 scalability claims rest on:
//! `c499`/`c1355` are the XOR-reconvergent workloads that used to be
//! intractable for the exact backend.

use relogic::{Backend, InputDistribution, ObservabilityMatrix};
use std::fmt::Write as _;
use std::time::Instant;

const CIRCUITS: [&str; 4] = ["x2", "b9", "c499", "c1355"];

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--out" {
                path = args.next();
            }
        }
        path
    };

    println!("exact observability throughput (bdd backend, full matrix)\n");
    let mut rows = Vec::new();
    for name in CIRCUITS {
        let circuit = relogic_gen::suite::build(name).expect("suite circuit");
        let started = Instant::now();
        let obs =
            ObservabilityMatrix::try_compute(&circuit, &InputDistribution::Uniform, Backend::Bdd)
                .expect("observability");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let stats = obs
            .diagnostics()
            .bdd_stats()
            .copied()
            .expect("bdd backend reports engine stats");
        println!(
            "{name:>6}: {:>4} nodes x {:>2} outputs  {wall_ms:>9.1} ms  \
             peak {:>8} live nodes  cache hit rate {:.3}  {} gc  {} reorders",
            circuit.len(),
            circuit.output_count(),
            stats.peak_live_nodes,
            stats.cache_hit_rate(),
            stats.gc_runs,
            stats.reorders,
        );
        rows.push((name, circuit, wall_ms, stats));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"obs_throughput\",");
    let _ = writeln!(json, "  \"backend\": \"bdd\",");
    let _ = writeln!(json, "  \"circuits\": [");
    for (i, (name, circuit, wall_ms, stats)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{name}\",");
        let _ = writeln!(json, "      \"nodes\": {},", circuit.len());
        let _ = writeln!(json, "      \"gates\": {},", circuit.gate_count());
        let _ = writeln!(json, "      \"inputs\": {},", circuit.input_count());
        let _ = writeln!(json, "      \"outputs\": {},", circuit.output_count());
        let _ = writeln!(json, "      \"wall_ms\": {wall_ms:.1},");
        let _ = writeln!(
            json,
            "      \"peak_live_nodes\": {},",
            stats.peak_live_nodes
        );
        let _ = writeln!(
            json,
            "      \"unique_table_load\": {:.3},",
            stats.unique_load
        );
        let _ = writeln!(json, "      \"cache_hits\": {},", stats.cache_hits);
        let _ = writeln!(json, "      \"cache_misses\": {},", stats.cache_misses);
        let _ = writeln!(
            json,
            "      \"cache_hit_rate\": {:.3},",
            stats.cache_hit_rate()
        );
        let _ = writeln!(json, "      \"gc_runs\": {},", stats.gc_runs);
        let _ = writeln!(json, "      \"reorders\": {}", stats.reorders);
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write results JSON");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}
