//! Measures what the on-disk artifact store buys across restarts: a cold
//! service computes c499 observability from scratch, then fresh service
//! instances pointed at the same `--cache-dir` answer the same request
//! from disk. Each warm sample includes service construction, so it is an
//! honest "restart to first answer" number. Results go to
//! `results/persist_latency.json`.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin persist_latency [-- --smoke --out results/persist_latency.json]
//! ```
//!
//! The run fails (non-zero exit) if the warm-restart p50 exceeds the
//! 10 ms budget pinned in ROADMAP/ISSUE acceptance criteria, or if the
//! store does not verify clean afterwards.

use relogic_serve::json::Json;
use relogic_serve::{Service, ServiceConfig};
use std::path::Path;
use std::time::Instant;

const WARM_RESTARTS: usize = 20;
const WARM_RESTARTS_SMOKE: usize = 5;
const WARM_BUDGET_US: u64 = 10_000;

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let idx = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn service_on(dir: &Path) -> Service {
    Service::new(ServiceConfig {
        timeout_ms: 0,
        cache_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    })
}

fn main() {
    let mut out_path = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next(),
            "--smoke" => smoke = true,
            other => panic!("unknown argument `{other}`"),
        }
    }
    let restarts = if smoke {
        WARM_RESTARTS_SMOKE
    } else {
        WARM_RESTARTS
    };

    let dir = std::env::temp_dir().join(format!("relogic-persist-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let circuit = relogic_gen::suite::c499();
    let netlist = relogic_netlist::bench::write(&circuit);
    let netlist_json = Json::from(netlist).encode();
    let frame = format!(r#"{{"kind":"observability","netlist":{netlist_json},"eps":0.1}}"#);

    println!(
        "persistence latency on c499 ({} gates), {restarts} warm restarts\n",
        circuit.gate_count()
    );

    // Cold: compute everything and write through to the store.
    let cold_service = service_on(&dir);
    let started = Instant::now();
    let cold_reply = cold_service.handle_line(&frame);
    let cold_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    assert!(cold_reply.contains("\"ok\":true"), "{cold_reply}");
    drop(cold_service);

    // Warm: every fresh service is a fresh process image; the timed window
    // spans construction plus the first answer.
    let mut samples = Vec::with_capacity(restarts);
    for _ in 0..restarts {
        let started = Instant::now();
        let service = service_on(&dir);
        let reply = service.handle_line(&frame);
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert_eq!(
            cold_reply, reply,
            "a disk-served answer diverged from the computed one"
        );
        let computed = service
            .cache()
            .counters()
            .observability_computed
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(computed, 0, "warm restart recomputed observability");
        samples.push(us);
    }
    samples.sort_unstable();
    let p50 = quantile(&samples, 0.50);
    let p99 = quantile(&samples, 0.99);
    let max = *samples.last().unwrap_or(&0);

    // The store must still verify clean after all that traffic.
    let store = relogic_store::Store::open(&dir).expect("open store");
    let report = store.verify().expect("verify store");
    assert!(
        report.quarantined.is_empty(),
        "store corrupt after benchmark: {:?}",
        report.quarantined
    );
    let bytes_on_disk = store.bytes_on_disk().expect("bytes on disk");

    println!(
        "cold observability {cold_us} us; warm restart p50 {p50} us  p99 {p99} us  max {max} us"
    );
    println!(
        "store: {} artifacts verified clean, {bytes_on_disk} bytes on disk",
        report.ok
    );
    let speedup = cold_us.checked_div(p50).unwrap_or(0);
    println!("restart speedup: {speedup}x (budget: p50 < {WARM_BUDGET_US} us)");

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"persist_latency\",\n");
    json.push_str("  \"circuit\": \"c499\",\n");
    json.push_str(&format!("  \"gates\": {},\n", circuit.gate_count()));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"cold_observability_us\": {cold_us},\n"));
    json.push_str(&format!(
        "  \"warm_restart\": {{ \"p50_us\": {p50}, \"p99_us\": {p99}, \"max_us\": {max}, \
         \"samples\": {}, \"budget_us\": {WARM_BUDGET_US} }},\n",
        samples.len()
    ));
    json.push_str(&format!("  \"verify_ok\": {},\n", report.ok));
    json.push_str(&format!("  \"bytes_on_disk\": {bytes_on_disk}\n"));
    json.push_str("}\n");

    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write results JSON");
        println!("wrote {path}");
    } else {
        println!("\n{json}");
    }

    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        p50 < WARM_BUDGET_US,
        "warm restart p50 {p50} us blew the {WARM_BUDGET_US} us budget"
    );
}
