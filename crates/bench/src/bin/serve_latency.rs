//! Measures `relogic-serve` request latency over a Unix socket: one warm
//! round per request kind, then timed rounds from concurrent clients
//! against a cache-warm server. Client-observed p50/p99/max go to
//! `results/serve_latency.json`.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin serve_latency [-- --out results/serve_latency.json]
//! ```
//!
//! The interesting economics: the first `analyze` for a netlist pays the
//! parse + weight-vector compile; every later request (any ε, any kind)
//! rides the artifact cache. The cold/warm gap below is that compile cost.

use relogic_serve::json::Json;
use relogic_serve::{Server, ServerConfig, ServiceConfig};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

const ROUNDS: usize = 40;
const CLIENTS: usize = 4;

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let idx = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn round_trip(stream: &mut UnixStream, frame: &str) -> Duration {
    let started = Instant::now();
    stream.write_all(frame.as_bytes()).expect("write frame");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(
        line.contains("\"ok\":true"),
        "request failed: {frame} -> {line}"
    );
    started.elapsed()
}

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--out" {
                path = args.next();
            }
        }
        path
    };

    let socket =
        std::env::temp_dir().join(format!("relogic-serve-bench-{}.sock", std::process::id()));
    let server = Server::start(ServerConfig {
        unix: Some(socket.clone()),
        threads: CLIENTS,
        service: ServiceConfig {
            timeout_ms: 0,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("start server");

    let circuit = relogic_gen::suite::c499();
    let netlist = relogic_netlist::bench::write(&circuit);
    let netlist_json = Json::from(netlist).encode();
    let frames: Vec<(&str, String)> = vec![
        (
            "analyze",
            format!(r#"{{"kind":"analyze","netlist":{netlist_json},"eps":0.1}}"#),
        ),
        (
            "observability",
            format!(r#"{{"kind":"observability","netlist":{netlist_json},"eps":0.1}}"#),
        ),
        (
            "monte_carlo",
            format!(
                r#"{{"kind":"monte_carlo","netlist":{netlist_json},"eps":0.1,"patterns":16384,"seed":5}}"#
            ),
        ),
        ("stats", r#"{"kind":"stats"}"#.to_owned()),
    ];

    println!(
        "serve latency on c499 ({} gates), {} rounds x {} clients per kind\n",
        circuit.gate_count(),
        ROUNDS,
        CLIENTS
    );

    // Cold round: pays parse + weight compile once per artifact.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    let cold_analyze_us =
        u64::try_from(round_trip(&mut stream, &frames[0].1).as_micros()).unwrap_or(u64::MAX);
    let cold_obs_us =
        u64::try_from(round_trip(&mut stream, &frames[1].1).as_micros()).unwrap_or(u64::MAX);
    drop(stream);

    let mut kinds = Vec::new();
    for (kind, frame) in &frames {
        let samples: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    scope.spawn(|| {
                        let mut stream = UnixStream::connect(&socket).expect("connect");
                        (0..ROUNDS)
                            .map(|_| {
                                u64::try_from(round_trip(&mut stream, frame).as_micros())
                                    .unwrap_or(u64::MAX)
                            })
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            let mut all: Vec<u64> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect();
            all.sort_unstable();
            all
        });
        let p50 = quantile(&samples, 0.50);
        let p99 = quantile(&samples, 0.99);
        let max = *samples.last().unwrap_or(&0);
        println!("{kind:>14}:  p50 {p50:>8} us   p99 {p99:>8} us   max {max:>8} us");
        kinds.push((kind.to_owned(), p50, p99, max, samples.len()));
    }

    // Server-side view for cross-checking.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream
        .write_all(b"{\"kind\":\"stats\"}\n")
        .expect("stats frame");
    let mut reader = BufReader::new(stream);
    let mut stats_line = String::new();
    reader.read_line(&mut stats_line).expect("stats reply");
    let stats = relogic_serve::json::parse(stats_line.trim()).expect("stats json");
    let cache_hits = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    server.shutdown();

    println!(
        "\ncold analyze {cold_analyze_us} us (parse + weight compile), warm p50 {} us; {cache_hits} cache hits",
        kinds[0].1
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"serve_latency\",");
    let _ = writeln!(json, "  \"circuit\": \"c499\",");
    let _ = writeln!(json, "  \"gates\": {},", circuit.gate_count());
    let _ = writeln!(json, "  \"transport\": \"unix\",");
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"rounds_per_client\": {ROUNDS},");
    let _ = writeln!(json, "  \"cold_analyze_us\": {cold_analyze_us},");
    let _ = writeln!(json, "  \"cold_observability_us\": {cold_obs_us},");
    let _ = writeln!(json, "  \"cache_hits\": {cache_hits},");
    let _ = writeln!(json, "  \"kinds\": [");
    for (i, (kind, p50, p99, max, samples)) in kinds.iter().enumerate() {
        let comma = if i + 1 == kinds.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"kind\": \"{kind}\", \"p50_us\": {p50}, \"p99_us\": {p99}, \
             \"max_us\": {max}, \"samples\": {samples} }}{comma}"
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write results JSON");
        println!("wrote {path}");
    } else {
        println!("\n{json}");
    }
}
