//! Regenerates **Table 2**: single-pass accuracy vs Monte Carlo at
//! ε ∈ {0.05, 0.10, 0.15, 0.20, 0.25, 0.30} (average % error over all
//! outputs) plus cumulative runtimes for 50-point ε sweeps.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin table2 [-- --full] [--only b9]
//! ```
//!
//! By default the Monte Carlo reference uses 65 536 patterns per point;
//! `--full` restores the paper's 6.4 M patterns (slow).

use relogic::{metrics, sweep, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights};
use relogic_bench::{backend_for, fmt_duration, render_table, Cli};
use relogic_sim::MonteCarloConfig;
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let eps_points = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3];
    let sweep_points = sweep::epsilon_grid(cli.points.unwrap_or(50), 0.0, 0.5);
    let mut rows = Vec::new();

    println!(
        "Table 2 analogue: average % error of single-pass analysis vs Monte Carlo\n\
         (MC reference: {} patterns/point; paper used 6.4M on a 2.4 GHz Opteron)\n",
        cli.mc_patterns()
    );

    for entry in relogic_gen::suite::entries() {
        if let Some(only) = &cli.only {
            if only != entry.name {
                continue;
            }
        }
        let circuit = (entry.build)();
        let backend = backend_for(entry.name);

        let t_w = Instant::now();
        let weights = Weights::compute(&circuit, &InputDistribution::Uniform, backend);
        let weights_time = t_w.elapsed();
        let engine = SinglePass::new(&circuit, &weights, SinglePassOptions::default());

        // Accuracy at the paper's six ε values.
        let mut errs = Vec::with_capacity(eps_points.len());
        for (i, &e) in eps_points.iter().enumerate() {
            let eps = GateEps::uniform(&circuit, e);
            let sp = engine.run(&eps);
            let mc = relogic_sim::estimate(
                &circuit,
                eps.as_slice(),
                &MonteCarloConfig {
                    seed: 0x7AB1_E000 + i as u64,
                    ..cli.mc_config()
                },
            );
            errs.push(metrics::average_percent_error(
                sp.per_output(),
                mc.per_output(),
            ));
        }

        // Runtime: cumulative 50-run sweeps, as the paper reports.
        let t_mc = Instant::now();
        let _ = sweep::sweep_monte_carlo(&circuit, &cli.mc_config(), &sweep_points);
        let mc_time = t_mc.elapsed();
        let t_sp = Instant::now();
        for &e in &sweep_points {
            let _ = engine.run(&GateEps::uniform(&circuit, e));
        }
        let sp_time = t_sp.elapsed();

        let mut row = vec![entry.name.to_owned(), circuit.gate_count().to_string()];
        row.extend(errs.iter().map(|e| format!("{e:.2}")));
        row.push(fmt_duration(mc_time));
        row.push(fmt_duration(sp_time));
        row.push(fmt_duration(weights_time));
        rows.push(row);
        eprintln!("  finished {}", entry.name);
    }

    let headers = [
        "bench", "gates", "e=.05", "e=.10", "e=.15", "e=.20", "e=.25", "e=.30", "MC 50r", "SP 50r",
        "weights",
    ];
    println!("{}", render_table(&headers, &rows));
    println!(
        "Columns e=.xx: average % error over all outputs vs Monte Carlo.\n\
         MC/SP 50r: cumulative runtime of 50 reliability evaluations over ε ∈ [0, 0.5].\n\
         weights: one-time ε-independent precomputation (reused across all 50 runs)."
    );
}
