//! Measures the compiled-tape execution layer against the graph walkers
//! it replaces, and writes `results/tape_throughput.json`:
//!
//! * **Monte Carlo** — patterns/second on the i10 analogue (c6288-class)
//!   at 1/2/4/8 worker threads, graph engine vs tape engine (the packed
//!   multi-word kernel at [`DEFAULT_LANES`] lanes).
//! * **Sweep** — ε-grid points/second on the c499 analogue, per-point
//!   single-pass vs the tape's single-traversal grid kernel.
//!
//! ```text
//! cargo run -p relogic-bench --release --bin tape_throughput [-- --out results/tape_throughput.json] [--smoke]
//! ```
//!
//! `--smoke` shrinks the budgets and turns the run into a same-run
//! regression gate: it exits non-zero unless the tape engine holds a
//! conservative margin over the graph engine on the machine at hand
//! (floors well under the archived speedups, so CI noise does not flake).
//! Both modes assert the correctness contracts: tape MC estimates are
//! thread-count invariant, and tape sweep curves match the per-point
//! engine bit for bit.

use relogic::{
    Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, SweepTape, Weights,
};
use relogic_sim::{
    available_threads, estimate, estimate_tape, CircuitTape, MonteCarloConfig, DEFAULT_LANES,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Conservative `--smoke` floors (the archived full-run numbers are ~5×
/// MC and ~10× sweep; a regression to these floors is a real break, not
/// noise).
const SMOKE_MC_FLOOR: f64 = 2.0;
const SMOKE_SWEEP_FLOOR: f64 = 4.0;

fn best_of<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut out_path = None;
    let mut smoke = false;
    {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--out" => out_path = args.next(),
                "--smoke" => smoke = true,
                other => {
                    eprintln!("unknown argument `{other}` (expected --out <path> or --smoke)");
                    std::process::exit(2);
                }
            }
        }
    }
    let (patterns, points, reps) = if smoke {
        (1u64 << 15, 25usize, 2u32)
    } else {
        (1u64 << 17, 50usize, 5u32)
    };
    let hw_threads = available_threads();

    // ---- Monte Carlo: graph vs tape on i10 ----
    let i10 = relogic_gen::suite::i10();
    let eps = GateEps::uniform(&i10, 0.1);
    println!(
        "MC on i10 ({} gates), {patterns} patterns x best-of-{reps}, {DEFAULT_LANES} lanes, {hw_threads} hardware thread(s)",
        i10.gate_count()
    );
    let t = Instant::now();
    let mc_tape = CircuitTape::compile(&i10);
    let mc_compile_us = t.elapsed().as_secs_f64() * 1e6;

    let reference = estimate_tape(
        &i10,
        &mc_tape,
        eps.as_slice(),
        &MonteCarloConfig {
            patterns,
            threads: 1,
            ..MonteCarloConfig::default()
        },
        DEFAULT_LANES,
    );
    let mut mc_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let cfg = MonteCarloConfig {
            patterns,
            threads,
            ..MonteCarloConfig::default()
        };
        let r = estimate_tape(&i10, &mc_tape, eps.as_slice(), &cfg, DEFAULT_LANES);
        assert_eq!(r, reference, "tape estimate must be thread-count invariant");
        let graph = best_of(reps, || {
            std::hint::black_box(estimate(&i10, eps.as_slice(), &cfg));
        });
        let tape = best_of(reps, || {
            std::hint::black_box(estimate_tape(
                &i10,
                &mc_tape,
                eps.as_slice(),
                &cfg,
                DEFAULT_LANES,
            ));
        });
        #[allow(clippy::cast_precision_loss)]
        let (graph_pps, tape_pps) = (patterns as f64 / graph, patterns as f64 / tape);
        let speedup = graph / tape;
        println!(
            "  threads {threads}:  graph {graph_pps:>12.0} pps   tape {tape_pps:>12.0} pps   x{speedup:.2}"
        );
        mc_rows.push((threads, graph, tape, graph_pps, tape_pps, speedup));
    }
    let mc_speedup_1t = mc_rows[0].5;

    // ---- Sweep: per-point vs grid on c499 ----
    let c499 = relogic_gen::suite::c499();
    let weights = Weights::compute(&c499, &InputDistribution::Uniform, Backend::Bdd);
    let grid = relogic::sweep::epsilon_grid(points, 0.0, 0.5);
    println!(
        "sweep on c499 ({} gates), {points}-point eps grid, 1 thread",
        c499.gate_count()
    );

    let engine = SinglePass::new(&c499, &weights, SinglePassOptions::without_correlations());
    let mut per_point_rows = Vec::new();
    let per_point = best_of(reps, || {
        per_point_rows = grid
            .iter()
            .map(|&e| {
                engine
                    .run(&GateEps::uniform(&c499, e))
                    .per_output()
                    .to_vec()
            })
            .collect();
    });

    let t = Instant::now();
    let sweep_tape = SweepTape::try_new(&c499, &weights).expect("c499 compiles");
    let sweep_compile_us = t.elapsed().as_secs_f64() * 1e6;
    let mut curves = sweep_tape.try_run_grid(&grid, 1).expect("grid runs");
    // The grid kernel finishes in under a millisecond, so take the best
    // of extra repetitions to keep the ratio out of timer noise.
    let grid_secs = best_of(4 * reps, || {
        curves = sweep_tape.try_run_grid(&grid, 1).expect("grid runs");
    });

    let mut worst = 0.0f64;
    for (i, row) in per_point_rows.iter().enumerate() {
        for (k, &d) in row.iter().enumerate() {
            worst = worst.max((curves.delta[i][k] - d).abs());
        }
    }
    assert!(
        worst <= 1e-12,
        "tape sweep diverged from per-point engine: worst |diff| = {worst:.3e}"
    );
    #[allow(clippy::cast_precision_loss)]
    let (pp_pps, grid_pps) = (points as f64 / per_point, points as f64 / grid_secs);
    let sweep_speedup = per_point / grid_secs;
    println!(
        "  per-point {pp_pps:>8.1} pts/s   grid {grid_pps:>10.1} pts/s   x{sweep_speedup:.2}   worst |diff| {worst:.1e}"
    );

    // ---- JSON ----
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"tape_throughput\",");
    let _ = writeln!(json, "  \"hardware_threads\": {hw_threads},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"mc\": {{");
    let _ = writeln!(json, "    \"circuit\": \"i10\",");
    let _ = writeln!(json, "    \"gates\": {},", i10.gate_count());
    let _ = writeln!(json, "    \"patterns\": {patterns},");
    let _ = writeln!(json, "    \"eps\": 0.1,");
    let _ = writeln!(json, "    \"lanes\": {DEFAULT_LANES},");
    let _ = writeln!(json, "    \"tape_compile_us\": {mc_compile_us:.1},");
    let _ = writeln!(json, "    \"rows\": [");
    for (i, (threads, g, t, gp, tp, s)) in mc_rows.iter().enumerate() {
        let comma = if i + 1 == mc_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{ \"threads\": {threads}, \"graph_seconds\": {g:.6}, \"tape_seconds\": {t:.6}, \
             \"graph_patterns_per_sec\": {gp:.0}, \"tape_patterns_per_sec\": {tp:.0}, \"speedup\": {s:.3} }}{comma}"
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sweep\": {{");
    let _ = writeln!(json, "    \"circuit\": \"c499\",");
    let _ = writeln!(json, "    \"gates\": {},", c499.gate_count());
    let _ = writeln!(json, "    \"points\": {points},");
    let _ = writeln!(json, "    \"max_eps\": 0.5,");
    let _ = writeln!(json, "    \"tape_compile_us\": {sweep_compile_us:.1},");
    let _ = writeln!(json, "    \"per_point_seconds\": {per_point:.6},");
    let _ = writeln!(json, "    \"grid_seconds\": {grid_secs:.6},");
    let _ = writeln!(json, "    \"per_point_points_per_sec\": {pp_pps:.1},");
    let _ = writeln!(json, "    \"grid_points_per_sec\": {grid_pps:.1},");
    let _ = writeln!(json, "    \"speedup\": {sweep_speedup:.3},");
    let _ = writeln!(json, "    \"worst_abs_diff\": {worst:e}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    if let Some(path) = &out_path {
        std::fs::write(path, &json).expect("write results JSON");
        println!("wrote {path}");
    } else {
        println!("\n{json}");
    }

    if smoke {
        let mut failed = false;
        if mc_speedup_1t < SMOKE_MC_FLOOR {
            eprintln!("SMOKE FAIL: MC tape speedup x{mc_speedup_1t:.2} < x{SMOKE_MC_FLOOR}");
            failed = true;
        }
        if sweep_speedup < SMOKE_SWEEP_FLOOR {
            eprintln!("SMOKE FAIL: sweep grid speedup x{sweep_speedup:.2} < x{SMOKE_SWEEP_FLOOR}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("smoke ok: MC x{mc_speedup_1t:.2} (floor x{SMOKE_MC_FLOOR}), sweep x{sweep_speedup:.2} (floor x{SMOKE_SWEEP_FLOOR})");
    }
}
