//! Shared harness for the table/figure regeneration binaries and the
//! Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the DATE
//! 2007 paper (see `DESIGN.md` §6 for the index); this library holds the
//! pieces they share: per-circuit backend selection, scaled-down defaults
//! with a `--full` escape hatch, and plain-text table rendering.

use relogic::Backend;
use relogic_sim::MonteCarloConfig;

/// Default Monte Carlo pattern budget for the scaled-down (CI-friendly)
/// runs. `--full` switches to the paper's 6.4 M patterns.
pub const DEFAULT_PATTERNS: u64 = 1 << 16;

/// The paper's Monte Carlo sample size (6.4 million random patterns).
pub const PAPER_PATTERNS: u64 = 6_400_000;

/// Picks the statistics backend for a suite circuit.
///
/// The small and structured circuits afford exact BDD weight vectors and
/// signal probabilities; the large random-logic analogues (c1908, c2670,
/// frg2, c3540, i10) blow up symbolically and use random-pattern estimation
/// instead — precisely the two options §4(i) of the paper offers.
#[must_use]
pub fn backend_for(name: &str) -> Backend {
    match name {
        "x2" | "cu" | "b9" | "c499" | "c1355" => Backend::Bdd,
        _ => Backend::Simulation {
            patterns: 1 << 17,
            seed: 0xBEEF,
        },
    }
}

/// Command-line options shared by the regeneration binaries.
#[derive(Clone, Debug, Default)]
pub struct Cli {
    /// Run at paper scale (6.4 M Monte Carlo patterns, 1000 Fig. 7 runs).
    pub full: bool,
    /// Override the Monte Carlo pattern count.
    pub patterns: Option<u64>,
    /// Override the number of ε grid points.
    pub points: Option<usize>,
    /// Override the number of randomized runs (Fig. 7).
    pub runs: Option<usize>,
    /// Restrict to a single named circuit (Table 2).
    pub only: Option<String>,
}

impl Cli {
    /// Parses `std::env::args`, ignoring unknown flags.
    ///
    /// Recognized: `--full`, `--patterns N`, `--points N`, `--runs N`,
    /// `--only NAME`.
    #[must_use]
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => cli.full = true,
                "--patterns" => cli.patterns = args.next().and_then(|v| v.parse().ok()),
                "--points" => cli.points = args.next().and_then(|v| v.parse().ok()),
                "--runs" => cli.runs = args.next().and_then(|v| v.parse().ok()),
                "--only" => cli.only = args.next(),
                _ => {}
            }
        }
        cli
    }

    /// The Monte Carlo pattern budget implied by the flags.
    #[must_use]
    pub fn mc_patterns(&self) -> u64 {
        self.patterns.unwrap_or(if self.full {
            PAPER_PATTERNS
        } else {
            DEFAULT_PATTERNS
        })
    }

    /// A Monte Carlo configuration with the selected pattern budget.
    #[must_use]
    pub fn mc_config(&self) -> MonteCarloConfig {
        MonteCarloConfig {
            patterns: self.mc_patterns(),
            ..MonteCarloConfig::default()
        }
    }
}

/// Renders rows as a fixed-width text table with a header rule.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (j, cell) in row.iter().enumerate().take(cols) {
            widths[j] = widths[j].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a duration compactly (`1m 23.4s`, `456ms`, …).
#[must_use]
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{}m {:.1}s", (s / 60.0).floor(), s % 60.0)
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_table() {
        assert_eq!(backend_for("b9"), Backend::Bdd);
        assert!(matches!(backend_for("i10"), Backend::Simulation { .. }));
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    fn durations_format() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.0ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.5)), "2.50s");
        assert_eq!(fmt_duration(Duration::from_secs(125)), "2m 5.0s");
    }

    #[test]
    fn cli_defaults() {
        let cli = Cli::default();
        assert_eq!(cli.mc_patterns(), DEFAULT_PATTERNS);
        let full = Cli {
            full: true,
            ..Cli::default()
        };
        assert_eq!(full.mc_patterns(), PAPER_PATTERNS);
        let over = Cli {
            patterns: Some(999),
            full: true,
            ..Cli::default()
        };
        assert_eq!(over.mc_patterns(), 999);
    }
}
