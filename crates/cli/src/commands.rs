//! Command implementations.

use crate::options::{Options, ParsedArgs};
use relogic::{
    GateEps, InputDistribution, ObservabilityMatrix, SinglePass, SinglePassOptions, Weights,
};
use relogic_estimate::{EstimatorPolicy, EstimatorTier, PropagationEstimate};
use relogic_netlist::structure::{output_cone_sizes, CircuitStats, FanoutMap};
use relogic_netlist::{bench, blif, dot, verilog, Circuit};
use relogic_serve::json::Json;
use relogic_serve::proto::{AnalyzeRequestOptions, BackendSpec, NetlistFormat};
use relogic_serve::ServeError;
use relogic_sim::MonteCarloConfig;
use relogic_store::{ArtifactMeta, Loaded, Store, StoreKey};
use std::error::Error;
use std::fmt;

/// Errors surfaced to the CLI user.
///
/// Each variant maps to a distinct process exit code (see
/// [`CliError::exit_code`]) so scripts can tell invocation mistakes from
/// unreadable files, malformed netlists, and analysis failures.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown command/flag, missing value). Exit code 2.
    Usage(String),
    /// Could not read the input file. Exit code 3.
    Io {
        /// The file the CLI tried to read.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The netlist failed to parse or validate. Exit code 4.
    Netlist {
        /// The file being parsed.
        path: String,
        /// The parser/validator error (carries a line number for syntax
        /// errors).
        source: relogic_netlist::NetlistError,
    },
    /// The analytical engine rejected the request. Exit code 5.
    Analysis(relogic::RelogicError),
    /// The Monte Carlo simulator rejected the request. Exit code 6.
    Sim(relogic_sim::SimError),
    /// The on-disk artifact store failed, or `cache verify` found
    /// corruption. Exit code 7.
    Store(String),
    /// The hybrid estimator subsystem (`estimate`, `harden`,
    /// `critical-eps`) rejected the request or failed past the point
    /// where escalation could save it. Exit code 8.
    Estimator(relogic::RelogicError),
    /// The `--deadline-ms` budget expired before the command completed;
    /// the work stopped at its next cooperative check and no partial
    /// result was printed. Exit code 9.
    Deadline(relogic::Cancelled),
}

impl CliError {
    /// Process exit code for this error class (each class is distinct and
    /// non-zero).
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Netlist { .. } => 4,
            CliError::Analysis(_) => 5,
            CliError::Sim(_) => 6,
            CliError::Store(_) => 7,
            CliError::Estimator(_) => 8,
            CliError::Deadline(_) => 9,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io { path, source } => write!(f, "i/o error: {path}: {source}"),
            // Syntax errors print `file:line:` so editors and humans can
            // jump straight to the offending input line.
            CliError::Netlist {
                path,
                source: relogic_netlist::NetlistError::Parse { line, message },
            } => write!(f, "netlist error: {path}:{line}: {message}"),
            CliError::Netlist { path, source } => write!(f, "netlist error: {path}: {source}"),
            CliError::Analysis(e) => write!(f, "analysis error: {e}"),
            CliError::Sim(e) => write!(f, "simulation error: {e}"),
            CliError::Store(m) => write!(f, "store error: {m}"),
            CliError::Estimator(e) => write!(f, "estimator error: {e}"),
            CliError::Deadline(c) => write!(f, "deadline exceeded: {c}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Io { source, .. } => Some(source),
            CliError::Netlist { source, .. } => Some(source),
            CliError::Analysis(e) => Some(e),
            CliError::Sim(e) => Some(e),
            CliError::Store(_) => None,
            CliError::Estimator(e) => Some(e),
            CliError::Deadline(_) => None,
        }
    }
}

impl From<relogic::RelogicError> for CliError {
    fn from(e: relogic::RelogicError) -> Self {
        match e {
            // A fired deadline is its own exit-code class, whichever
            // engine noticed the token.
            relogic::RelogicError::Cancelled(c) => CliError::Deadline(c),
            other => CliError::Analysis(other),
        }
    }
}

impl From<relogic_sim::SimError> for CliError {
    fn from(e: relogic_sim::SimError) -> Self {
        match e {
            relogic_sim::SimError::Cancelled(c) => CliError::Deadline(c),
            other => CliError::Sim(other),
        }
    }
}

impl From<relogic_store::StoreError> for CliError {
    fn from(e: relogic_store::StoreError) -> Self {
        CliError::Store(e.to_string())
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Analysis(inner) => CliError::from(inner),
            ServeError::Sim(inner) => CliError::from(inner),
            ServeError::DeadlineExceeded { after_ms, site } => {
                CliError::Deadline(relogic::Cancelled {
                    after: std::time::Duration::from_millis(after_ms),
                    checked_at: site,
                })
            }
            // The remaining variants are protocol-level and unreachable
            // from the one-shot JSON paths, but map them sensibly anyway.
            other => CliError::Usage(other.to_string()),
        }
    }
}

/// Maps a `RelogicError` from the estimator subsystem to its CLI class:
/// a fired deadline keeps exit code 9, everything else is exit code 8.
fn estimator_error(e: relogic::RelogicError) -> CliError {
    match e {
        relogic::RelogicError::Cancelled(c) => CliError::Deadline(c),
        other => CliError::Estimator(other),
    }
}

/// The command's cancel token: armed with `--deadline-ms` when set,
/// inert otherwise. Completing under a deadline is bit-identical to
/// running without one — the checks are read-only early exits.
fn deadline_token(opts: &Options) -> relogic::CancelToken {
    if opts.deadline_ms > 0 {
        relogic::CancelToken::with_deadline(std::time::Duration::from_millis(opts.deadline_ms))
    } else {
        relogic::CancelToken::new()
    }
}

/// One cooperative check between command phases (the fine-grained checks
/// live inside the engines).
fn checked(cancel: &relogic::CancelToken, site: &'static str) -> Result<(), CliError> {
    cancel.check(site).map_err(CliError::Deadline)
}

/// The `--diagnostics` line accounting for an armed deadline.
fn deadline_note(opts: &Options, cancel: &relogic::CancelToken) -> String {
    if opts.deadline_ms == 0 {
        return String::new();
    }
    format!(
        "deadline: {} ms budget, used {} ms\n",
        opts.deadline_ms,
        cancel.elapsed().as_millis()
    )
}

/// Runs a parsed command line, returning the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] for bad usage, unreadable files, or malformed
/// netlists.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "help" | "--help" | "-h" => Ok(crate::USAGE.to_owned()),
        "stats" => stats(&load(args)?.circuit),
        "analyze" => analyze(&load(args)?, &args.options),
        "observability" => observability(&load(args)?, &args.options),
        "sweep" => sweep(&load(args)?.circuit, &args.options),
        "mc" => monte_carlo(&load(args)?.circuit, &args.options),
        "rank" => rank(&load(args)?, &args.options),
        "estimate" => estimate(&load(args)?, &args.options),
        "harden" => harden(&load(args)?, &args.options),
        "critical-eps" => critical_eps(&load(args)?, &args.options),
        "serve" => serve(args),
        "convert" => convert(&load(args)?.circuit, &args.options),
        "gen" => gen(args),
        "cache ls" => cache_ls(&cache_store(args)?),
        "cache verify" => cache_verify(&cache_store(args)?),
        "cache gc" => cache_gc(&cache_store(args)?),
        "cache warm" => cache_warm(&cache_store(args)?, &load(args)?, &args.options),
        other if other.starts_with("cache ") => Err(CliError::Usage(format!(
            "unknown cache action `{}` (expected ls, verify, gc, or warm)",
            &other["cache ".len()..]
        ))),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `relogic-cli help`)"
        ))),
    }
}

/// A parsed netlist plus the raw text and path it came from, so the
/// one-shot commands can address the on-disk artifact store with the
/// exact digest scheme the serve daemon uses.
struct LoadedNetlist {
    path: String,
    text: String,
    circuit: Circuit,
}

impl LoadedNetlist {
    /// The wire format tag, chosen by extension exactly like
    /// [`parse_netlist`] chooses the parser.
    fn format(&self) -> NetlistFormat {
        if self.path.ends_with(".bench") {
            NetlistFormat::Bench
        } else if self.path.ends_with(".v") || self.path.ends_with(".verilog") {
            NetlistFormat::Verilog
        } else {
            NetlistFormat::Blif
        }
    }

    /// The store key under the given backend: identical inputs hit the
    /// artifacts a `relogic-cli serve --cache-dir` daemon wrote, and vice
    /// versa.
    fn store_key(&self, opts: &Options) -> StoreKey {
        StoreKey::digest(
            self.format().tag(),
            &backend_spec(opts).cache_tag(),
            &self.text,
        )
    }
}

fn backend_spec(opts: &Options) -> BackendSpec {
    match opts.backend() {
        relogic::Backend::Bdd => BackendSpec::Bdd,
        relogic::Backend::Simulation { patterns, seed } => BackendSpec::Sim { patterns, seed },
    }
}

fn load(args: &ParsedArgs) -> Result<LoadedNetlist, CliError> {
    let path = args
        .target
        .as_deref()
        .ok_or_else(|| CliError::Usage(format!("`{}` needs a netlist file", args.command)))?;
    let text = std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })?;
    let circuit = parse_netlist(path, &text)?;
    Ok(LoadedNetlist {
        path: path.to_owned(),
        text,
        circuit,
    })
}

/// Parses netlist text, choosing the format from the file name
/// (`*.bench` → ISCAS-85 bench, `*.v`/`*.verilog` → structural Verilog,
/// anything else → BLIF).
///
/// # Errors
///
/// Returns [`CliError::Netlist`] on malformed input, tagged with `path`
/// (and the offending line number for syntax errors).
pub fn parse_netlist(path: &str, text: &str) -> Result<Circuit, CliError> {
    let parsed = if path.ends_with(".bench") {
        bench::parse(text)
    } else if path.ends_with(".v") || path.ends_with(".verilog") {
        verilog::parse(text)
    } else {
        blif::parse(text)
    };
    parsed.map_err(|source| CliError::Netlist {
        path: path.to_owned(),
        source,
    })
}

fn stats(c: &Circuit) -> Result<String, CliError> {
    let s = CircuitStats::of(c);
    let fan = FanoutMap::build(c);
    let cones = output_cone_sizes(c);
    let mut out = String::new();
    out.push_str(&format!("model:            {}\n", c.name()));
    out.push_str(&format!("inputs:           {}\n", s.inputs));
    out.push_str(&format!("outputs:          {}\n", s.outputs));
    out.push_str(&format!("gates:            {}\n", s.gates));
    out.push_str(&format!("depth:            {}\n", s.depth));
    out.push_str(&format!("total out levels: {}\n", s.total_output_levels));
    out.push_str(&format!("max fanout:       {}\n", s.max_fanout));
    out.push_str(&format!("fanout stems:     {}\n", s.stems));
    out.push_str(&format!(
        "largest cone:     {} gates\n",
        cones.iter().max().copied().unwrap_or(0)
    ));
    out.push_str(&format!(
        "dangling nodes:   {}\n",
        fan.dangling_nodes().len()
    ));
    out.push_str("gate kinds:       ");
    let kinds: Vec<String> = s
        .kind_histogram
        .iter()
        .map(|(k, n)| format!("{k}:{n}"))
        .collect();
    out.push_str(&kinds.join(" "));
    out.push('\n');
    Ok(out)
}

fn analysis_weights(c: &Circuit, opts: &Options) -> Result<Weights, CliError> {
    Ok(Weights::try_compute(
        c,
        &InputDistribution::Uniform,
        opts.backend(),
    )?)
}

/// One-shot-command view of the on-disk artifact store: best-effort
/// read-through/write-through, keyed identically to the serve daemon,
/// with a provenance trail surfaced by `--diagnostics`.
///
/// The cache must never make an analysis fail: an unusable directory or a
/// failed write downgrades to computing in memory (with one stderr line),
/// and corrupt artifacts are quarantined by the store and recomputed.
struct DiskCache {
    store: Store,
    key: StoreKey,
    dir: String,
    trail: std::cell::RefCell<Vec<String>>,
}

impl DiskCache {
    fn open(opts: &Options, loaded: &LoadedNetlist) -> Option<DiskCache> {
        let dir = opts.cache_dir.clone()?;
        match Store::open(dir.as_str()) {
            Ok(store) => Some(DiskCache {
                store,
                key: loaded.store_key(opts),
                dir,
                trail: std::cell::RefCell::new(Vec::new()),
            }),
            Err(err) => {
                eprintln!("relogic-cli: cache dir unusable, continuing without persistence: {err}");
                None
            }
        }
    }

    fn note(&self, line: String) {
        self.trail.borrow_mut().push(line);
    }

    /// The provenance block appended to `--diagnostics` output.
    fn provenance(&self) -> String {
        let mut out = format!("disk cache ({}): key {}\n", self.dir, self.key.hex());
        for line in self.trail.borrow().iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Writes the meta sidecar once per key so `cache ls`/`warm` can name
    /// what a digest refers to.
    fn save_meta(&self, loaded: &LoadedNetlist, opts: &Options) {
        if matches!(self.store.load_meta(self.key), Ok(Loaded::Hit(_))) {
            return;
        }
        let meta = ArtifactMeta {
            format_tag: loaded.format().tag().to_owned(),
            backend_tag: backend_spec(opts).cache_tag(),
            netlist: loaded.text.clone(),
        };
        if let Err(err) = self.store.save_meta(self.key, &meta) {
            eprintln!("relogic-cli: failed to persist artifact meta: {err}");
        }
    }

    fn loaded_note<T>(
        &self,
        artifact: &str,
        loaded: Result<Loaded<T>, relogic_store::StoreError>,
    ) -> Option<T> {
        match loaded {
            Ok(Loaded::Hit(v)) => {
                self.note(format!("{artifact}: disk hit"));
                Some(v)
            }
            Ok(Loaded::Miss) => {
                self.note(format!("{artifact}: disk miss (computed and stored)"));
                None
            }
            Ok(Loaded::Quarantined(reason)) => {
                self.note(format!(
                    "{artifact}: corrupt artifact quarantined ({reason}), recomputed"
                ));
                None
            }
            Err(err) => {
                self.note(format!("{artifact}: read failed ({err}), recomputed"));
                None
            }
        }
    }
}

/// Weights through the optional disk cache.
fn cached_weights(
    loaded: &LoadedNetlist,
    opts: &Options,
    disk: Option<&DiskCache>,
) -> Result<Weights, CliError> {
    if let Some(disk) = disk {
        if let Some(w) = disk.loaded_note("weights", disk.store.load_weights(disk.key)) {
            return Ok(w);
        }
        let w = analysis_weights(&loaded.circuit, opts)?;
        disk.save_meta(loaded, opts);
        if let Err(err) = disk.store.save_weights(disk.key, &w) {
            eprintln!("relogic-cli: failed to persist weights: {err}");
        }
        return Ok(w);
    }
    analysis_weights(&loaded.circuit, opts)
}

/// Observability through the optional disk cache, polling `cancel`
/// while the backend builds (per output chunk and per node for BDD).
fn cached_observability(
    loaded: &LoadedNetlist,
    opts: &Options,
    disk: Option<&DiskCache>,
    cancel: &relogic::CancelToken,
) -> Result<ObservabilityMatrix, CliError> {
    if let Some(disk) = disk {
        if let Some(obs) =
            disk.loaded_note("observability", disk.store.load_observability(disk.key))
        {
            return Ok(obs);
        }
        let obs = ObservabilityMatrix::try_compute_threads_cancellable(
            &loaded.circuit,
            &InputDistribution::Uniform,
            opts.backend(),
            opts.threads,
            cancel,
        )?;
        disk.save_meta(loaded, opts);
        if let Err(err) = disk.store.save_observability(disk.key, &obs) {
            eprintln!("relogic-cli: failed to persist observability: {err}");
        }
        return Ok(obs);
    }
    Ok(ObservabilityMatrix::try_compute_threads_cancellable(
        &loaded.circuit,
        &InputDistribution::Uniform,
        opts.backend(),
        opts.threads,
        cancel,
    )?)
}

fn engine_options(opts: &Options) -> SinglePassOptions {
    let mut o = if opts.no_correlations {
        SinglePassOptions::without_correlations()
    } else {
        SinglePassOptions::default()
    };
    o.strict = opts.strict;
    if let Some(cap) = opts.partner_cap {
        o.partner_cap = cap;
    }
    o
}

/// Appends the `"cache":"bypass"` member and newline-terminates, so CLI
/// JSON output is frame-compatible with the server's response `result`.
fn json_line(mut result: Json) -> String {
    result.push("cache", Json::from("bypass"));
    let mut line = result.encode();
    line.push('\n');
    line
}

/// One analyze run, from either engine. Both engines expose the same
/// per-output/per-node accessors and — by the tape's bit-identity
/// contract — the same numbers, so the printing code below is shared.
enum AnalyzeRun {
    Graph(relogic::SinglePassResult),
    Tape {
        point: relogic::SweepPoint,
        compile_us: u128,
    },
}

impl AnalyzeRun {
    fn per_output(&self) -> &[f64] {
        match self {
            AnalyzeRun::Graph(r) => r.per_output(),
            AnalyzeRun::Tape { point, .. } => point.per_output(),
        }
    }

    fn p01(&self, id: relogic_netlist::NodeId) -> f64 {
        match self {
            AnalyzeRun::Graph(r) => r.p01(id),
            AnalyzeRun::Tape { point, .. } => point.p01(id),
        }
    }

    fn p10(&self, id: relogic_netlist::NodeId) -> f64 {
        match self {
            AnalyzeRun::Graph(r) => r.p10(id),
            AnalyzeRun::Tape { point, .. } => point.p10(id),
        }
    }

    fn node_delta(&self, id: relogic_netlist::NodeId) -> f64 {
        match self {
            AnalyzeRun::Graph(r) => r.node_delta(id),
            AnalyzeRun::Tape { point, .. } => point.node_delta(id),
        }
    }

    fn diagnostics(&self) -> &relogic::Diagnostics {
        match self {
            AnalyzeRun::Graph(r) => r.diagnostics(),
            AnalyzeRun::Tape { point, .. } => point.diagnostics(),
        }
    }
}

fn analyze(loaded: &LoadedNetlist, opts: &Options) -> Result<String, CliError> {
    let c = &loaded.circuit;
    let cancel = deadline_token(opts);
    let disk = DiskCache::open(opts, loaded);
    // The weights build itself is one uninterruptible backend run; the
    // check guards entering it once the deadline has already fired.
    checked(&cancel, "weights_build")?;
    let weights = cached_weights(loaded, opts, disk.as_ref())?;
    if opts.json {
        let request = AnalyzeRequestOptions {
            single_pass: engine_options(opts),
            diagnostics: opts.diagnostics,
            per_node: opts.per_node,
        };
        let result = relogic_serve::api::analyze_result_cancellable(
            c,
            &weights,
            &[opts.eps],
            &request,
            &cancel,
        )?;
        return Ok(json_line(result));
    }
    checked(&cancel, "analyze_point")?;
    // The tape engine carries the uncorrelated recurrence only; the §4.1
    // correlation correction, the strict numeric policy, and the
    // any-output consolidation (which needs the graph result's joint
    // marginals) all stay on the graph engine. Either way the numbers
    // match bit for bit — see `relogic::SweepTape`'s module docs.
    let use_tape = opts.engine == crate::options::EngineKind::Tape
        && opts.no_correlations
        && !opts.strict
        && !(opts.diagnostics && c.output_count() > 1);
    let result = if use_tape {
        let start = std::time::Instant::now();
        let tape = relogic::SweepTape::try_new(c, &weights)?;
        let compile_us = start.elapsed().as_micros();
        AnalyzeRun::Tape {
            point: tape.try_run_point(&GateEps::try_uniform(c, opts.eps)?)?,
            compile_us,
        }
    } else {
        let engine = SinglePass::try_new(c, &weights, engine_options(opts))?;
        AnalyzeRun::Graph(engine.try_run(&GateEps::try_uniform(c, opts.eps)?)?)
    };
    let mut out = format!(
        "single-pass reliability at eps = {} ({} backend{})\n",
        opts.eps,
        match opts.backend {
            crate::options::BackendKind::Bdd => "bdd",
            crate::options::BackendKind::Sim => "sim",
        },
        if opts.no_correlations {
            ", correlations off"
        } else {
            ""
        }
    );
    for (k, o) in c.outputs().iter().enumerate() {
        out.push_str(&format!(
            "{:>24}  delta = {:.6}\n",
            o.name(),
            result.per_output()[k]
        ));
    }
    if opts.per_node {
        out.push_str("\nper-node error probabilities:\n");
        for (id, node) in c.iter() {
            if !node.kind().is_gate() {
                continue;
            }
            out.push_str(&format!(
                "{:>24}  p01 = {:.6}  p10 = {:.6}  delta = {:.6}\n",
                c.display_name(id),
                result.p01(id),
                result.p10(id),
                result.node_delta(id)
            ));
        }
    }
    if opts.diagnostics {
        let mut diag = result.diagnostics().clone();
        if let AnalyzeRun::Graph(graph_result) = &result {
            if c.output_count() > 1 {
                let cons = relogic::consolidate::Consolidator::try_new(
                    c,
                    &InputDistribution::Uniform,
                    opts.backend(),
                )?;
                let any = cons.any_output_error_with(graph_result, &mut diag)?;
                out.push_str(&format!("{:>24}  any-output = {any:.6}\n", "*"));
            }
        }
        let engine_line = match &result {
            AnalyzeRun::Graph(_) => "engine: graph".to_owned(),
            AnalyzeRun::Tape { compile_us, .. } => {
                format!("engine: tape (compiled in {compile_us} us)")
            }
        };
        out.push_str(&format!("\ndiagnostics:\n{engine_line}\n{diag}\n"));
        out.push_str(&deadline_note(opts, &cancel));
        if let Some(disk) = &disk {
            out.push_str(&disk.provenance());
        }
    }
    Ok(out)
}

fn observability(loaded: &LoadedNetlist, opts: &Options) -> Result<String, CliError> {
    let c = &loaded.circuit;
    let cancel = deadline_token(opts);
    let disk = DiskCache::open(opts, loaded);
    let obs = cached_observability(loaded, opts, disk.as_ref(), &cancel)?;
    if opts.json {
        let result = relogic_serve::api::observability_result(c, &obs, &[opts.eps], opts.per_node)?;
        return Ok(json_line(result));
    }
    let deltas = obs.closed_form(&GateEps::try_uniform(c, opts.eps)?);
    let mut out = format!(
        "closed-form observability bound at eps = {} ({} backend)\n",
        opts.eps,
        match opts.backend {
            crate::options::BackendKind::Bdd => "bdd",
            crate::options::BackendKind::Sim => "sim",
        },
    );
    for (k, o) in c.outputs().iter().enumerate() {
        out.push_str(&format!("{:>24}  delta = {:.6}\n", o.name(), deltas[k]));
    }
    if opts.per_node {
        out.push_str("\nper-gate any-output observability:\n");
        for (id, node) in c.iter() {
            if !node.kind().is_gate() {
                continue;
            }
            out.push_str(&format!(
                "{:>24}  observability = {:.6}\n",
                c.display_name(id),
                obs.any(id)
            ));
        }
    }
    if opts.diagnostics {
        out.push_str(&format!("\ndiagnostics:\n{}\n", obs.diagnostics()));
        out.push_str(&deadline_note(opts, &cancel));
        if let Some(disk) = &disk {
            out.push_str(&disk.provenance());
        }
    }
    Ok(out)
}

fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    let opts = &args.options;
    if args.target.is_some() {
        return Err(CliError::Usage(
            "`serve` takes no netlist argument (circuits arrive over the socket)".into(),
        ));
    }
    if opts.listen.is_none() && opts.unix.is_none() {
        return Err(CliError::Usage(
            "`serve` needs --listen <addr> and/or --unix <path>".into(),
        ));
    }
    #[cfg(feature = "chaos")]
    let chaos = match &opts.chaos_profile {
        Some(spec) => {
            let config = relogic_serve::chaos::ChaosConfig::parse(spec).map_err(CliError::Usage)?;
            eprintln!(
                "relogic-serve: CHAOS ACTIVE — profile `{spec}` (deterministic fault injection)"
            );
            Some(relogic_serve::chaos::Chaos::new(config))
        }
        None => None,
    };
    let config = relogic_serve::ServerConfig {
        tcp: opts.listen.clone(),
        unix: opts.unix.clone().map(std::path::PathBuf::from),
        threads: opts.threads,
        service: relogic_serve::ServiceConfig {
            cache_bytes: opts.cache_bytes,
            timeout_ms: opts.timeout_ms,
            max_inflight: opts.max_inflight,
            cache_dir: opts.cache_dir.clone().map(std::path::PathBuf::from),
            #[cfg(feature = "chaos")]
            chaos,
            ..relogic_serve::ServiceConfig::default()
        },
        ..relogic_serve::ServerConfig::default()
    };
    let shutdown = relogic_serve::signal::install_shutdown_flag();
    let server = relogic_serve::Server::start(config).map_err(|source| CliError::Io {
        path: opts
            .unix
            .clone()
            .or_else(|| opts.listen.clone())
            .unwrap_or_else(|| "serve".into()),
        source,
    })?;
    if let Some(addr) = server.tcp_addr() {
        eprintln!("relogic-serve: listening on tcp://{addr}");
    }
    if let Some(path) = server.unix_path() {
        eprintln!("relogic-serve: listening on unix:{}", path.display());
    }
    while !shutdown.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("relogic-serve: signal received, draining");
    server.shutdown();
    Ok("relogic-serve: shutdown complete\n".to_owned())
}

fn sweep(c: &Circuit, opts: &Options) -> Result<String, CliError> {
    let weights = analysis_weights(c, opts)?;
    let grid = relogic::sweep::try_epsilon_grid(opts.points, 0.0, opts.max_eps)?;
    let curves = relogic::sweep::try_sweep_single_pass_threads(
        c,
        &weights,
        engine_options(opts),
        &grid,
        opts.threads,
    )?;
    let mut out = String::from("eps");
    for o in c.outputs() {
        out.push_str(&format!(",{}", o.name()));
    }
    out.push('\n');
    for (i, &e) in grid.iter().enumerate() {
        out.push_str(&format!("{e:.5}"));
        for &d in &curves.delta[i] {
            out.push_str(&format!(",{d:.6}"));
        }
        out.push('\n');
    }
    if opts.diagnostics {
        for line in curves.diagnostics.to_string().lines() {
            out.push_str(&format!("# {line}\n"));
        }
    }
    Ok(out)
}

fn monte_carlo(c: &Circuit, opts: &Options) -> Result<String, CliError> {
    let cancel = deadline_token(opts);
    let config = MonteCarloConfig {
        patterns: opts.patterns,
        seed: opts.seed,
        threads: opts.threads,
        ..MonteCarloConfig::default()
    };
    let use_tape = opts.engine == crate::options::EngineKind::Tape;
    if opts.json {
        let result = if use_tape {
            let tape = relogic_sim::CircuitTape::compile(c);
            relogic_serve::api::monte_carlo_result_tape_cancellable(
                c, &tape, opts.eps, &config, &cancel,
            )?
        } else {
            checked(&cancel, "mc_graph")?;
            relogic_serve::api::monte_carlo_result(c, opts.eps, &config)?
        };
        return Ok(json_line(result));
    }
    let eps = GateEps::try_uniform(c, opts.eps)?;
    let (r, engine_line) = if use_tape {
        let start = std::time::Instant::now();
        let tape = relogic_sim::CircuitTape::compile(c);
        let compile_us = start.elapsed().as_micros();
        let r = relogic_sim::try_estimate_tape_cancellable(
            c,
            &tape,
            eps.as_slice(),
            &config,
            relogic_sim::DEFAULT_LANES,
            &cancel,
        )?;
        (
            r,
            format!(
                "engine: tape ({} x 64-bit lanes, compiled in {compile_us} us)",
                relogic_sim::DEFAULT_LANES
            ),
        )
    } else {
        let r = relogic_sim::try_estimate_cancellable(c, eps.as_slice(), &config, &cancel)?;
        (r, "engine: graph".to_owned())
    };
    let mut out = format!(
        "monte carlo at eps = {} ({} patterns)\n",
        opts.eps,
        r.patterns()
    );
    for (k, o) in c.outputs().iter().enumerate() {
        out.push_str(&format!(
            "{:>24}  delta = {:.6}  (std err {:.6})\n",
            o.name(),
            r.per_output()[k],
            r.std_error(k)
        ));
    }
    out.push_str(&format!(
        "{:>24}  any-output = {:.6}\n",
        "*",
        r.any_output()
    ));
    if opts.diagnostics {
        out.push_str(&format!("\ndiagnostics:\n{engine_line}\n"));
        out.push_str(&deadline_note(opts, &cancel));
    }
    Ok(out)
}

fn rank(loaded: &LoadedNetlist, opts: &Options) -> Result<String, CliError> {
    let c = &loaded.circuit;
    let cancel = deadline_token(opts);
    let disk = DiskCache::open(opts, loaded);
    let obs = cached_observability(loaded, opts, disk.as_ref(), &cancel)?;
    let eps = GateEps::try_uniform(c, opts.eps)?;
    let mut rows: Vec<(relogic_netlist::NodeId, f64)> = c
        .node_ids()
        .filter(|&id| c.node(id).kind().is_gate())
        .map(|id| (id, eps.get(id) * obs.any(id)))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = format!(
        "top {} gates by soft-error criticality (eps * any-output observability):\n",
        opts.top.min(rows.len())
    );
    for (id, crit) in rows.into_iter().take(opts.top) {
        out.push_str(&format!(
            "{:>24}  {:6}  criticality = {:.6}  observability = {:.4}\n",
            c.display_name(id),
            c.node(id).kind().to_string(),
            crit,
            obs.any(id)
        ));
    }
    if opts.diagnostics {
        out.push_str(&format!("\ndiagnostics:\n{}\n", obs.diagnostics()));
        out.push_str(&deadline_note(opts, &cancel));
        if let Some(disk) = &disk {
            out.push_str(&disk.provenance());
        }
    }
    Ok(out)
}

/// The auto-escalating hybrid estimator: exact observability under a BDD
/// live-node budget, then the propagation estimator, then Monte Carlo
/// refinement when the propagation answer saturates. Mirrors the serve
/// daemon's `estimate` request, with the disk cache standing in for the
/// in-memory artifact cache.
fn estimate(loaded: &LoadedNetlist, opts: &Options) -> Result<String, CliError> {
    let c = &loaded.circuit;
    let cancel = deadline_token(opts);
    let disk = DiskCache::open(opts, loaded);
    let gate_eps = GateEps::try_uniform(c, opts.eps).map_err(CliError::Estimator)?;
    let policy = EstimatorPolicy {
        bdd_node_budget: opts.bdd_node_budget,
        mc_patterns: opts.patterns,
        mc_seed: opts.seed,
        ..EstimatorPolicy::default()
    };
    let exact = |budget: usize| -> Result<Vec<f64>, relogic::RelogicError> {
        // A cached observability matrix is a free exact answer: the budget
        // only guards fresh BDD builds.
        if let Some(disk) = disk.as_ref() {
            if let Ok(Loaded::Hit(obs)) = disk.store.load_observability(disk.key) {
                disk.note("observability: disk hit (exact tier)".to_owned());
                return Ok(obs.closed_form(&gate_eps));
            }
        }
        let obs = ObservabilityMatrix::try_compute_budgeted_cancellable(
            c,
            &InputDistribution::Uniform,
            opts.threads,
            budget,
            &cancel,
        )?;
        if let Some(disk) = disk.as_ref() {
            disk.save_meta(loaded, opts);
            if let Err(err) = disk.store.save_observability(disk.key, &obs) {
                eprintln!("relogic-cli: failed to persist observability: {err}");
            }
            disk.note("observability: computed under budget and stored".to_owned());
        }
        Ok(obs.closed_form(&gate_eps))
    };
    let propagation = || -> Result<Vec<f64>, relogic::RelogicError> {
        if let Some(disk) = disk.as_ref() {
            if let Ok(Loaded::Hit(est)) = disk.store.load_estimate(disk.key) {
                disk.note("estimator: disk hit".to_owned());
                return Ok(est.closed_form(&gate_eps));
            }
        }
        let est = PropagationEstimate::try_compute(c, &InputDistribution::Uniform)?;
        if let Some(disk) = disk.as_ref() {
            disk.save_meta(loaded, opts);
            if let Err(err) = disk.store.save_estimate(disk.key, &est) {
                eprintln!("relogic-cli: failed to persist estimator: {err}");
            }
            disk.note("estimator: computed and stored".to_owned());
        }
        Ok(est.closed_form(&gate_eps))
    };
    let mc = |patterns: u64, seed: u64| -> Result<Vec<f64>, relogic::RelogicError> {
        let config = MonteCarloConfig {
            patterns,
            seed,
            threads: opts.threads,
            ..MonteCarloConfig::default()
        };
        let r = relogic_sim::try_estimate_cancellable(c, gate_eps.as_slice(), &config, &cancel)
            .map_err(relogic::RelogicError::from)?;
        Ok(r.per_output().to_vec())
    };
    let report =
        relogic_estimate::run_estimate_cancellable(&policy, &cancel, exact, propagation, mc)
            .map_err(estimator_error)?;
    if opts.json {
        return Ok(json_line(relogic_serve::api::estimate_result(
            c, opts.eps, &report,
        )));
    }
    let mut out = format!(
        "hybrid estimate at eps = {} (tier: {})\nreason: {}\n",
        opts.eps,
        report.tier.name(),
        report.reason
    );
    for (k, o) in c.outputs().iter().enumerate() {
        out.push_str(&format!(
            "{:>24}  delta = {:.6}\n",
            o.name(),
            report.per_output[k]
        ));
    }
    if report.tier == EstimatorTier::MonteCarlo {
        if let Some(prop) = &report.propagation {
            out.push_str("\npropagation tier before MC refinement:\n");
            for (k, o) in c.outputs().iter().enumerate() {
                out.push_str(&format!("{:>24}  delta = {:.6}\n", o.name(), prop[k]));
            }
        }
    }
    if opts.diagnostics {
        out.push_str(&format!("\ndiagnostics:\n{}\n", report.diagnostics));
        out.push_str(&deadline_note(opts, &cancel));
        if let Some(disk) = &disk {
            out.push_str(&disk.provenance());
        }
    }
    Ok(out)
}

/// Selective-TMR hardening sweep: ranks gates by criticality, protects
/// growing prefixes with `tmr_selected` under the area budget, and prints
/// the reliability-per-area Pareto front.
fn harden(loaded: &LoadedNetlist, opts: &Options) -> Result<String, CliError> {
    let c = &loaded.circuit;
    let cancel = deadline_token(opts);
    let report = relogic_estimate::harden_cancellable(
        c,
        &InputDistribution::Uniform,
        opts.eps,
        opts.area_budget,
        opts.max_steps,
        &cancel,
    )
    .map_err(estimator_error)?;
    if opts.json {
        return Ok(json_line(relogic_serve::api::harden_result(
            c,
            opts.eps,
            opts.area_budget,
            &report,
        )));
    }
    let point_line = |p: &relogic_estimate::ParetoPoint| {
        format!(
            "protect {:>4}  {:>6} gates  area {:>6.2}x  mean delta = {:.6}  max delta = {:.6}\n",
            p.protected, p.gates, p.area_ratio, p.mean_delta, p.max_delta
        )
    };
    let mut out = format!(
        "selective-TMR hardening sweep at eps = {} (area budget {:.2}x)\n",
        opts.eps, opts.area_budget
    );
    out.push_str("baseline:  ");
    out.push_str(&point_line(&report.baseline));
    out.push_str(&format!(
        "evaluated {} protection prefixes within budget\npareto front:\n",
        report.evaluated.len()
    ));
    for p in &report.front {
        out.push_str("  ");
        out.push_str(&point_line(p));
    }
    out.push_str(&format!(
        "\nprotection order (top {}, criticality = eps * any-output observability):\n",
        opts.top.min(report.ranking.len())
    ));
    for &(id, crit) in report.ranking.iter().take(opts.top) {
        out.push_str(&format!(
            "{:>24}  criticality = {:.6}\n",
            c.display_name(id),
            crit
        ));
    }
    Ok(out)
}

/// Deterministic bisection for the smallest uniform gate error rate at
/// which the output error delta reaches `--threshold`, evaluated on the
/// compiled sweep tape.
fn critical_eps(loaded: &LoadedNetlist, opts: &Options) -> Result<String, CliError> {
    let c = &loaded.circuit;
    let cancel = deadline_token(opts);
    let disk = DiskCache::open(opts, loaded);
    checked(&cancel, "weights_build")?;
    let weights = cached_weights(loaded, opts, disk.as_ref())?;
    let tape = relogic::SweepTape::try_new(c, &weights).map_err(CliError::Estimator)?;
    let report = relogic_estimate::critical_eps_cancellable(
        c,
        &tape,
        opts.metric,
        opts.threshold,
        opts.max_steps,
        &cancel,
    )
    .map_err(estimator_error)?;
    if opts.json {
        return Ok(json_line(relogic_serve::api::critical_eps_result(
            c, &report,
        )));
    }
    let mut out = format!(
        "critical-eps bisection (metric {}, threshold {})\n",
        report.metric.name(),
        report.threshold
    );
    match report.critical {
        Some(critical) => out.push_str(&format!(
            "{} delta reaches {} at eps = {:.9} ({} steps)\n",
            report.metric.name(),
            report.threshold,
            critical,
            report.steps
        )),
        None => out.push_str(&format!(
            "{} delta never reaches {} for eps in [0, 0.5]\n",
            report.metric.name(),
            report.threshold
        )),
    }
    out.push_str(&format!(
        "bracket: eps in [{:.9}, {:.9}], delta in [{:.6}, {:.6}]\n",
        report.lo, report.hi, report.delta_lo, report.delta_hi
    ));
    if opts.diagnostics {
        let note = deadline_note(opts, &cancel);
        if !note.is_empty() || disk.is_some() {
            out.push_str("\ndiagnostics:\n");
            out.push_str(&note);
            if let Some(disk) = &disk {
                out.push_str(&disk.provenance());
            }
        }
    }
    Ok(out)
}

/// Opens the store named by `--cache-dir` for the offline `cache`
/// actions. Unlike the read/write-through paths, these are *about* the
/// store, so an unusable directory is a hard error (exit code 7).
fn cache_store(args: &ParsedArgs) -> Result<Store, CliError> {
    let dir =
        args.options.cache_dir.as_deref().ok_or_else(|| {
            CliError::Usage(format!("`{}` needs --cache-dir <DIR>", args.command))
        })?;
    Ok(Store::open(dir)?)
}

fn cache_ls(store: &Store) -> Result<String, CliError> {
    let entries = store.ls()?;
    let mut out = String::new();
    let mut total = 0u64;
    for entry in &entries {
        total += entry.bytes;
        out.push_str(&format!(
            "{}  {:<13} {:>12} bytes\n",
            entry.key.hex(),
            entry.kind.name(),
            entry.bytes
        ));
    }
    out.push_str(&format!("{} artifacts, {total} bytes\n", entries.len()));
    Ok(out)
}

fn cache_verify(store: &Store) -> Result<String, CliError> {
    let report = store.verify()?;
    if report.quarantined.is_empty() {
        return Ok(format!("verified {} artifacts, all clean\n", report.ok));
    }
    let mut msg = format!(
        "{} artifacts verified, {} corrupt (renamed to *.corrupt):",
        report.ok,
        report.quarantined.len()
    );
    for (path, reason) in &report.quarantined {
        msg.push_str(&format!("\n  {}: {reason}", path.display()));
    }
    Err(CliError::Store(msg))
}

fn cache_gc(store: &Store) -> Result<String, CliError> {
    let report = store.gc()?;
    Ok(format!(
        "removed {} files (*.tmp, *.corrupt), freed {} bytes\n",
        report.removed, report.bytes_freed
    ))
}

/// Precomputes every artifact for a netlist so a later `serve
/// --cache-dir` (or one-shot command) starts warm. Idempotent: artifacts
/// already present are left alone.
fn cache_warm(store: &Store, loaded: &LoadedNetlist, opts: &Options) -> Result<String, CliError> {
    let key = loaded.store_key(opts);
    let c = &loaded.circuit;
    let mut out = format!("warming {} as {}\n", loaded.path, key.hex());
    let meta = ArtifactMeta {
        format_tag: loaded.format().tag().to_owned(),
        backend_tag: backend_spec(opts).cache_tag(),
        netlist: loaded.text.clone(),
    };
    if matches!(store.load_meta(key)?, Loaded::Hit(_)) {
        out.push_str("meta:          already present\n");
    } else {
        store.save_meta(key, &meta)?;
        out.push_str("meta:          stored\n");
    }
    if matches!(store.load_tape(key)?, Loaded::Hit(_)) {
        out.push_str("tape:          already present\n");
    } else {
        store.save_tape(key, &relogic_sim::CircuitTape::compile(c))?;
        out.push_str("tape:          compiled and stored\n");
    }
    if matches!(store.load_weights(key)?, Loaded::Hit(_)) {
        out.push_str("weights:       already present\n");
    } else {
        store.save_weights(key, &analysis_weights(c, opts)?)?;
        out.push_str("weights:       computed and stored\n");
    }
    if matches!(store.load_observability(key)?, Loaded::Hit(_)) {
        out.push_str("observability: already present\n");
    } else {
        let obs = ObservabilityMatrix::try_compute(c, &InputDistribution::Uniform, opts.backend())?;
        store.save_observability(key, &obs)?;
        out.push_str("observability: computed and stored\n");
    }
    if matches!(store.load_estimate(key)?, Loaded::Hit(_)) {
        out.push_str("estimator:     already present\n");
    } else {
        let est = PropagationEstimate::try_compute(c, &InputDistribution::Uniform)
            .map_err(CliError::Estimator)?;
        store.save_estimate(key, &est)?;
        out.push_str("estimator:     computed and stored\n");
    }
    Ok(out)
}

fn convert(c: &Circuit, opts: &Options) -> Result<String, CliError> {
    match opts.to.as_str() {
        "bench" => Ok(bench::write(c)),
        "blif" => Ok(blif::write(c)),
        "verilog" | "v" => Ok(verilog::write(c)),
        "dot" => Ok(dot::to_dot(c)),
        other => Err(CliError::Usage(format!(
            "unknown target format `{other}` (expected bench, blif, verilog, or dot)"
        ))),
    }
}

fn gen(args: &ParsedArgs) -> Result<String, CliError> {
    let name = args
        .target
        .as_deref()
        .ok_or_else(|| CliError::Usage("`gen` needs a suite circuit name".into()))?;
    let circuit = relogic_gen::suite::build(name).ok_or_else(|| {
        let names: Vec<&str> = relogic_gen::suite::entries()
            .iter()
            .map(|e| e.name)
            .collect();
        CliError::Usage(format!(
            "unknown suite circuit `{name}` (available: {})",
            names.join(", ")
        ))
    })?;
    Ok(bench::write(&circuit))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
t = NAND(a, b)
y = NOT(t)
";

    fn run_on_file(command: &str, extra: &[&str]) -> String {
        // One file per invocation: tests run concurrently, and
        // `fs::write` truncates before writing, so a shared path would
        // let one test read another's half-written netlist.
        static CALL: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = CALL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{command}-{n}.bench"));
        std::fs::write(&path, SMALL).unwrap();
        let mut argv: Vec<String> = vec![command.to_owned(), path.display().to_string()];
        argv.extend(extra.iter().map(|s| (*s).to_owned()));
        let parsed = ParsedArgs::parse(argv).unwrap();
        run(&parsed).unwrap()
    }

    #[test]
    fn stats_command() {
        let out = run_on_file("stats", &[]);
        assert!(out.contains("gates:            2"));
        assert!(out.contains("inputs:           2"));
    }

    #[test]
    fn analyze_command() {
        let out = run_on_file("analyze", &["--eps", "0.1", "--per-node"]);
        assert!(out.contains("delta ="));
        assert!(out.contains("p01 ="));
        // Two noisy gates in series: delta = 2·0.1·0.9 = 0.18.
        assert!(out.contains("0.180000"), "{out}");
    }

    #[test]
    fn sweep_command_emits_csv() {
        let out = run_on_file("sweep", &["--points", "3", "--max-eps", "0.5"]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "eps,y");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0.00000,0.000000"));
    }

    #[test]
    fn mc_command() {
        let out = run_on_file("mc", &["--patterns", "8192", "--eps", "0.1"]);
        assert!(out.contains("8192 patterns"));
        assert!(out.contains("any-output"));
    }

    #[test]
    fn mc_and_sweep_output_is_thread_count_invariant() {
        let mc1 = run_on_file(
            "mc",
            &["--patterns", "8192", "--eps", "0.1", "--threads", "1"],
        );
        let mc7 = run_on_file(
            "mc",
            &["--patterns", "8192", "--eps", "0.1", "--threads", "7"],
        );
        assert_eq!(mc1, mc7);
        let sw1 = run_on_file("sweep", &["--points", "5", "--threads", "1"]);
        let sw3 = run_on_file("sweep", &["--points", "5", "--threads", "3"]);
        assert_eq!(sw1, sw3);
    }

    #[test]
    fn rank_command() {
        let out = run_on_file("rank", &["--top", "1"]);
        assert!(out.contains("criticality ="));
        // The output inverter has observability 1 and must rank first.
        assert!(out.contains("observability = 1.0000"));
    }

    #[test]
    fn convert_roundtrip() {
        let blif_text = run_on_file("convert", &["--to", "blif"]);
        assert!(blif_text.contains(".model"));
        let dot_text = run_on_file("convert", &["--to", "dot"]);
        assert!(dot_text.contains("digraph"));
        let bench_text = run_on_file("convert", &["--to", "bench"]);
        assert!(bench_text.contains("NAND"));
        let verilog_text = run_on_file("convert", &["--to", "verilog"]);
        assert!(verilog_text.contains("module"));
        assert!(verilog_text.contains("nand"));
    }

    #[test]
    fn verilog_detection_by_extension() {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.v");
        std::fs::write(
            &path,
            "module t (a, y);\n input a;\n output y;\n not (y, a);\nendmodule\n",
        )
        .unwrap();
        let parsed = ParsedArgs::parse(["stats", path.display().to_string().as_str()]).unwrap();
        let out = run(&parsed).unwrap();
        assert!(out.contains("gates:            1"), "{out}");
    }

    #[test]
    fn gen_command() {
        let parsed = ParsedArgs::parse(["gen", "x2"]).unwrap();
        let out = run(&parsed).unwrap();
        assert!(out.contains("INPUT(pi0)"));
        let reparsed = bench::parse(&out).unwrap();
        assert_eq!(reparsed.gate_count(), 56);
        let bad = ParsedArgs::parse(["gen", "zzz"]).unwrap();
        assert!(matches!(run(&bad), Err(CliError::Usage(_))));
    }

    #[test]
    fn helpful_errors() {
        let parsed = ParsedArgs::parse(["frobnicate"]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert_eq!(err.exit_code(), 2);
        let parsed = ParsedArgs::parse(["analyze"]).unwrap();
        assert!(matches!(run(&parsed), Err(CliError::Usage(_))));
        let parsed = ParsedArgs::parse(["analyze", "/nonexistent/file.bench"]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
        assert_eq!(err.exit_code(), 3);
        assert!(
            err.to_string().contains("/nonexistent/file.bench"),
            "i/o errors must name the file: {err}"
        );
        let parsed = ParsedArgs::parse(["help"]).unwrap();
        assert!(run(&parsed).unwrap().contains("USAGE"));
    }

    #[test]
    fn parse_errors_carry_file_and_line() {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap();
        let parsed = ParsedArgs::parse(["stats", path.display().to_string().as_str()]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(matches!(err, CliError::Netlist { .. }));
        assert_eq!(err.exit_code(), 4);
        let msg = err.to_string();
        assert!(
            msg.contains("broken.bench:3:"),
            "expected `file:line:` prefix, got: {msg}"
        );
    }

    #[test]
    fn strict_rejects_out_of_policy_eps() {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("strict.bench");
        std::fs::write(&path, SMALL).unwrap();
        let p = path.display().to_string();
        // ε = 0.6 passes lenient validation…
        let parsed = ParsedArgs::parse(["analyze", p.as_str(), "--eps", "0.6"]).unwrap();
        assert!(run(&parsed).is_ok());
        // …but is rejected under --strict (von Neumann ε ≤ 0.5).
        let parsed =
            ParsedArgs::parse(["analyze", p.as_str(), "--eps", "0.6", "--strict"]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(matches!(err, CliError::Analysis(_)));
        assert_eq!(err.exit_code(), 5);
        assert!(err.to_string().contains("0.6"), "{err}");
    }

    #[test]
    fn diagnostics_flag_prints_counters() {
        let out = run_on_file("analyze", &["--eps", "0.1", "--diagnostics"]);
        assert!(out.contains("diagnostics:"), "{out}");
        assert!(out.contains("probability clamps:"), "{out}");
        let out = run_on_file("sweep", &["--points", "3", "--diagnostics"]);
        assert!(out.contains("# probability clamps:"), "{out}");
    }

    #[test]
    fn mc_zero_patterns_is_a_typed_error() {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mc0.bench");
        std::fs::write(&path, SMALL).unwrap();
        let p = path.display().to_string();
        let parsed = ParsedArgs::parse(["mc", p.as_str(), "--patterns", "0"]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(matches!(err, CliError::Sim(_)));
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("pattern budget"), "{err}");
    }

    #[test]
    fn observability_command() {
        let out = run_on_file("observability", &["--eps", "0.1", "--per-node"]);
        assert!(out.contains("delta ="), "{out}");
        assert!(out.contains("observability = 1.000000"), "{out}");
    }

    #[test]
    fn json_output_matches_server_schema() {
        let out = run_on_file("analyze", &["--eps", "0.1", "--json"]);
        let doc = relogic_serve::json::parse(out.trim()).unwrap();
        let points = doc.get("points").unwrap();
        let delta = points.as_array().unwrap()[0].get("delta").unwrap();
        let d = delta.as_array().unwrap()[0].as_f64().unwrap();
        assert!((d - 0.18).abs() < 1e-12, "{out}");
        assert_eq!(doc.get("cache").and_then(Json::as_str), Some("bypass"));

        let out = run_on_file("observability", &["--eps", "0.1", "--json"]);
        assert!(relogic_serve::json::parse(out.trim()).is_ok(), "{out}");

        let out = run_on_file("mc", &["--patterns", "4096", "--json"]);
        let doc = relogic_serve::json::parse(out.trim()).unwrap();
        assert_eq!(doc.get("patterns").and_then(Json::as_u64), Some(4096));
    }

    #[test]
    fn cli_json_is_bit_identical_to_server_result() {
        // The CLI and the daemon must expose the same schema and the same
        // numbers; a client can switch transports without re-validating.
        let cli = run_on_file("analyze", &["--eps", "0.1", "--json"]);
        let service = relogic_serve::Service::new(relogic_serve::ServiceConfig::default());
        let frame = format!(
            r#"{{"kind":"analyze","netlist":"{}","eps":0.1}}"#,
            SMALL.replace('\n', "\\n")
        );
        let reply = service.handle_line(&frame);
        let server_result = relogic_serve::json::parse(reply.trim())
            .unwrap()
            .get("result")
            .unwrap()
            .clone();
        let cli_result = relogic_serve::json::parse(cli.trim()).unwrap();
        assert_eq!(
            cli_result.encode().replace("\"cache\":\"bypass\"", ""),
            server_result.encode().replace("\"cache\":\"miss\"", "")
        );
    }

    #[test]
    fn analyze_engines_agree_bit_for_bit() {
        let tape = run_on_file(
            "analyze",
            &["--eps", "0.1", "--no-correlations", "--per-node"],
        );
        let graph = run_on_file(
            "analyze",
            &[
                "--eps",
                "0.1",
                "--no-correlations",
                "--per-node",
                "--engine",
                "graph",
            ],
        );
        assert_eq!(tape, graph, "tape and graph engines must print the same");
        let diag = run_on_file(
            "analyze",
            &["--eps", "0.1", "--no-correlations", "--diagnostics"],
        );
        assert!(diag.contains("engine: tape (compiled in"), "{diag}");
        let diag = run_on_file("analyze", &["--eps", "0.1", "--diagnostics"]);
        assert!(
            diag.contains("engine: graph"),
            "correlations force the graph engine: {diag}"
        );
    }

    #[test]
    fn mc_engine_flag_and_diagnostics() {
        let out = run_on_file("mc", &["--patterns", "4096", "--diagnostics"]);
        assert!(out.contains("engine: tape ("), "{out}");
        let out = run_on_file(
            "mc",
            &["--patterns", "4096", "--engine", "graph", "--diagnostics"],
        );
        assert!(out.contains("engine: graph"), "{out}");
    }

    #[test]
    fn partner_cap_flag_feeds_the_engine() {
        // On this tiny circuit every cap gives the same exact answer; the
        // test checks the flag plumbs through without an error.
        let capped = run_on_file("analyze", &["--eps", "0.1", "--partner-cap", "2"]);
        let uncapped = run_on_file("analyze", &["--eps", "0.1", "--partner-cap", "none"]);
        assert!(capped.contains("0.180000"), "{capped}");
        assert_eq!(capped, uncapped);
    }

    #[test]
    fn cache_dir_round_trip_and_provenance() {
        let dir = std::env::temp_dir().join(format!("relogic-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let netlist_dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&netlist_dir).unwrap();
        let path = netlist_dir.join("cached.bench");
        std::fs::write(&path, SMALL).unwrap();
        let p = path.display().to_string();
        let d = dir.display().to_string();

        // First run computes and stores; second hits and prints identically.
        let argv = [
            "analyze",
            p.as_str(),
            "--eps",
            "0.1",
            "--cache-dir",
            d.as_str(),
            "--diagnostics",
        ];
        let first = run(&ParsedArgs::parse(argv).unwrap()).unwrap();
        assert!(first.contains("disk miss"), "{first}");
        let second = run(&ParsedArgs::parse(argv).unwrap()).unwrap();
        assert!(second.contains("disk hit"), "{second}");
        assert_eq!(
            first.replace("disk miss (computed and stored)", "X"),
            second.replace("disk hit", "X"),
            "cached artifacts must not change the numbers"
        );
        // observability and rank share the same store.
        let obs_argv = [
            "observability",
            p.as_str(),
            "--cache-dir",
            d.as_str(),
            "--diagnostics",
        ];
        let obs_first = run(&ParsedArgs::parse(obs_argv).unwrap()).unwrap();
        assert!(obs_first.contains("disk miss"), "{obs_first}");
        let rank_argv = [
            "rank",
            p.as_str(),
            "--cache-dir",
            d.as_str(),
            "--diagnostics",
        ];
        let ranked = run(&ParsedArgs::parse(rank_argv).unwrap()).unwrap();
        assert!(ranked.contains("disk hit"), "{ranked}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_subcommands_manage_the_store_offline() {
        let dir = std::env::temp_dir().join(format!("relogic-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let netlist_dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&netlist_dir).unwrap();
        let path = netlist_dir.join("warmme.bench");
        std::fs::write(&path, SMALL).unwrap();
        let p = path.display().to_string();
        let d = dir.display().to_string();

        // --cache-dir is mandatory for the offline actions.
        let err = run(&ParsedArgs::parse(["cache", "ls"]).unwrap()).unwrap_err();
        assert!(err.to_string().contains("--cache-dir"), "{err}");
        let err = run(&ParsedArgs::parse(["cache", "zap", "--cache-dir", d.as_str()]).unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("unknown cache action"), "{err}");

        // warm → ls → verify, twice (idempotent).
        let warm =
            run(
                &ParsedArgs::parse(["cache", "warm", p.as_str(), "--cache-dir", d.as_str()])
                    .unwrap(),
            )
            .unwrap();
        assert!(warm.contains("computed and stored"), "{warm}");
        let warm2 =
            run(
                &ParsedArgs::parse(["cache", "warm", p.as_str(), "--cache-dir", d.as_str()])
                    .unwrap(),
            )
            .unwrap();
        assert!(warm2.contains("already present"), "{warm2}");
        let ls =
            run(&ParsedArgs::parse(["cache", "ls", "--cache-dir", d.as_str()]).unwrap()).unwrap();
        assert!(ls.contains("5 artifacts"), "{ls}");
        assert!(
            warm.contains("estimator:     computed and stored"),
            "{warm}"
        );
        assert!(warm2.contains("estimator:     already present"), "{warm2}");
        let verify =
            run(&ParsedArgs::parse(["cache", "verify", "--cache-dir", d.as_str()]).unwrap())
                .unwrap();
        assert!(verify.contains("all clean"), "{verify}");

        // Corrupt one artifact: verify must fail with exit code 7 and
        // quarantine, then gc sweeps the corpse.
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "wts"))
            .unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        let err = run(&ParsedArgs::parse(["cache", "verify", "--cache-dir", d.as_str()]).unwrap())
            .unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");
        assert_eq!(err.exit_code(), 7);
        assert!(err.to_string().contains("corrupt"), "{err}");
        let gc =
            run(&ParsedArgs::parse(["cache", "gc", "--cache-dir", d.as_str()]).unwrap()).unwrap();
        assert!(gc.contains("removed 1 files"), "{gc}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn estimate_command_exact_tier() {
        let out = run_on_file("estimate", &["--eps", "0.1"]);
        assert!(out.contains("tier: exact"), "{out}");
        // Two noisy gates in series: delta = ½(1 − (1 − 2·0.1)²) = 0.18.
        assert!(out.contains("0.180000"), "{out}");
    }

    #[test]
    fn estimate_budget_zero_falls_back_loudly() {
        let out = run_on_file(
            "estimate",
            &["--eps", "0.1", "--bdd-node-budget", "0", "--diagnostics"],
        );
        assert!(out.contains("tier: propagation"), "{out}");
        assert!(out.contains("disabled"), "{out}");
        assert!(out.contains("fallbacks 1"), "{out}");
        // The propagation closed form is exact on this fanout-free chain.
        assert!(out.contains("0.180000"), "{out}");
    }

    #[test]
    fn estimate_json_matches_server_schema() {
        let out = run_on_file("estimate", &["--eps", "0.1", "--json"]);
        let doc = relogic_serve::json::parse(out.trim()).unwrap();
        assert_eq!(doc.get("tier").and_then(Json::as_str), Some("exact"));
        let d = doc.get("delta").unwrap().as_array().unwrap()[0]
            .as_f64()
            .unwrap();
        assert!((d - 0.18).abs() < 1e-12, "{out}");
        assert_eq!(doc.get("cache").and_then(Json::as_str), Some("bypass"));
    }

    #[test]
    fn estimate_persists_artifacts_through_the_disk_cache() {
        let dir = std::env::temp_dir().join(format!("relogic-cli-est-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let netlist_dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&netlist_dir).unwrap();
        let path = netlist_dir.join("est-cache.bench");
        std::fs::write(&path, SMALL).unwrap();
        let p = path.display().to_string();
        let d = dir.display().to_string();
        // Budget 0 exercises the propagation tier, which persists its
        // estimate; the second run must read it back.
        let argv = [
            "estimate",
            p.as_str(),
            "--bdd-node-budget",
            "0",
            "--cache-dir",
            d.as_str(),
            "--diagnostics",
        ];
        let first = run(&ParsedArgs::parse(argv).unwrap()).unwrap();
        assert!(first.contains("estimator: computed and stored"), "{first}");
        let second = run(&ParsedArgs::parse(argv).unwrap()).unwrap();
        assert!(second.contains("estimator: disk hit"), "{second}");
        assert_eq!(
            first.replace("estimator: computed and stored", "X"),
            second.replace("estimator: disk hit", "X"),
            "cached estimator must not change the numbers"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harden_command_reports_a_front() {
        let out = run_on_file("harden", &["--eps", "0.1", "--area-budget", "20"]);
        assert!(out.contains("baseline:"), "{out}");
        assert!(out.contains("pareto front:"), "{out}");
        assert!(out.contains("protection order"), "{out}");
        let out = run_on_file("harden", &["--eps", "0.1", "--area-budget", "20", "--json"]);
        let doc = relogic_serve::json::parse(out.trim()).unwrap();
        assert!(
            !doc.get("front").unwrap().as_array().unwrap().is_empty(),
            "{out}"
        );
        assert_eq!(doc.get("cache").and_then(Json::as_str), Some("bypass"));
    }

    #[test]
    fn critical_eps_command_bisects_the_chain() {
        // delta(e) = 2e(1−e) on the two-gate chain, so delta = 0.18
        // exactly at e = 0.1; the bisection must land there.
        let out = run_on_file("critical-eps", &["--threshold", "0.18"]);
        assert!(out.contains("reaches 0.18 at eps = 0.100000000"), "{out}");
        let out = run_on_file("critical-eps", &["--threshold", "0.18", "--json"]);
        let doc = relogic_serve::json::parse(out.trim()).unwrap();
        assert_eq!(doc.get("crossed").and_then(Json::as_bool), Some(true));
        let critical = doc.get("critical").unwrap().as_f64().unwrap();
        assert!((critical - 0.1).abs() < 1e-8, "{out}");
    }

    #[test]
    fn estimator_errors_exit_with_code_8() {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("est-err.bench");
        std::fs::write(&path, SMALL).unwrap();
        let p = path.display().to_string();
        // A threshold at or above the delta = ½ ceiling is an estimator
        // parameter error, distinct from the analysis exit code.
        let parsed = ParsedArgs::parse(["critical-eps", p.as_str(), "--threshold", "0.9"]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(matches!(err, CliError::Estimator(_)), "{err}");
        assert_eq!(err.exit_code(), 8);
        assert!(err.to_string().contains("estimator error"), "{err}");
    }

    #[test]
    fn generous_deadline_output_is_bit_identical_to_undeadlined() {
        for (cmd, extra) in [
            ("analyze", &["--eps", "0.1"][..]),
            ("observability", &["--eps", "0.1"]),
            ("mc", &["--patterns", "4096"]),
            ("estimate", &["--eps", "0.1"]),
            ("critical-eps", &["--threshold", "0.18"]),
        ] {
            let mut with_deadline = extra.to_vec();
            with_deadline.extend(["--deadline-ms", "600000"]);
            assert_eq!(
                run_on_file(cmd, extra),
                run_on_file(cmd, &with_deadline),
                "{cmd}: a deadline that never fires must not change output"
            );
        }
    }

    #[test]
    fn expired_deadline_exits_with_code_9() {
        // An already-fired token maps to the deadline class at every
        // conversion seam the commands use.
        let c = relogic::Cancelled {
            after: std::time::Duration::from_millis(7),
            checked_at: "weights_build",
        };
        let err = CliError::from(relogic::RelogicError::Cancelled(c));
        assert!(matches!(err, CliError::Deadline(_)), "{err}");
        assert_eq!(err.exit_code(), 9);
        assert!(err.to_string().contains("deadline exceeded"), "{err}");
        let err = CliError::from(relogic_sim::SimError::Cancelled(c));
        assert_eq!(err.exit_code(), 9);
        let err = CliError::from(ServeError::DeadlineExceeded {
            after_ms: 7,
            site: "watchdog",
        });
        assert_eq!(err.exit_code(), 9);
        let err = estimator_error(relogic::RelogicError::Cancelled(c));
        assert_eq!(err.exit_code(), 9, "estimator seam must not remap to 8");
    }

    #[test]
    fn deadline_note_appears_under_diagnostics() {
        let out = run_on_file(
            "mc",
            &[
                "--patterns",
                "4096",
                "--deadline-ms",
                "600000",
                "--diagnostics",
            ],
        );
        assert!(out.contains("deadline: 600000 ms budget"), "{out}");
        let out = run_on_file("mc", &["--patterns", "4096", "--diagnostics"]);
        assert!(
            !out.contains("deadline:"),
            "no note without an armed deadline: {out}"
        );
    }

    #[test]
    fn serve_usage_errors() {
        let parsed = ParsedArgs::parse(["serve"]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(err.to_string().contains("--listen"), "{err}");
        let parsed = ParsedArgs::parse(["serve", "x.bench", "--unix", "/tmp/x.sock"]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(err.to_string().contains("no netlist argument"), "{err}");
    }

    #[test]
    fn blif_detection_by_extension() {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.blif");
        std::fs::write(
            &path,
            ".model t\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n",
        )
        .unwrap();
        let parsed = ParsedArgs::parse(["stats", path.display().to_string().as_str()]).unwrap();
        let out = run(&parsed).unwrap();
        assert!(out.contains("model:            t"));
    }
}
