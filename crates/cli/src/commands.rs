//! Command implementations.

use crate::options::{Options, ParsedArgs};
use relogic::{
    GateEps, InputDistribution, ObservabilityMatrix, SinglePass, SinglePassOptions, Weights,
};
use relogic_netlist::structure::{output_cone_sizes, CircuitStats, FanoutMap};
use relogic_netlist::{bench, blif, dot, verilog, Circuit};
use relogic_sim::MonteCarloConfig;
use std::error::Error;
use std::fmt;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown command/flag, missing value).
    Usage(String),
    /// Could not read the input file.
    Io(std::io::Error),
    /// The netlist failed to parse or validate.
    Netlist(relogic_netlist::NetlistError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<relogic_netlist::NetlistError> for CliError {
    fn from(e: relogic_netlist::NetlistError) -> Self {
        CliError::Netlist(e)
    }
}

/// Runs a parsed command line, returning the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] for bad usage, unreadable files, or malformed
/// netlists.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "help" | "--help" | "-h" => Ok(crate::USAGE.to_owned()),
        "stats" => stats(&load(args)?),
        "analyze" => analyze(&load(args)?, &args.options),
        "sweep" => sweep(&load(args)?, &args.options),
        "mc" => monte_carlo(&load(args)?, &args.options),
        "rank" => rank(&load(args)?, &args.options),
        "convert" => convert(&load(args)?, &args.options),
        "gen" => gen(args),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `relogic-cli help`)"
        ))),
    }
}

fn load(args: &ParsedArgs) -> Result<Circuit, CliError> {
    let path = args
        .target
        .as_deref()
        .ok_or_else(|| CliError::Usage(format!("`{}` needs a netlist file", args.command)))?;
    let text = std::fs::read_to_string(path)?;
    parse_netlist(path, &text)
}

/// Parses netlist text, choosing the format from the file name
/// (`*.bench` → ISCAS-85 bench, `*.v`/`*.verilog` → structural Verilog,
/// anything else → BLIF).
///
/// # Errors
///
/// Returns the parser's [`CliError::Netlist`] on malformed input.
pub fn parse_netlist(path: &str, text: &str) -> Result<Circuit, CliError> {
    if path.ends_with(".bench") {
        Ok(bench::parse(text)?)
    } else if path.ends_with(".v") || path.ends_with(".verilog") {
        Ok(verilog::parse(text)?)
    } else {
        Ok(blif::parse(text)?)
    }
}

fn stats(c: &Circuit) -> Result<String, CliError> {
    let s = CircuitStats::of(c);
    let fan = FanoutMap::build(c);
    let cones = output_cone_sizes(c);
    let mut out = String::new();
    out.push_str(&format!("model:            {}\n", c.name()));
    out.push_str(&format!("inputs:           {}\n", s.inputs));
    out.push_str(&format!("outputs:          {}\n", s.outputs));
    out.push_str(&format!("gates:            {}\n", s.gates));
    out.push_str(&format!("depth:            {}\n", s.depth));
    out.push_str(&format!("total out levels: {}\n", s.total_output_levels));
    out.push_str(&format!("max fanout:       {}\n", s.max_fanout));
    out.push_str(&format!("fanout stems:     {}\n", s.stems));
    out.push_str(&format!(
        "largest cone:     {} gates\n",
        cones.iter().max().copied().unwrap_or(0)
    ));
    out.push_str(&format!(
        "dangling nodes:   {}\n",
        fan.dangling_nodes().len()
    ));
    out.push_str("gate kinds:       ");
    let kinds: Vec<String> = s
        .kind_histogram
        .iter()
        .map(|(k, n)| format!("{k}:{n}"))
        .collect();
    out.push_str(&kinds.join(" "));
    out.push('\n');
    Ok(out)
}

fn analysis_weights(c: &Circuit, opts: &Options) -> Weights {
    Weights::compute(c, &InputDistribution::Uniform, opts.backend())
}

fn engine_options(opts: &Options) -> SinglePassOptions {
    if opts.no_correlations {
        SinglePassOptions::without_correlations()
    } else {
        SinglePassOptions::default()
    }
}

fn analyze(c: &Circuit, opts: &Options) -> Result<String, CliError> {
    let weights = analysis_weights(c, opts);
    let engine = SinglePass::new(c, &weights, engine_options(opts));
    let result = engine.run(&GateEps::uniform(c, opts.eps));
    let mut out = format!(
        "single-pass reliability at eps = {} ({} backend{})\n",
        opts.eps,
        match opts.backend {
            crate::options::BackendKind::Bdd => "bdd",
            crate::options::BackendKind::Sim => "sim",
        },
        if opts.no_correlations {
            ", correlations off"
        } else {
            ""
        }
    );
    for (k, o) in c.outputs().iter().enumerate() {
        out.push_str(&format!(
            "{:>24}  delta = {:.6}\n",
            o.name(),
            result.per_output()[k]
        ));
    }
    if opts.per_node {
        out.push_str("\nper-node error probabilities:\n");
        for (id, node) in c.iter() {
            if !node.kind().is_gate() {
                continue;
            }
            out.push_str(&format!(
                "{:>24}  p01 = {:.6}  p10 = {:.6}  delta = {:.6}\n",
                c.display_name(id),
                result.p01(id),
                result.p10(id),
                result.node_delta(id)
            ));
        }
    }
    Ok(out)
}

fn sweep(c: &Circuit, opts: &Options) -> Result<String, CliError> {
    let weights = analysis_weights(c, opts);
    let grid = relogic::sweep::epsilon_grid(opts.points, 0.0, opts.max_eps);
    let curves = relogic::sweep::sweep_single_pass_threads(
        c,
        &weights,
        engine_options(opts),
        &grid,
        opts.threads,
    );
    let mut out = String::from("eps");
    for o in c.outputs() {
        out.push_str(&format!(",{}", o.name()));
    }
    out.push('\n');
    for (i, &e) in grid.iter().enumerate() {
        out.push_str(&format!("{e:.5}"));
        for &d in &curves.delta[i] {
            out.push_str(&format!(",{d:.6}"));
        }
        out.push('\n');
    }
    Ok(out)
}

fn monte_carlo(c: &Circuit, opts: &Options) -> Result<String, CliError> {
    let eps = GateEps::uniform(c, opts.eps);
    let r = relogic_sim::estimate(
        c,
        eps.as_slice(),
        &MonteCarloConfig {
            patterns: opts.patterns,
            seed: opts.seed,
            threads: opts.threads,
            ..MonteCarloConfig::default()
        },
    );
    let mut out = format!(
        "monte carlo at eps = {} ({} patterns)\n",
        opts.eps,
        r.patterns()
    );
    for (k, o) in c.outputs().iter().enumerate() {
        out.push_str(&format!(
            "{:>24}  delta = {:.6}  (std err {:.6})\n",
            o.name(),
            r.per_output()[k],
            r.std_error(k)
        ));
    }
    out.push_str(&format!(
        "{:>24}  any-output = {:.6}\n",
        "*",
        r.any_output()
    ));
    Ok(out)
}

fn rank(c: &Circuit, opts: &Options) -> Result<String, CliError> {
    let obs = ObservabilityMatrix::compute(c, &InputDistribution::Uniform, opts.backend());
    let eps = GateEps::uniform(c, opts.eps);
    let mut rows: Vec<(relogic_netlist::NodeId, f64)> = c
        .node_ids()
        .filter(|&id| c.node(id).kind().is_gate())
        .map(|id| (id, eps.get(id) * obs.any(id)))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = format!(
        "top {} gates by soft-error criticality (eps * any-output observability):\n",
        opts.top.min(rows.len())
    );
    for (id, crit) in rows.into_iter().take(opts.top) {
        out.push_str(&format!(
            "{:>24}  {:6}  criticality = {:.6}  observability = {:.4}\n",
            c.display_name(id),
            c.node(id).kind().to_string(),
            crit,
            obs.any(id)
        ));
    }
    Ok(out)
}

fn convert(c: &Circuit, opts: &Options) -> Result<String, CliError> {
    match opts.to.as_str() {
        "bench" => Ok(bench::write(c)),
        "blif" => Ok(blif::write(c)),
        "verilog" | "v" => Ok(verilog::write(c)),
        "dot" => Ok(dot::to_dot(c)),
        other => Err(CliError::Usage(format!(
            "unknown target format `{other}` (expected bench, blif, verilog, or dot)"
        ))),
    }
}

fn gen(args: &ParsedArgs) -> Result<String, CliError> {
    let name = args
        .target
        .as_deref()
        .ok_or_else(|| CliError::Usage("`gen` needs a suite circuit name".into()))?;
    let circuit = relogic_gen::suite::build(name).ok_or_else(|| {
        let names: Vec<&str> = relogic_gen::suite::entries()
            .iter()
            .map(|e| e.name)
            .collect();
        CliError::Usage(format!(
            "unknown suite circuit `{name}` (available: {})",
            names.join(", ")
        ))
    })?;
    Ok(bench::write(&circuit))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
t = NAND(a, b)
y = NOT(t)
";

    fn run_on_file(command: &str, extra: &[&str]) -> String {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{command}.bench"));
        std::fs::write(&path, SMALL).unwrap();
        let mut argv: Vec<String> = vec![command.to_owned(), path.display().to_string()];
        argv.extend(extra.iter().map(|s| (*s).to_owned()));
        let parsed = ParsedArgs::parse(argv).unwrap();
        run(&parsed).unwrap()
    }

    #[test]
    fn stats_command() {
        let out = run_on_file("stats", &[]);
        assert!(out.contains("gates:            2"));
        assert!(out.contains("inputs:           2"));
    }

    #[test]
    fn analyze_command() {
        let out = run_on_file("analyze", &["--eps", "0.1", "--per-node"]);
        assert!(out.contains("delta ="));
        assert!(out.contains("p01 ="));
        // Two noisy gates in series: delta = 2·0.1·0.9 = 0.18.
        assert!(out.contains("0.180000"), "{out}");
    }

    #[test]
    fn sweep_command_emits_csv() {
        let out = run_on_file("sweep", &["--points", "3", "--max-eps", "0.5"]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "eps,y");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0.00000,0.000000"));
    }

    #[test]
    fn mc_command() {
        let out = run_on_file("mc", &["--patterns", "8192", "--eps", "0.1"]);
        assert!(out.contains("8192 patterns"));
        assert!(out.contains("any-output"));
    }

    #[test]
    fn mc_and_sweep_output_is_thread_count_invariant() {
        let mc1 = run_on_file(
            "mc",
            &["--patterns", "8192", "--eps", "0.1", "--threads", "1"],
        );
        let mc7 = run_on_file(
            "mc",
            &["--patterns", "8192", "--eps", "0.1", "--threads", "7"],
        );
        assert_eq!(mc1, mc7);
        let sw1 = run_on_file("sweep", &["--points", "5", "--threads", "1"]);
        let sw3 = run_on_file("sweep", &["--points", "5", "--threads", "3"]);
        assert_eq!(sw1, sw3);
    }

    #[test]
    fn rank_command() {
        let out = run_on_file("rank", &["--top", "1"]);
        assert!(out.contains("criticality ="));
        // The output inverter has observability 1 and must rank first.
        assert!(out.contains("observability = 1.0000"));
    }

    #[test]
    fn convert_roundtrip() {
        let blif_text = run_on_file("convert", &["--to", "blif"]);
        assert!(blif_text.contains(".model"));
        let dot_text = run_on_file("convert", &["--to", "dot"]);
        assert!(dot_text.contains("digraph"));
        let bench_text = run_on_file("convert", &["--to", "bench"]);
        assert!(bench_text.contains("NAND"));
        let verilog_text = run_on_file("convert", &["--to", "verilog"]);
        assert!(verilog_text.contains("module"));
        assert!(verilog_text.contains("nand"));
    }

    #[test]
    fn verilog_detection_by_extension() {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.v");
        std::fs::write(
            &path,
            "module t (a, y);\n input a;\n output y;\n not (y, a);\nendmodule\n",
        )
        .unwrap();
        let parsed = ParsedArgs::parse(["stats", path.display().to_string().as_str()]).unwrap();
        let out = run(&parsed).unwrap();
        assert!(out.contains("gates:            1"), "{out}");
    }

    #[test]
    fn gen_command() {
        let parsed = ParsedArgs::parse(["gen", "x2"]).unwrap();
        let out = run(&parsed).unwrap();
        assert!(out.contains("INPUT(pi0)"));
        let reparsed = bench::parse(&out).unwrap();
        assert_eq!(reparsed.gate_count(), 56);
        let bad = ParsedArgs::parse(["gen", "zzz"]).unwrap();
        assert!(matches!(run(&bad), Err(CliError::Usage(_))));
    }

    #[test]
    fn helpful_errors() {
        let parsed = ParsedArgs::parse(["frobnicate"]).unwrap();
        let err = run(&parsed).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        let parsed = ParsedArgs::parse(["analyze"]).unwrap();
        assert!(matches!(run(&parsed), Err(CliError::Usage(_))));
        let parsed = ParsedArgs::parse(["analyze", "/nonexistent/file.bench"]).unwrap();
        assert!(matches!(run(&parsed), Err(CliError::Io(_))));
        let parsed = ParsedArgs::parse(["help"]).unwrap();
        assert!(run(&parsed).unwrap().contains("USAGE"));
    }

    #[test]
    fn blif_detection_by_extension() {
        let dir = std::env::temp_dir().join("relogic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.blif");
        std::fs::write(
            &path,
            ".model t\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n",
        )
        .unwrap();
        let parsed = ParsedArgs::parse(["stats", path.display().to_string().as_str()]).unwrap();
        let out = run(&parsed).unwrap();
        assert!(out.contains("model:            t"));
    }
}
