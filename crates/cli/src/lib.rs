//! Implementation of the `relogic-cli` command-line tool.
//!
//! Everything is in the library (commands take parsed options and return
//! strings) so the test suite can drive the tool without spawning
//! processes; `main.rs` is a thin shell.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod commands;
mod options;

pub use commands::{run, CliError};
pub use options::{Options, ParsedArgs};

/// The usage text printed by `relogic-cli help`.
pub const USAGE: &str = "\
relogic-cli — reliability analysis of logic circuits (DATE 2007 algorithms)

USAGE:
    relogic-cli <COMMAND> [ARGS] [OPTIONS]

COMMANDS:
    stats <FILE>            structural statistics of a netlist
    analyze <FILE>          per-output error probabilities (single-pass engine)
    observability <FILE>    closed-form observability bound per output
    sweep <FILE>            delta(eps) curves over an epsilon grid (CSV)
    mc <FILE>               Monte Carlo fault-injection reference
    rank <FILE>             gates ranked by soft-error criticality (eps * observability)
    convert <FILE>          convert between bench / blif / dot
    gen <NAME>              emit a benchmark-suite analogue as .bench text
    serve                   run the relogic-serve analysis daemon
    cache <ACTION>          manage the on-disk artifact store (offline):
                            ls | verify | gc | warm <FILE>, with --cache-dir
    help                    this message

OPTIONS:
    --eps <F>               uniform gate failure probability     [default: 0.05]
    --backend <bdd|sim>     statistics backend                   [default: bdd]
    --patterns <N>          patterns for sim backend / mc        [default: 65536]
    --seed <N>              RNG seed                             [default: 1]
    --points <N>            epsilon grid points for sweep        [default: 20]
    --max-eps <F>           epsilon grid upper bound             [default: 0.5]
    --engine <tape|graph>   execution engine for analyze/mc      [default: tape]
                            (tape = compiled instruction tape; graph = original
                            graph walker; identical numbers, tape is faster.
                            analyze uses the graph engine whenever the
                            correlation correction or --strict is in effect)
    --no-correlations       disable reconvergent-fanout correction
    --per-node              also print per-node error probabilities (analyze)
    --diagnostics           print clamp/fallback counters (analyze, sweep)
    --strict                reject eps > 0.5 and non-finite intermediates
                            instead of degrading gracefully
    --to <bench|blif|verilog|dot>  target format for convert     [default: blif]
    --top <N>               rows to print for rank               [default: 10]
    --threads <N>           worker threads for mc/sweep/serve, 0 = auto-detect
                            (results are identical for every N)  [default: 0]
    --partner-cap <N|none>  cap the correlation partners tracked per node
                            (accuracy/time dial; `none` lifts the cap)
    --json                  emit machine-readable JSON (analyze, observability,
                            mc) using the relogic-serve result schema
    --cache-dir <DIR>       versioned, checksummed on-disk artifact store:
                            analyze/observability/rank read and write it,
                            serve persists its cache across restarts in it,
                            and `cache ls|verify|gc|warm` manage it offline.
                            Corrupt files are quarantined (*.corrupt) and
                            recomputed — never served.

SERVE OPTIONS:
    --listen <ADDR>         TCP listen address (e.g. 127.0.0.1:7171)
    --unix <PATH>           Unix-socket path
    --cache-bytes <N>       artifact-cache byte budget      [default: 268435456]
    --timeout-ms <N>        per-request timeout, 0 disables [default: 10000]
    --max-inflight <N>      cap concurrently executing analysis requests;
                            excess get `overloaded` + retry_after_ms
                            (0 = unlimited)                 [default: 0]
    --chaos-profile <P>     deterministic fault injection, P = NAME[:SEED]
                            with NAME in worker|io|cache|all (builds with
                            the `chaos` feature only)

FILES:
    *.bench parses as ISCAS-85 bench, *.v/*.verilog as structural Verilog,
    everything else as BLIF.

EXIT CODES:
    0 success    2 usage error    3 i/o error    4 netlist error
    5 analysis error    6 simulation error    7 store error/corruption

EXAMPLES:
    relogic-cli gen b9 > b9.bench
    relogic-cli analyze b9.bench --eps 0.1
    relogic-cli sweep b9.bench --points 50 --threads 4 > curves.csv
    relogic-cli mc b9.bench --patterns 1000000 --threads 8
    relogic-cli rank b9.bench --top 5
    relogic-cli convert b9.bench --to dot | dot -Tsvg > b9.svg
    relogic-cli analyze b9.bench --eps 0.1 --json
    relogic-cli serve --unix /tmp/relogic.sock --threads 8
    relogic-cli serve --unix /tmp/relogic.sock --cache-dir /var/cache/relogic
    relogic-cli cache warm b9.bench --cache-dir /var/cache/relogic
    relogic-cli cache verify --cache-dir /var/cache/relogic
";
