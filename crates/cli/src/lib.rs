//! Implementation of the `relogic-cli` command-line tool.
//!
//! Everything is in the library (commands take parsed options and return
//! strings) so the test suite can drive the tool without spawning
//! processes; `main.rs` is a thin shell.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod commands;
mod options;

pub use commands::{run, CliError};
pub use options::{Options, ParsedArgs};

/// The usage text printed by `relogic-cli help`.
pub const USAGE: &str = "\
relogic-cli — reliability analysis of logic circuits (DATE 2007 algorithms)

USAGE:
    relogic-cli <COMMAND> [ARGS] [OPTIONS]

COMMANDS:
    stats <FILE>            structural statistics of a netlist
    analyze <FILE>          per-output error probabilities (single-pass engine)
    observability <FILE>    closed-form observability bound per output
    sweep <FILE>            delta(eps) curves over an epsilon grid (CSV)
    mc <FILE>               Monte Carlo fault-injection reference
    rank <FILE>             gates ranked by soft-error criticality (eps * observability)
    estimate <FILE>         hybrid SER estimate: exact BDD under a live-node
                            budget, auto-escalating to the propagation
                            estimator and Monte Carlo refinement
    harden <FILE>           selective-TMR hardening sweep under an area
                            budget (reliability-per-area Pareto front)
    critical-eps <FILE>     bisect for the smallest eps where delta
                            reaches --threshold (deterministic, on the
                            compiled sweep tape)
    convert <FILE>          convert between bench / blif / dot
    gen <NAME>              emit a benchmark-suite analogue as .bench text
    serve                   run the relogic-serve analysis daemon
    cache <ACTION>          manage the on-disk artifact store (offline):
                            ls | verify | gc | warm <FILE>, with --cache-dir
    help                    this message

OPTIONS:
    --eps <F>               uniform gate failure probability     [default: 0.05]
    --backend <bdd|sim>     statistics backend                   [default: bdd]
    --patterns <N>          patterns for sim backend / mc        [default: 65536]
    --seed <N>              RNG seed                             [default: 1]
    --points <N>            epsilon grid points for sweep        [default: 20]
    --max-eps <F>           epsilon grid upper bound             [default: 0.5]
    --engine <tape|graph>   execution engine for analyze/mc      [default: tape]
                            (tape = compiled instruction tape; graph = original
                            graph walker; identical numbers, tape is faster.
                            analyze uses the graph engine whenever the
                            correlation correction or --strict is in effect)
    --no-correlations       disable reconvergent-fanout correction
    --per-node              also print per-node error probabilities (analyze)
    --diagnostics           print clamp/fallback counters (analyze, sweep)
    --strict                reject eps > 0.5 and non-finite intermediates
                            instead of degrading gracefully
    --to <bench|blif|verilog|dot>  target format for convert     [default: blif]
    --top <N>               rows to print for rank               [default: 10]
    --threads <N>           worker threads for mc/sweep/serve, 0 = auto-detect
                            (results are identical for every N)  [default: 0]
    --partner-cap <N|none>  cap the correlation partners tracked per node
                            (accuracy/time dial; `none` lifts the cap)
    --json                  emit machine-readable JSON (analyze, observability,
                            mc, estimate, harden, critical-eps) using the
                            relogic-serve result schema
    --bdd-node-budget <N>   BDD live-node budget for the estimate exact
                            tier; 0 disables the exact tier
                            (fallbacks are counted, never silent)
                                                          [default: 2000000]
    --area-budget <F>       max gate-count ratio for harden  [default: 2.0]
    --threshold <F>         delta threshold for critical-eps [default: 0.1]
    --metric <max|mean>     delta summary for critical-eps   [default: max]
    --max-steps <N>         step cap for harden prefixes / critical-eps
                            bisection (0 = command default)  [default: 0]
    --deadline-ms <N>       wall-clock budget for analyze, observability,
                            mc, rank, estimate, harden, and critical-eps
                            (0 = none). An exceeded deadline stops the
                            work at its next cooperative check and exits
                            with code 9 — never a partial result. A run
                            that completes under its deadline prints
                            bit-identical output to an undeadlined run.
    --cache-dir <DIR>       versioned, checksummed on-disk artifact store:
                            analyze/observability/rank read and write it,
                            serve persists its cache across restarts in it,
                            and `cache ls|verify|gc|warm` manage it offline.
                            Corrupt files are quarantined (*.corrupt) and
                            recomputed — never served.

SERVE OPTIONS:
    --listen <ADDR>         TCP listen address (e.g. 127.0.0.1:7171)
    --unix <PATH>           Unix-socket path
    --cache-bytes <N>       artifact-cache byte budget      [default: 268435456]
    --timeout-ms <N>        per-request timeout, 0 disables [default: 10000]
                            (also caps each request's own `deadline_ms`;
                            a bound deadline answers `deadline_exceeded`)
    --max-inflight <N>      cap concurrently executing analysis requests;
                            excess get `overloaded` + retry_after_ms
                            (0 = unlimited)                 [default: 0]
    --chaos-profile <P>     deterministic fault injection, P = NAME[:SEED]
                            with NAME in worker|io|cache|all (builds with
                            the `chaos` feature only)

FILES:
    *.bench parses as ISCAS-85 bench, *.v/*.verilog as structural Verilog,
    everything else as BLIF.

EXIT CODES:
    0 success    2 usage error    3 i/o error    4 netlist error
    5 analysis error    6 simulation error    7 store error/corruption
    8 estimator error (estimate / harden / critical-eps)
    9 deadline exceeded (--deadline-ms expired before completion)

EXAMPLES:
    relogic-cli gen b9 > b9.bench
    relogic-cli analyze b9.bench --eps 0.1
    relogic-cli sweep b9.bench --points 50 --threads 4 > curves.csv
    relogic-cli mc b9.bench --patterns 1000000 --threads 8
    relogic-cli rank b9.bench --top 5
    relogic-cli estimate b9.bench --eps 0.05 --bdd-node-budget 100000
    relogic-cli harden b9.bench --area-budget 2.5 --top 8
    relogic-cli critical-eps b9.bench --threshold 0.2 --metric mean
    relogic-cli convert b9.bench --to dot | dot -Tsvg > b9.svg
    relogic-cli analyze b9.bench --eps 0.1 --json
    relogic-cli serve --unix /tmp/relogic.sock --threads 8
    relogic-cli serve --unix /tmp/relogic.sock --cache-dir /var/cache/relogic
    relogic-cli cache warm b9.bench --cache-dir /var/cache/relogic
    relogic-cli cache verify --cache-dir /var/cache/relogic
";
