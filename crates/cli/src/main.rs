//! `relogic-cli`: reliability analysis of logic circuits from the shell.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match relogic_cli::ParsedArgs::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", relogic_cli::USAGE);
            std::process::exit(e.exit_code());
        }
    };
    match relogic_cli::run(&parsed) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
