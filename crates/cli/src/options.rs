//! Command-line option parsing (dependency-free).

use crate::commands::CliError;
use relogic::Backend;
use relogic_estimate::CriticalMetric;

/// Raw command line split into command, positional argument, and options.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand name.
    pub command: String,
    /// The positional argument (netlist path or suite name), if present.
    pub target: Option<String>,
    /// Parsed flag values.
    pub options: Options,
}

/// Typed option values with their defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Uniform gate failure probability.
    pub eps: f64,
    /// Backend selector (`bdd` exact or `sim` sampled).
    pub backend: BackendKind,
    /// Pattern budget for sampled statistics and Monte Carlo.
    pub patterns: u64,
    /// RNG seed.
    pub seed: u64,
    /// ε grid points for `sweep`.
    pub points: usize,
    /// ε grid upper bound for `sweep`.
    pub max_eps: f64,
    /// Disable the §4.1 correlation correction.
    pub no_correlations: bool,
    /// Print per-node detail in `analyze`.
    pub per_node: bool,
    /// Target format for `convert`.
    pub to: String,
    /// Row limit for `rank`.
    pub top: usize,
    /// Worker threads for `mc` and `sweep` (`0` = auto-detect).
    pub threads: usize,
    /// Execution engine for `analyze` and `mc`: the compiled instruction
    /// tape (default) or the original graph walker.
    pub engine: EngineKind,
    /// Print numerical diagnostics (clamp counts, fallbacks) after analysis.
    pub diagnostics: bool,
    /// Enforce the strict numeric policy (ε ≤ 0.5, no silent degradation).
    pub strict: bool,
    /// Emit machine-readable JSON (same schema as `relogic-serve`).
    pub json: bool,
    /// Override for the §4.1 correlation partner cap: unset keeps the
    /// engine default, `Some(None)` disables the cap (`--partner-cap
    /// none`), `Some(Some(n))` caps at `n` partners.
    pub partner_cap: Option<Option<usize>>,
    /// TCP listen address for `serve` (e.g. `127.0.0.1:7171`).
    pub listen: Option<String>,
    /// Unix-socket path for `serve`.
    pub unix: Option<String>,
    /// Artifact-cache byte budget for `serve`.
    pub cache_bytes: usize,
    /// Per-request timeout for `serve`, in milliseconds (0 = no timeout).
    pub timeout_ms: u64,
    /// Admission-control cap on concurrently executing analysis requests
    /// for `serve` (0 = unlimited); excess requests are answered with a
    /// typed `overloaded` error carrying a retry hint.
    pub max_inflight: usize,
    /// On-disk artifact store directory: `serve` persists compiled
    /// artifacts across restarts, the one-shot analysis commands
    /// (`analyze`, `observability`, `rank`) read/write it, and the
    /// `cache` subcommand manages it offline.
    pub cache_dir: Option<String>,
    /// Chaos fault-injection profile for `serve` (`NAME[:SEED]`). Only
    /// compiled in with the `chaos` feature.
    #[cfg(feature = "chaos")]
    pub chaos_profile: Option<String>,
    /// BDD live-node budget for the `estimate` exact tier (0 disables
    /// the exact tier and goes straight to propagation).
    pub bdd_node_budget: usize,
    /// Gate-count-ratio budget for `harden` (baseline = 1.0).
    pub area_budget: f64,
    /// δ threshold for `critical-eps`.
    pub threshold: f64,
    /// δ summary the `critical-eps` threshold applies to.
    pub metric: CriticalMetric,
    /// Step cap for `harden` prefixes / `critical-eps` bisection
    /// (0 = the command's default).
    pub max_steps: usize,
    /// Wall-clock budget for the analysis commands, in milliseconds
    /// (0 = no deadline). A run that exceeds it stops at the next
    /// cooperative check and exits with code 9 — never a partial result.
    pub deadline_ms: u64,
}

/// Which statistics backend the user asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Exact symbolic backend.
    Bdd,
    /// Random-pattern sampling backend.
    Sim,
}

/// Which execution engine runs the analysis (`--engine`).
///
/// `Tape` lowers the circuit to a flat SoA instruction tape before
/// evaluating (the fast path); `Graph` walks the original node graph.
/// Both produce the same numbers — `graph` exists as an escape hatch for
/// cross-checking and for features the tape does not carry (the §4.1
/// correlation correction runs on the graph engine regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Compiled instruction-tape engine (default).
    Tape,
    /// Original graph-walking engine.
    Graph,
}

impl Options {
    /// The `relogic` backend implied by these options.
    #[must_use]
    pub fn backend(&self) -> Backend {
        match self.backend {
            BackendKind::Bdd => Backend::Bdd,
            BackendKind::Sim => Backend::Simulation {
                patterns: self.patterns,
                seed: self.seed,
            },
        }
    }
}

impl Default for Options {
    fn default() -> Self {
        Options {
            eps: 0.05,
            backend: BackendKind::Bdd,
            patterns: 65_536,
            seed: 1,
            points: 20,
            max_eps: 0.5,
            no_correlations: false,
            per_node: false,
            to: "blif".to_owned(),
            top: 10,
            threads: 0,
            engine: EngineKind::Tape,
            diagnostics: false,
            strict: false,
            json: false,
            partner_cap: None,
            listen: None,
            unix: None,
            cache_bytes: 256 << 20,
            timeout_ms: 10_000,
            max_inflight: 0,
            cache_dir: None,
            #[cfg(feature = "chaos")]
            chaos_profile: None,
            bdd_node_budget: relogic_estimate::DEFAULT_BDD_NODE_BUDGET,
            area_budget: 2.0,
            threshold: 0.1,
            metric: CriticalMetric::Max,
            max_steps: 0,
            deadline_ms: 0,
        }
    }
}

impl ParsedArgs {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags, missing or malformed
    /// values, or a missing command.
    pub fn parse<I, S>(args: I) -> Result<ParsedArgs, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = args.into_iter().map(Into::into);
        let mut command = args
            .next()
            .ok_or_else(|| CliError::Usage("missing command (try `relogic-cli help`)".into()))?;
        // `cache` takes an action word (`cache verify ...`); fold it into
        // the command so the positional slot stays free for `warm`'s
        // netlist file.
        if command == "cache" {
            let action = args.next().ok_or_else(|| {
                CliError::Usage("`cache` needs an action: ls, verify, gc, or warm".into())
            })?;
            command = format!("cache {action}");
        }
        let mut target = None;
        let mut options = Options::default();

        let mut iter = args;
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--eps" => options.eps = parse_value(&arg, iter.next())?,
                "--patterns" => options.patterns = parse_value(&arg, iter.next())?,
                "--seed" => options.seed = parse_value(&arg, iter.next())?,
                "--points" => options.points = parse_value(&arg, iter.next())?,
                "--max-eps" => options.max_eps = parse_value(&arg, iter.next())?,
                "--top" => options.top = parse_value(&arg, iter.next())?,
                "--threads" => options.threads = parse_value(&arg, iter.next())?,
                "--backend" => {
                    let v: String = parse_value(&arg, iter.next())?;
                    options.backend = match v.as_str() {
                        "bdd" => BackendKind::Bdd,
                        "sim" => BackendKind::Sim,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown backend `{other}` (expected bdd or sim)"
                            )))
                        }
                    };
                }
                "--engine" => {
                    let v: String = parse_value(&arg, iter.next())?;
                    options.engine = match v.as_str() {
                        "tape" => EngineKind::Tape,
                        "graph" => EngineKind::Graph,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown engine `{other}` (expected tape or graph)"
                            )))
                        }
                    };
                }
                "--to" => options.to = parse_value(&arg, iter.next())?,
                "--listen" => options.listen = Some(parse_value(&arg, iter.next())?),
                "--unix" => options.unix = Some(parse_value(&arg, iter.next())?),
                "--cache-bytes" => options.cache_bytes = parse_value(&arg, iter.next())?,
                "--cache-dir" => options.cache_dir = Some(parse_value(&arg, iter.next())?),
                "--timeout-ms" => options.timeout_ms = parse_value(&arg, iter.next())?,
                "--max-inflight" => options.max_inflight = parse_value(&arg, iter.next())?,
                // Without the `chaos` feature this arm does not exist, so
                // the flag falls through to `unknown option` — production
                // builds cannot even spell fault injection.
                #[cfg(feature = "chaos")]
                "--chaos-profile" => {
                    options.chaos_profile = Some(parse_value(&arg, iter.next())?);
                }
                "--partner-cap" => {
                    let v: String = parse_value(&arg, iter.next())?;
                    options.partner_cap = Some(if v == "none" {
                        None
                    } else {
                        Some(v.parse().map_err(|_| {
                            CliError::Usage(format!(
                                "invalid value `{v}` for --partner-cap (expected a count or `none`)"
                            ))
                        })?)
                    });
                }
                "--bdd-node-budget" => options.bdd_node_budget = parse_value(&arg, iter.next())?,
                "--deadline-ms" => options.deadline_ms = parse_value(&arg, iter.next())?,
                "--area-budget" => options.area_budget = parse_value(&arg, iter.next())?,
                "--threshold" => options.threshold = parse_value(&arg, iter.next())?,
                "--max-steps" => options.max_steps = parse_value(&arg, iter.next())?,
                "--metric" => {
                    let v: String = parse_value(&arg, iter.next())?;
                    options.metric = CriticalMetric::parse(&v).ok_or_else(|| {
                        CliError::Usage(format!("unknown metric `{v}` (expected max or mean)"))
                    })?;
                }
                "--json" => options.json = true,
                "--no-correlations" => options.no_correlations = true,
                "--per-node" => options.per_node = true,
                "--diagnostics" => options.diagnostics = true,
                "--strict" => options.strict = true,
                flag if flag.starts_with("--") => {
                    return Err(CliError::Usage(format!("unknown option `{flag}`")))
                }
                positional => {
                    if target.is_some() {
                        return Err(CliError::Usage(format!(
                            "unexpected extra argument `{positional}`"
                        )));
                    }
                    target = Some(positional.to_owned());
                }
            }
        }
        if !(0.0..=1.0).contains(&options.eps) {
            return Err(CliError::Usage(format!(
                "--eps {} out of [0, 1]",
                options.eps
            )));
        }
        if options.threads > 1024 {
            return Err(CliError::Usage(format!(
                "--threads {} is implausibly large (use 0 to auto-detect)",
                options.threads
            )));
        }
        Ok(ParsedArgs {
            command,
            target,
            options,
        })
    }
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, CliError> {
    let v = value.ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| CliError::Usage(format!("invalid value `{v}` for {flag}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_target_and_flags() {
        let p = ParsedArgs::parse(["analyze", "c.bench", "--eps", "0.1", "--per-node"]).unwrap();
        assert_eq!(p.command, "analyze");
        assert_eq!(p.target.as_deref(), Some("c.bench"));
        assert_eq!(p.options.eps, 0.1);
        assert!(p.options.per_node);
        assert!(!p.options.no_correlations);
    }

    #[test]
    fn defaults_apply() {
        let p = ParsedArgs::parse(["stats", "x.blif"]).unwrap();
        assert_eq!(p.options.eps, 0.05);
        assert_eq!(p.options.patterns, 65_536);
        assert_eq!(p.options.backend, BackendKind::Bdd);
    }

    #[test]
    fn backend_selection() {
        let p = ParsedArgs::parse(["analyze", "x.bench", "--backend", "sim"]).unwrap();
        assert_eq!(p.options.backend, BackendKind::Sim);
        assert!(matches!(
            p.options.backend(),
            relogic::Backend::Simulation { .. }
        ));
        assert!(ParsedArgs::parse(["analyze", "x", "--backend", "magic"]).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(ParsedArgs::parse(["analyze", "--frobnicate"]).is_err());
        assert!(ParsedArgs::parse(["analyze", "--eps"]).is_err());
        assert!(ParsedArgs::parse(["analyze", "--eps", "banana"]).is_err());
        assert!(ParsedArgs::parse(["analyze", "--eps", "1.5"]).is_err());
        assert!(ParsedArgs::parse(["analyze", "a", "b"]).is_err());
        assert!(ParsedArgs::parse(Vec::<String>::new()).is_err());
    }

    #[test]
    fn diagnostics_and_strict_flags() {
        let p = ParsedArgs::parse(["analyze", "x.bench"]).unwrap();
        assert!(!p.options.diagnostics);
        assert!(!p.options.strict);
        let p = ParsedArgs::parse(["analyze", "x.bench", "--diagnostics", "--strict"]).unwrap();
        assert!(p.options.diagnostics);
        assert!(p.options.strict);
    }

    #[test]
    fn partner_cap_option() {
        let p = ParsedArgs::parse(["analyze", "x.bench"]).unwrap();
        assert_eq!(p.options.partner_cap, None, "default: engine decides");
        let p = ParsedArgs::parse(["analyze", "x.bench", "--partner-cap", "16"]).unwrap();
        assert_eq!(p.options.partner_cap, Some(Some(16)));
        let p = ParsedArgs::parse(["analyze", "x.bench", "--partner-cap", "none"]).unwrap();
        assert_eq!(p.options.partner_cap, Some(None));
        assert!(ParsedArgs::parse(["analyze", "x.bench", "--partner-cap", "soon"]).is_err());
        assert!(ParsedArgs::parse(["analyze", "x.bench", "--partner-cap"]).is_err());
    }

    #[test]
    fn json_and_serve_options() {
        let p = ParsedArgs::parse(["analyze", "x.bench", "--json"]).unwrap();
        assert!(p.options.json);
        let p = ParsedArgs::parse([
            "serve",
            "--listen",
            "127.0.0.1:7171",
            "--unix",
            "/tmp/relogic.sock",
            "--cache-bytes",
            "1048576",
            "--timeout-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(p.options.listen.as_deref(), Some("127.0.0.1:7171"));
        assert_eq!(p.options.unix.as_deref(), Some("/tmp/relogic.sock"));
        assert_eq!(p.options.cache_bytes, 1_048_576);
        assert_eq!(p.options.timeout_ms, 500);
    }

    #[test]
    fn max_inflight_option() {
        let p = ParsedArgs::parse(["serve", "--unix", "/tmp/x.sock"]).unwrap();
        assert_eq!(p.options.max_inflight, 0, "default is unlimited");
        let p =
            ParsedArgs::parse(["serve", "--unix", "/tmp/x.sock", "--max-inflight", "8"]).unwrap();
        assert_eq!(p.options.max_inflight, 8);
        assert!(ParsedArgs::parse(["serve", "--max-inflight", "lots"]).is_err());
    }

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn chaos_profile_flag_is_unknown_without_the_feature() {
        let err = ParsedArgs::parse(["serve", "--unix", "/tmp/x.sock", "--chaos-profile", "io"])
            .unwrap_err();
        assert!(err.to_string().contains("unknown option"), "{err}");
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_profile_flag_parses_with_the_feature() {
        let p = ParsedArgs::parse(["serve", "--unix", "/tmp/x.sock", "--chaos-profile", "io:7"])
            .unwrap();
        assert_eq!(p.options.chaos_profile.as_deref(), Some("io:7"));
    }

    #[test]
    fn engine_selection() {
        let p = ParsedArgs::parse(["mc", "x.bench"]).unwrap();
        assert_eq!(p.options.engine, EngineKind::Tape, "tape is the default");
        let p = ParsedArgs::parse(["mc", "x.bench", "--engine", "graph"]).unwrap();
        assert_eq!(p.options.engine, EngineKind::Graph);
        let p = ParsedArgs::parse(["analyze", "x.bench", "--engine", "tape"]).unwrap();
        assert_eq!(p.options.engine, EngineKind::Tape);
        assert!(ParsedArgs::parse(["mc", "x.bench", "--engine", "warp"]).is_err());
        assert!(ParsedArgs::parse(["mc", "x.bench", "--engine"]).is_err());
    }

    #[test]
    fn cache_dir_and_cache_command() {
        let p = ParsedArgs::parse(["serve", "--unix", "/tmp/x.sock"]).unwrap();
        assert_eq!(p.options.cache_dir, None, "default is in-memory only");
        let p = ParsedArgs::parse([
            "serve",
            "--unix",
            "/tmp/x.sock",
            "--cache-dir",
            "/tmp/store",
        ])
        .unwrap();
        assert_eq!(p.options.cache_dir.as_deref(), Some("/tmp/store"));
        // The cache action folds into the command; `warm` keeps the
        // positional slot for its netlist file.
        let p = ParsedArgs::parse(["cache", "verify", "--cache-dir", "/tmp/store"]).unwrap();
        assert_eq!(p.command, "cache verify");
        assert_eq!(p.target, None);
        let p =
            ParsedArgs::parse(["cache", "warm", "c.bench", "--cache-dir", "/tmp/store"]).unwrap();
        assert_eq!(p.command, "cache warm");
        assert_eq!(p.target.as_deref(), Some("c.bench"));
        assert!(ParsedArgs::parse(["cache"]).is_err());
    }

    #[test]
    fn estimator_options() {
        let p = ParsedArgs::parse(["estimate", "x.bench"]).unwrap();
        assert_eq!(
            p.options.bdd_node_budget,
            relogic_estimate::DEFAULT_BDD_NODE_BUDGET
        );
        assert_eq!(p.options.area_budget, 2.0);
        assert_eq!(p.options.threshold, 0.1);
        assert_eq!(p.options.metric, CriticalMetric::Max);
        assert_eq!(p.options.max_steps, 0);
        let p = ParsedArgs::parse([
            "critical-eps",
            "x.bench",
            "--bdd-node-budget",
            "0",
            "--area-budget",
            "3.5",
            "--threshold",
            "0.25",
            "--metric",
            "mean",
            "--max-steps",
            "40",
        ])
        .unwrap();
        assert_eq!(p.options.bdd_node_budget, 0);
        assert_eq!(p.options.area_budget, 3.5);
        assert_eq!(p.options.threshold, 0.25);
        assert_eq!(p.options.metric, CriticalMetric::Mean);
        assert_eq!(p.options.max_steps, 40);
        let err = ParsedArgs::parse(["critical-eps", "x.bench", "--metric", "median"]).unwrap_err();
        assert!(err.to_string().contains("unknown metric"), "{err}");
        assert!(ParsedArgs::parse(["estimate", "x.bench", "--bdd-node-budget"]).is_err());
    }

    #[test]
    fn deadline_option() {
        let p = ParsedArgs::parse(["analyze", "x.bench"]).unwrap();
        assert_eq!(p.options.deadline_ms, 0, "default is no deadline");
        let p = ParsedArgs::parse(["observability", "x.bench", "--deadline-ms", "500"]).unwrap();
        assert_eq!(p.options.deadline_ms, 500);
        assert!(ParsedArgs::parse(["analyze", "x.bench", "--deadline-ms", "soon"]).is_err());
        assert!(ParsedArgs::parse(["analyze", "x.bench", "--deadline-ms"]).is_err());
    }

    #[test]
    fn threads_option() {
        let p = ParsedArgs::parse(["mc", "x.bench"]).unwrap();
        assert_eq!(p.options.threads, 0, "default is auto-detect");
        let p = ParsedArgs::parse(["mc", "x.bench", "--threads", "4"]).unwrap();
        assert_eq!(p.options.threads, 4);
        assert!(ParsedArgs::parse(["mc", "x.bench", "--threads", "-1"]).is_err());
        assert!(ParsedArgs::parse(["mc", "x.bench", "--threads", "1.5"]).is_err());
        assert!(ParsedArgs::parse(["mc", "x.bench", "--threads", "99999"]).is_err());
    }
}
