//! Redundancy-free reliability applications (§5.1 of the paper).
//!
//! The single-pass analysis yields per-node `Pr(0→1)` / `Pr(1→0)` error
//! probabilities, which the paper highlights as the enabler for two design
//! flows:
//!
//! * **Asymmetric redundancy insertion** — quadded-style schemes protect
//!   `0→1` and `1→0` errors differently, so knowing which direction
//!   dominates at each node directs cheaper, finer-grained hardening.
//! * **Selective hardening** — instead of protecting every gate, protect
//!   the few whose hardening most improves output reliability.

use crate::{GateEps, SinglePass, SinglePassResult, Weights};
use relogic_netlist::{Circuit, NodeId};

/// Per-node asymmetric error report entry.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeAsymmetry {
    /// The node.
    pub node: NodeId,
    /// `Pr(0→1 | fault-free 0)`.
    pub p01: f64,
    /// `Pr(1→0 | fault-free 1)`.
    pub p10: f64,
    /// Unconditional error probability of the node.
    pub delta: f64,
}

impl NodeAsymmetry {
    /// How lopsided the two error directions are: `|p01 − p10| / max`,
    /// in `[0, 1]` (0 = symmetric).
    #[must_use]
    pub fn skew(&self) -> f64 {
        let hi = self.p01.max(self.p10);
        if hi <= 0.0 {
            0.0
        } else {
            (self.p01 - self.p10).abs() / hi
        }
    }
}

/// Extracts the per-node asymmetric error report from a single-pass result,
/// sorted by descending skew (most asymmetric nodes first).
#[must_use]
pub fn asymmetry_report(circuit: &Circuit, result: &SinglePassResult) -> Vec<NodeAsymmetry> {
    let mut rows: Vec<NodeAsymmetry> = circuit
        .node_ids()
        .filter(|&id| circuit.node(id).kind().is_gate())
        .map(|id| NodeAsymmetry {
            node: id,
            p01: result.p01(id),
            p10: result.p10(id),
            delta: result.node_delta(id),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.skew()
            .partial_cmp(&a.skew())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// One step of a selective-hardening plan.
#[derive(Clone, Debug)]
pub struct HardeningStep {
    /// The gate chosen for hardening at this step.
    pub node: NodeId,
    /// Mean output δ after applying this step.
    pub mean_delta_after: f64,
}

/// Result of [`selective_hardening`].
#[derive(Clone, Debug)]
pub struct HardeningPlan {
    /// Mean output δ before any hardening.
    pub baseline: f64,
    /// Chosen gates in application order, with the δ trajectory.
    pub steps: Vec<HardeningStep>,
    /// The hardened ε vector after all steps.
    pub hardened_eps: GateEps,
}

impl HardeningPlan {
    /// Mean output δ after the full plan (the baseline if no steps fit).
    #[must_use]
    pub fn final_delta(&self) -> f64 {
        self.steps
            .last()
            .map_or(self.baseline, |s| s.mean_delta_after)
    }

    /// Relative improvement `1 − final/baseline` in `[0, 1]`.
    #[must_use]
    pub fn improvement(&self) -> f64 {
        if self.baseline <= 0.0 {
            0.0
        } else {
            1.0 - self.final_delta() / self.baseline
        }
    }
}

/// Greedily selects up to `budget` gates to harden (multiplying their ε by
/// `factor`, e.g. 0.1 for a 10× more reliable cell), choosing at each step
/// the gate whose hardening most reduces the mean output error probability
/// under the single-pass analysis.
///
/// # Panics
///
/// Panics if `factor` is not in `[0, 1)` or the weights do not match the
/// circuit.
#[must_use]
pub fn selective_hardening(
    circuit: &Circuit,
    weights: &Weights,
    eps: &GateEps,
    budget: usize,
    factor: f64,
) -> HardeningPlan {
    assert!((0.0..1.0).contains(&factor), "hardening factor {factor}");
    let engine = SinglePass::new(circuit, weights, crate::SinglePassOptions::default());
    let mean = |r: &SinglePassResult| -> f64 {
        let d = r.per_output();
        if d.is_empty() {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let n = d.len() as f64;
            d.iter().sum::<f64>() / n
        }
    };
    let mut current = eps.clone();
    let baseline = mean(&engine.run(&current));
    let mut best_so_far = baseline;
    let mut steps = Vec::new();
    let mut already: Vec<NodeId> = Vec::new();

    for _ in 0..budget {
        let mut best: Option<(NodeId, f64)> = None;
        for id in circuit.node_ids() {
            if !circuit.node(id).kind().is_gate() || current.get(id) <= 0.0 || already.contains(&id)
            {
                continue;
            }
            let mut trial = current.clone();
            trial.set(id, current.get(id) * factor);
            let d = mean(&engine.run(&trial));
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((id, d));
            }
        }
        match best {
            Some((id, d)) if d < best_so_far - 1e-15 => {
                current.set(id, current.get(id) * factor);
                already.push(id);
                best_so_far = d;
                steps.push(HardeningStep {
                    node: id,
                    mean_delta_after: d,
                });
            }
            _ => break,
        }
    }
    HardeningPlan {
        baseline,
        steps,
        hardened_eps: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, InputDistribution, SinglePassOptions};

    fn circuit() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let g1 = c.and([a, b]);
        let g2 = c.or([g1, x]);
        let g3 = c.not(g2);
        c.add_output("y", g3);
        c
    }

    fn weights(c: &Circuit) -> Weights {
        Weights::compute(c, &InputDistribution::Uniform, Backend::Bdd)
    }

    #[test]
    fn asymmetry_report_covers_all_gates() {
        let c = circuit();
        let w = weights(&c);
        let r =
            SinglePass::new(&c, &w, SinglePassOptions::default()).run(&GateEps::uniform(&c, 0.1));
        let report = asymmetry_report(&c, &r);
        assert_eq!(report.len(), 3);
        for row in &report {
            assert!((0.0..=1.0).contains(&row.p01));
            assert!((0.0..=1.0).contains(&row.p10));
            assert!((0.0..=1.0).contains(&row.skew()));
        }
        // Sorted by skew, descending.
        for pair in report.windows(2) {
            assert!(pair[0].skew() >= pair[1].skew() - 1e-12);
        }
    }

    #[test]
    fn and_into_or_is_asymmetric() {
        // An AND feeding an OR sees mostly-0 outputs, so propagated errors
        // are direction-skewed; this is the §5.1 observation.
        let c = circuit();
        let w = weights(&c);
        let r =
            SinglePass::new(&c, &w, SinglePassOptions::default()).run(&GateEps::uniform(&c, 0.1));
        let g2 = NodeId::from_index(4); // the OR gate
        assert!(
            (r.p01(g2) - r.p10(g2)).abs() > 1e-6,
            "expected direction-dependent error at the OR gate"
        );
    }

    #[test]
    fn hardening_reduces_delta_within_budget() {
        let c = circuit();
        let w = weights(&c);
        let eps = GateEps::uniform(&c, 0.1);
        let plan = selective_hardening(&c, &w, &eps, 2, 0.1);
        assert!(plan.baseline > 0.0);
        assert_eq!(plan.steps.len(), 2);
        assert!(plan.final_delta() < plan.baseline);
        assert!(plan.improvement() > 0.0);
        // The trajectory is monotone decreasing.
        let mut prev = plan.baseline;
        for s in &plan.steps {
            assert!(s.mean_delta_after < prev);
            prev = s.mean_delta_after;
        }
    }

    #[test]
    fn first_hardened_gate_is_fully_observable() {
        // Both last-level gates (the OR and the output inverter) have
        // observability 1; the greedy step must pick one of them, never the
        // partially masked AND.
        let c = circuit();
        let w = weights(&c);
        let plan = selective_hardening(&c, &w, &GateEps::uniform(&c, 0.1), 1, 0.1);
        let chosen = plan.steps[0].node;
        assert!(
            chosen == NodeId::from_index(4) || chosen == NodeId::from_index(5),
            "chose {chosen:?}"
        );
    }

    #[test]
    fn zero_budget_returns_baseline() {
        let c = circuit();
        let w = weights(&c);
        let plan = selective_hardening(&c, &w, &GateEps::uniform(&c, 0.1), 0, 0.1);
        assert!(plan.steps.is_empty());
        assert_eq!(plan.final_delta(), plan.baseline);
        assert_eq!(plan.improvement(), 0.0);
    }

    #[test]
    fn noise_free_circuit_has_nothing_to_harden() {
        let c = circuit();
        let w = weights(&c);
        let plan = selective_hardening(&c, &w, &GateEps::zero(&c), 3, 0.1);
        assert!(plan.steps.is_empty());
        assert_eq!(plan.baseline, 0.0);
    }
}
