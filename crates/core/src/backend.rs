//! Backend selection and input distributions shared by the analytical
//! engines.

use crate::RelogicError;
use relogic_netlist::Circuit;

/// How to obtain circuit statistics (weight vectors, signal probabilities,
/// observabilities).
///
/// The paper computes them "by random pattern simulation or symbolic
/// techniques based on BDDs"; both are provided. `Bdd` is exact but can be
/// memory-hungry on large or arithmetic-heavy circuits; `Simulation` scales
/// to anything, with `O(1/√patterns)` sampling noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// Exact symbolic computation with ROBDDs.
    #[default]
    Bdd,
    /// Random-pattern estimation.
    Simulation {
        /// Number of sampled patterns (rounded up to a multiple of 64).
        patterns: u64,
        /// RNG seed, for reproducibility.
        seed: u64,
    },
}

/// Distribution of the primary-input vectors.
///
/// The paper assumes "the primary input vectors are equally likely"
/// (uniform); independent per-input biases are also supported.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum InputDistribution {
    /// Every input is 1 with probability 1/2, independently.
    #[default]
    Uniform,
    /// Input at position `i` is 1 with probability `probs[i]`, independently.
    Independent(Vec<f64>),
}

impl InputDistribution {
    /// Per-input-position probabilities, expanded for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if an `Independent` vector's length does not match the
    /// circuit's input count, or contains values outside `[0, 1]`.
    #[must_use]
    pub fn position_probs(&self, circuit: &Circuit) -> Vec<f64> {
        match self.try_position_probs(circuit) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`InputDistribution::position_probs`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::DistributionMismatch`] if an `Independent` vector's
    /// length does not match the circuit's input count, or contains
    /// non-finite values or values outside `[0, 1]`.
    pub fn try_position_probs(&self, circuit: &Circuit) -> Result<Vec<f64>, RelogicError> {
        match self {
            InputDistribution::Uniform => Ok(vec![0.5; circuit.input_count()]),
            InputDistribution::Independent(p) => {
                if p.len() != circuit.input_count() {
                    return Err(RelogicError::DistributionMismatch {
                        message: format!(
                            "covers {} inputs, circuit has {}",
                            p.len(),
                            circuit.input_count()
                        ),
                    });
                }
                for (i, &x) in p.iter().enumerate() {
                    if !x.is_finite() || !(0.0..=1.0).contains(&x) {
                        return Err(RelogicError::DistributionMismatch {
                            message: format!("input prob [{i}] = {x} out of [0,1]"),
                        });
                    }
                }
                Ok(p.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(Backend::default(), Backend::Bdd);
        assert_eq!(InputDistribution::default(), InputDistribution::Uniform);
    }

    #[test]
    fn position_probs_expand() {
        let mut c = Circuit::new("t");
        c.add_input("a");
        c.add_input("b");
        assert_eq!(
            InputDistribution::Uniform.position_probs(&c),
            vec![0.5, 0.5]
        );
        assert_eq!(
            InputDistribution::Independent(vec![0.2, 0.9]).position_probs(&c),
            vec![0.2, 0.9]
        );
    }

    #[test]
    #[should_panic(expected = "covers 1 inputs")]
    fn wrong_length_rejected() {
        let mut c = Circuit::new("t");
        c.add_input("a");
        c.add_input("b");
        let _ = InputDistribution::Independent(vec![0.2]).position_probs(&c);
    }

    #[test]
    fn try_position_probs_returns_typed_errors() {
        let mut c = Circuit::new("t");
        c.add_input("a");
        assert!(matches!(
            InputDistribution::Independent(vec![0.2, 0.3]).try_position_probs(&c),
            Err(RelogicError::DistributionMismatch { .. })
        ));
        assert!(matches!(
            InputDistribution::Independent(vec![f64::NAN]).try_position_probs(&c),
            Err(RelogicError::DistributionMismatch { .. })
        ));
        assert_eq!(
            InputDistribution::Independent(vec![0.2]).try_position_probs(&c),
            Ok(vec![0.2])
        );
    }
}
