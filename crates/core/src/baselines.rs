//! The competing analyses the paper positions itself against (§2).
//!
//! * [`compositional`] — the von Neumann-style analytical approach (the
//!   paper's refs [3, 4]): per-gate error probabilities composed with
//!   simple independence rules, no weight vectors, no correlation
//!   tracking. Fast and scalable, but — as §2 puts it — "when used on
//!   irregular multi-level structures such as logic circuits, they suffer
//!   significant penalties in accuracy even on small circuits".
//! * [`ptm_exact`] — a probabilistic-transfer-matrix-style *exact* engine
//!   (the paper's ref [5]): the joint distribution over (fault-free,
//!   faulty) values of all live signals is propagated through the circuit.
//!   Exact for any ε⃗, but the state space is `4^(live signals)`, which is
//!   why the original PTM work "suggests their inapplicability to large
//!   circuits" — reproduce that blow-up with `--bin baselines`.

use crate::GateEps;
use relogic_netlist::{Circuit, GateKind, NodeId};
use std::collections::HashMap;

/// Von Neumann-style compositional reliability analysis.
///
/// Each signal carries a single error probability θ (not value-conditioned).
/// At every gate the inputs are assumed *independent and uniformly
/// distributed*, and the output error is
///
/// ```text
/// θ_g = ε + (1 − 2ε) · P(output flips | input θs, uniform combos)
/// ```
///
/// Returns the per-output error probabilities. Compare with
/// [`SinglePass`](crate::SinglePass), which replaces the uniform-input
/// assumption with weight vectors and tracks error direction and
/// correlation.
///
/// # Panics
///
/// Panics if `eps` does not match the circuit or a gate exceeds
/// [`crate::MAX_ANALYSIS_ARITY`].
#[must_use]
pub fn compositional(circuit: &Circuit, eps: &GateEps) -> Vec<f64> {
    assert_eq!(eps.len(), circuit.len());
    let mut theta = vec![0.0f64; circuit.len()];
    for (id, node) in circuit.iter() {
        let i = id.index();
        match node.kind() {
            GateKind::Input | GateKind::Const(_) => theta[i] = eps.get(id),
            kind => {
                let k = node.arity();
                assert!(k <= crate::MAX_ANALYSIS_ARITY);
                let e = eps.get(id);
                // P(output flips due to inputs), uniform over fault-free
                // input combinations, independent per-input flips.
                let mut flip = 0.0f64;
                for v in 0..1usize << k {
                    let out_v = kind.eval_combo(v, k);
                    let mut p_flip_v = 0.0f64;
                    for u in 0..1usize << k {
                        if kind.eval_combo(u, k) == out_v {
                            continue;
                        }
                        let mut p = 1.0f64;
                        for (j, &f) in node.fanins().iter().enumerate() {
                            let t = theta[f.index()];
                            p *= if (v ^ u) >> j & 1 == 1 { t } else { 1.0 - t };
                        }
                        p_flip_v += p;
                    }
                    #[allow(clippy::cast_precision_loss)]
                    {
                        flip += p_flip_v / (1usize << k) as f64;
                    }
                }
                theta[i] = e + (1.0 - 2.0 * e) * flip.clamp(0.0, 1.0);
            }
        }
    }
    circuit
        .outputs()
        .iter()
        .map(|o| theta[o.node().index()])
        .collect()
}

/// Error returned by [`ptm_exact`] when the live-signal cut exceeds the
/// width budget (the PTM state space is `4^width`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PtmTooWide {
    /// The cut width that was required.
    pub required: usize,
    /// The configured limit.
    pub limit: usize,
}

impl std::fmt::Display for PtmTooWide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ptm analysis needs a live cut of {} signals, over the limit of {}",
            self.required, self.limit
        )
    }
}

impl std::error::Error for PtmTooWide {}

/// Exact reliability via joint (fault-free, faulty) state propagation — a
/// probabilistic-transfer-matrix-equivalent computation.
///
/// Sweeps the circuit in topological order, maintaining the exact joint
/// distribution of `(clean value, noisy value)` over all *live* signals
/// (signals with unread fanouts). Each node's error probability is read off
/// the marginal at its creation, so the result is exact for every output —
/// including all input and error correlations — at a cost exponential in
/// the maximum live-cut width.
///
/// # Errors
///
/// Returns [`PtmTooWide`] if the live cut ever exceeds `max_width`
/// (16 is already 4³² ≈ 4·10⁹ conceivable states; practical limits are
/// lower and enforced by the caller's patience).
///
/// # Panics
///
/// Panics if `eps` does not match the circuit.
pub fn ptm_exact(
    circuit: &Circuit,
    eps: &GateEps,
    max_width: usize,
) -> Result<Vec<f64>, PtmTooWide> {
    assert_eq!(eps.len(), circuit.len());
    // Remaining-reader counts drive liveness.
    let mut remaining = vec![0usize; circuit.len()];
    for (_, node) in circuit.iter() {
        for &f in node.fanins() {
            remaining[f.index()] += 1;
        }
    }

    // Live signals, ordered; slot index = bit position in the state keys.
    let mut live: Vec<NodeId> = Vec::new();
    let mut slot_of: HashMap<NodeId, usize> = HashMap::new();
    // State: (clean bits, noisy bits) over live slots → probability.
    let mut states: HashMap<(u32, u32), f64> = HashMap::new();
    states.insert((0, 0), 1.0);
    let mut node_delta = vec![0.0f64; circuit.len()];

    for (id, node) in circuit.iter() {
        let e = eps.get(id);
        // Produce the (clean, noisy) pair for this node in every state.
        let mut next: HashMap<(u32, u32), f64> = HashMap::with_capacity(states.len() * 2);
        let slot = live.len();
        if slot >= max_width {
            return Err(PtmTooWide {
                required: slot + 1,
                limit: max_width,
            });
        }
        let mut delta = 0.0f64;
        let push = |next: &mut HashMap<(u32, u32), f64>,
                    key: (u32, u32),
                    clean: bool,
                    noisy: bool,
                    p: f64,
                    delta: &mut f64| {
            if p <= 0.0 {
                return;
            }
            let mut k = key;
            if clean {
                k.0 |= 1 << slot;
            }
            if noisy {
                k.1 |= 1 << slot;
            }
            if clean != noisy {
                *delta += p;
            }
            *next.entry(k).or_insert(0.0) += p;
        };
        match node.kind() {
            GateKind::Input => {
                for (&key, &p) in &states {
                    for value in [false, true] {
                        let pv = p * 0.5;
                        if e > 0.0 {
                            push(&mut next, key, value, !value, pv * e, &mut delta);
                            push(&mut next, key, value, value, pv * (1.0 - e), &mut delta);
                        } else {
                            push(&mut next, key, value, value, pv, &mut delta);
                        }
                    }
                }
            }
            GateKind::Const(v) => {
                for (&key, &p) in &states {
                    if e > 0.0 {
                        push(&mut next, key, v, !v, p * e, &mut delta);
                        push(&mut next, key, v, v, p * (1.0 - e), &mut delta);
                    } else {
                        push(&mut next, key, v, v, p, &mut delta);
                    }
                }
            }
            kind => {
                let fanin_slots: Vec<usize> = node.fanins().iter().map(|f| slot_of[f]).collect();
                let mut clean_bits = Vec::with_capacity(fanin_slots.len());
                let mut noisy_bits = Vec::with_capacity(fanin_slots.len());
                for (&key, &p) in &states {
                    clean_bits.clear();
                    noisy_bits.clear();
                    for &s in &fanin_slots {
                        clean_bits.push(key.0 >> s & 1 == 1);
                        noisy_bits.push(key.1 >> s & 1 == 1);
                    }
                    let clean = kind.eval(&clean_bits);
                    let noisy_base = kind.eval(&noisy_bits);
                    if e > 0.0 {
                        push(&mut next, key, clean, !noisy_base, p * e, &mut delta);
                        push(&mut next, key, clean, noisy_base, p * (1.0 - e), &mut delta);
                    } else {
                        push(&mut next, key, clean, noisy_base, p, &mut delta);
                    }
                }
            }
        }
        node_delta[id.index()] = delta;
        live.push(id);
        slot_of.insert(id, slot);
        states = next;

        // Retire fanins whose last reader this was (and this node itself if
        // nothing ever reads it), compacting the slot space.
        for &f in node.fanins() {
            remaining[f.index()] -= 1;
        }
        let dead: Vec<NodeId> = live
            .iter()
            .copied()
            .filter(|&w| remaining[w.index()] == 0)
            .collect();
        if !dead.is_empty() {
            let keep: Vec<NodeId> = live.iter().copied().filter(|w| !dead.contains(w)).collect();
            let mut projected: HashMap<(u32, u32), f64> = HashMap::with_capacity(states.len());
            for (&(c, n), &p) in &states {
                let mut nc = 0u32;
                let mut nn = 0u32;
                for (new_slot, w) in keep.iter().enumerate() {
                    let old = slot_of[w];
                    if c >> old & 1 == 1 {
                        nc |= 1 << new_slot;
                    }
                    if n >> old & 1 == 1 {
                        nn |= 1 << new_slot;
                    }
                }
                *projected.entry((nc, nn)).or_insert(0.0) += p;
            }
            states = projected;
            slot_of.clear();
            for (s, w) in keep.iter().enumerate() {
                slot_of.insert(*w, s);
            }
            live = keep;
        }
    }

    Ok(circuit
        .outputs()
        .iter()
        .map(|o| node_delta[o.node().index()])
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic_sim::exact_reliability;

    fn reconvergent() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let s = c.nand([a, b]);
        let p = c.and([s, x]);
        let q = c.or([s, x]);
        let g = c.xor([p, q]);
        c.add_output("y", g);
        c.add_output("z", q);
        c
    }

    #[test]
    fn ptm_matches_exhaustive_exactly() {
        let c = reconvergent();
        for &e in &[0.0, 0.05, 0.2, 0.5] {
            let eps = GateEps::uniform(&c, e);
            let ptm = ptm_exact(&c, &eps, 16).expect("narrow circuit");
            let exact = exact_reliability(&c, eps.as_slice());
            for (k, (&a, &b)) in ptm.iter().zip(&exact.per_output).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "ε={e} output {k}: ptm {a} vs exhaustive {b}"
                );
            }
        }
    }

    #[test]
    fn ptm_handles_noisy_inputs_and_constants() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k1 = c.add_const(true);
        let g = c.and([a, k1]);
        c.add_output("y", g);
        let mut eps = GateEps::zero(&c);
        eps.set(a, 0.1);
        eps.set(k1, 0.2);
        eps.set(g, 0.05);
        let ptm = ptm_exact(&c, &eps, 8).unwrap();
        let exact = exact_reliability(&c, eps.as_slice());
        assert!((ptm[0] - exact.per_output[0]).abs() < 1e-12);
    }

    #[test]
    fn ptm_width_limit_enforced() {
        // A wide fanin layer keeps many signals live at once.
        let mut c = Circuit::new("wide");
        let ins: Vec<_> = (0..10).map(|i| c.add_input(format!("x{i}"))).collect();
        let g = c.xor(ins);
        c.add_output("y", g);
        let eps = GateEps::uniform(&c, 0.1);
        let err = ptm_exact(&c, &eps, 6).unwrap_err();
        assert!(err.required > 6);
        assert!(err.to_string().contains("live cut"));
        assert!(ptm_exact(&c, &eps, 16).is_ok());
    }

    #[test]
    fn compositional_is_exact_on_uniform_trees() {
        // On a fanout-free tree with uniform inputs, the compositional
        // assumptions hold exactly.
        let mut c = Circuit::new("tree");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let e_in = c.add_input("e");
        let g1 = c.and([a, b]);
        let g2 = c.or([d, e_in]);
        let g3 = c.xor([g1, g2]);
        c.add_output("y", g3);
        for &e in &[0.05, 0.2] {
            let eps = GateEps::uniform(&c, e);
            let comp = compositional(&c, &eps);
            let exact = exact_reliability(&c, eps.as_slice());
            // XOR output: error direction does not matter and signal probs
            // are uniform, so compositional == exact here.
            assert!(
                (comp[0] - exact.per_output[0]).abs() < 0.02,
                "ε={e}: comp {} vs exact {}",
                comp[0],
                exact.per_output[0]
            );
        }
    }

    #[test]
    fn compositional_loses_accuracy_on_benchmark_logic() {
        // The paper's §2 claim: compositional rules "suffer significant
        // penalties in accuracy" on irregular multi-level logic, compared
        // to the weight-vector single-pass analysis. Checked on the x2
        // analogue against Monte Carlo.
        use crate::{metrics, Backend, InputDistribution, SinglePass, SinglePassOptions, Weights};
        let c = relogic_gen::suite::x2();
        let eps = GateEps::uniform(&c, 0.1);
        let mc = relogic_sim::estimate(
            &c,
            eps.as_slice(),
            &relogic_sim::MonteCarloConfig {
                patterns: 1 << 17,
                ..Default::default()
            },
        );
        let comp = compositional(&c, &eps);
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let sp = SinglePass::new(&c, &w, SinglePassOptions::default()).run(&eps);
        let comp_err = metrics::average_percent_error(&comp, mc.per_output());
        let sp_err = metrics::average_percent_error(sp.per_output(), mc.per_output());
        assert!(
            sp_err * 2.0 < comp_err,
            "single-pass {sp_err}% should be far better than compositional {comp_err}%"
        );
    }

    #[test]
    fn compositional_stays_in_unit_interval() {
        let c = reconvergent();
        for &e in &[0.0, 0.3, 0.5] {
            for d in compositional(&c, &GateEps::uniform(&c, e)) {
                assert!((0.0..=1.0).contains(&d));
            }
        }
    }
}
