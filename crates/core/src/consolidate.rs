//! Multi-output error consolidation.
//!
//! The paper's application studies (Figs. 5 and 8) report the *consolidated
//! output error*: the probability that **at least one** primary output is in
//! error. Output error events are correlated — both through shared logic and
//! through shared noise — so the naive `1 − Π(1 − δ_y)` is biased. Following
//! §4.1, the single-pass correlation coefficients between output signals,
//! combined with the joint fault-free value distribution of each output
//! pair, give a pairwise-corrected estimate.

use crate::{Backend, Diagnostics, ErrorEvent, InputDistribution, RelogicError, SinglePassResult};
use relogic_bdd::{BddManager, CircuitBdds, VarOrder};
use relogic_netlist::{Circuit, NodeId};
use std::collections::HashMap;

/// Precomputed joint fault-free value distributions for output pairs.
///
/// Joint distributions are ε-independent, so one `Consolidator` serves an
/// entire ε sweep.
///
/// # Examples
///
/// ```
/// use relogic::{
///     consolidate::Consolidator, Backend, GateEps, InputDistribution, SinglePass,
///     SinglePassOptions, Weights,
/// };
/// use relogic_netlist::Circuit;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.and([a, b]);
/// let h = c.not(g);
/// c.add_output("y1", g);
/// c.add_output("y2", h);
///
/// let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
/// let r = SinglePass::new(&c, &w, SinglePassOptions::default()).run(&GateEps::uniform(&c, 0.1));
/// let cons = Consolidator::new(&c, &InputDistribution::Uniform, Backend::Bdd);
/// let any = cons.any_output_error(&r);
/// assert!(any >= r.per_output()[0].max(r.per_output()[1]) - 1e-9);
/// assert!(any <= r.per_output()[0] + r.per_output()[1] + 1e-9);
/// ```
#[derive(Debug)]
pub struct Consolidator {
    output_nodes: Vec<NodeId>,
    /// Joint value distribution per output pair `(a, b)` with `a < b`
    /// (output indices): entry `vb << 1 | va`.
    pair_values: HashMap<(usize, usize), [f64; 4]>,
}

impl Consolidator {
    /// Builds joint value distributions for every pair of primary outputs.
    ///
    /// Cost is one symbolic circuit construction plus `O(outputs²)`
    /// conjunction queries with [`Backend::Bdd`], or one sampling pass with
    /// [`Backend::Simulation`]. For circuits with very many outputs prefer
    /// [`Consolidator::for_pairs`].
    #[must_use]
    pub fn new(circuit: &Circuit, dist: &InputDistribution, backend: Backend) -> Self {
        match Self::try_new(circuit, dist, backend) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Consolidator::new`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::DistributionMismatch`] if the input distribution
    /// does not match the circuit.
    pub fn try_new(
        circuit: &Circuit,
        dist: &InputDistribution,
        backend: Backend,
    ) -> Result<Self, RelogicError> {
        let m = circuit.output_count();
        let pairs: Vec<(usize, usize)> = (0..m)
            .flat_map(|a| ((a + 1)..m).map(move |b| (a, b)))
            .collect();
        Self::try_for_pairs(circuit, &pairs, dist, backend)
    }

    /// Builds joint value distributions for the given output-index pairs.
    ///
    /// # Panics
    ///
    /// Panics if a pair index is out of range or not strictly increasing.
    #[must_use]
    pub fn for_pairs(
        circuit: &Circuit,
        pairs: &[(usize, usize)],
        dist: &InputDistribution,
        backend: Backend,
    ) -> Self {
        match Self::try_for_pairs(circuit, pairs, dist, backend) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Consolidator::for_pairs`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::InvalidOutputPair`] if a pair index is out of range
    /// or not strictly increasing, or
    /// [`RelogicError::DistributionMismatch`] if the input distribution
    /// does not match the circuit.
    pub fn try_for_pairs(
        circuit: &Circuit,
        pairs: &[(usize, usize)],
        dist: &InputDistribution,
        backend: Backend,
    ) -> Result<Self, RelogicError> {
        let output_nodes: Vec<NodeId> = circuit.outputs().iter().map(|o| o.node()).collect();
        for &(a, b) in pairs {
            if a >= b || b >= output_nodes.len() {
                return Err(RelogicError::InvalidOutputPair {
                    a,
                    b,
                    outputs: output_nodes.len(),
                });
            }
        }
        let _ = dist.try_position_probs(circuit)?;
        let pair_values = match backend {
            Backend::Bdd => {
                let order = VarOrder::dfs(circuit);
                let mut manager = BddManager::new(order.len());
                let bdds = CircuitBdds::build(&mut manager, circuit, &order);
                let var_probs =
                    order.permute_probs(&dist.position_probs(circuit), order.len(), 0.5);
                let mut memo: HashMap<relogic_bdd::BddRef, f64> = HashMap::new();
                pairs
                    .iter()
                    .map(|&(a, b)| {
                        let fa = bdds.func(output_nodes[a]);
                        let fb = bdds.func(output_nodes[b]);
                        let mut dist4 = [0.0f64; 4];
                        for (combo, slot) in dist4.iter_mut().enumerate() {
                            let la = if combo & 1 == 1 { fa } else { manager.not(fa) };
                            let lb = if combo & 2 == 2 { fb } else { manager.not(fb) };
                            let conj = manager.and(la, lb);
                            *slot = manager.probability_memo(conj, &var_probs, &mut memo);
                        }
                        ((a, b), dist4)
                    })
                    .collect()
            }
            Backend::Simulation { patterns, seed } => {
                use rand::SeedableRng;
                let sampler = relogic_sim::InputSampler::independent(&dist.position_probs(circuit));
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                let mut sim = relogic_sim::PackedSim::new(circuit);
                let blocks = patterns.div_ceil(64).max(1);
                let mut counts: HashMap<(usize, usize), [u64; 4]> =
                    pairs.iter().map(|&p| (p, [0u64; 4])).collect();
                for _ in 0..blocks {
                    sampler.fill(&mut sim, &mut rng);
                    sim.propagate(circuit);
                    for (&(a, b), slot) in &mut counts {
                        let wa = sim.node_word(output_nodes[a]);
                        let wb = sim.node_word(output_nodes[b]);
                        slot[0b00] += u64::from((!wa & !wb).count_ones());
                        slot[0b01] += u64::from((wa & !wb).count_ones());
                        slot[0b10] += u64::from((!wa & wb).count_ones());
                        slot[0b11] += u64::from((wa & wb).count_ones());
                    }
                }
                #[allow(clippy::cast_precision_loss)]
                let total = (blocks * 64) as f64;
                #[allow(clippy::cast_precision_loss)]
                counts
                    .into_iter()
                    .map(|(p, c)| (p, c.map(|x| x as f64 / total)))
                    .collect()
            }
        };
        Ok(Consolidator {
            output_nodes,
            pair_values,
        })
    }

    /// Joint probability that outputs `a` and `b` are *both* in error, using
    /// the single-pass error probabilities and correlation coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not precomputed.
    #[must_use]
    pub fn joint_error(&self, result: &SinglePassResult, a: usize, b: usize) -> f64 {
        match self.try_joint_error(result, a, b) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Consolidator::joint_error`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::MissingOutputPair`] if the pair was not precomputed.
    pub fn try_joint_error(
        &self,
        result: &SinglePassResult,
        a: usize,
        b: usize,
    ) -> Result<f64, RelogicError> {
        let mut diag = Diagnostics::new();
        self.joint_error_with(result, a, b, &mut diag)
    }

    /// [`Consolidator::try_joint_error`] that also accumulates clamp events
    /// into `diag`.
    ///
    /// # Errors
    ///
    /// [`RelogicError::MissingOutputPair`] if the pair was not precomputed.
    pub fn joint_error_with(
        &self,
        result: &SinglePassResult,
        a: usize,
        b: usize,
        diag: &mut Diagnostics,
    ) -> Result<f64, RelogicError> {
        let (a, b) = (a.min(b), a.max(b));
        let values = self
            .pair_values
            .get(&(a, b))
            .ok_or(RelogicError::MissingOutputPair { a, b })?;
        let na = self.output_nodes[a];
        let nb = self.output_nodes[b];
        let coeffs = result.correlation(na, nb);
        let q = |node: NodeId, value: usize| -> (f64, ErrorEvent) {
            if value == 0 {
                (result.p01(node), ErrorEvent::Rise)
            } else {
                (result.p10(node), ErrorEvent::Fall)
            }
        };
        let mut joint = 0.0f64;
        for va in 0..2usize {
            for vb in 0..2usize {
                let w = values[vb << 1 | va];
                if w <= 0.0 {
                    continue;
                }
                let (pa, ev_a) = q(na, va);
                let (pb, ev_b) = q(nb, vb);
                let c = coeffs.map_or(1.0, |c| match (ev_a, ev_b) {
                    (ErrorEvent::Rise, ErrorEvent::Rise) => c[0][0],
                    (ErrorEvent::Rise, ErrorEvent::Fall) => c[0][1],
                    (ErrorEvent::Fall, ErrorEvent::Rise) => c[1][0],
                    (ErrorEvent::Fall, ErrorEvent::Fall) => c[1][1],
                });
                joint += w * diag.clamp_coeff(pa * pb * c, 0.0, pa.min(pb));
            }
        }
        let da = delta_of(result, na, values, true);
        let db = delta_of(result, nb, values, false);
        Ok(diag.clamp_prob(joint, 0.0, da.min(db)))
    }

    /// Probability that at least one of outputs `a`, `b` is in error — the
    /// quantity plotted in the paper's Fig. 5.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not precomputed.
    #[must_use]
    pub fn pair_error(&self, result: &SinglePassResult, a: usize, b: usize) -> f64 {
        match self.try_pair_error(result, a, b) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Consolidator::pair_error`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::MissingOutputPair`] if the pair was not precomputed.
    pub fn try_pair_error(
        &self,
        result: &SinglePassResult,
        a: usize,
        b: usize,
    ) -> Result<f64, RelogicError> {
        let da = result.per_output()[a];
        let db = result.per_output()[b];
        Ok((da + db - self.try_joint_error(result, a, b)?).clamp(da.max(db), (da + db).min(1.0)))
    }

    /// Probability that at least one primary output is in error (the
    /// paper's "consolidated output error curve", Fig. 8), via a
    /// pairwise-corrected product over outputs.
    ///
    /// # Panics
    ///
    /// Panics if the consolidator was built with [`Consolidator::for_pairs`]
    /// and does not cover all output pairs.
    #[must_use]
    pub fn any_output_error(&self, result: &SinglePassResult) -> f64 {
        let mut diag = Diagnostics::new();
        match self.any_output_error_with(result, &mut diag) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Consolidator::any_output_error`] that also accumulates
    /// clamp events — in particular the θ guard-rail clamps of the
    /// Kirkwood correction — into `diag`.
    ///
    /// # Errors
    ///
    /// [`RelogicError::MissingOutputPair`] if the consolidator was built
    /// with [`Consolidator::for_pairs`] and does not cover all output
    /// pairs.
    pub fn any_output_error_with(
        &self,
        result: &SinglePassResult,
        diag: &mut Diagnostics,
    ) -> Result<f64, RelogicError> {
        let deltas = result.per_output();
        let m = deltas.len();
        if m == 0 {
            return Ok(0.0);
        }
        if m == 1 {
            return Ok(deltas[0]);
        }
        // ln P(no error) ≈ Σ ln(1−δ_k) + Σ_{a<b} ln θ_ab, the pairwise
        // (Kirkwood superposition) correction.
        let mut log_none = 0.0f64;
        for &d in deltas {
            if d >= 1.0 {
                return Ok(1.0);
            }
            log_none += (1.0 - d).ln();
        }
        for a in 0..m {
            for b in (a + 1)..m {
                let ok_a = 1.0 - deltas[a];
                let ok_b = 1.0 - deltas[b];
                if ok_a <= 0.0 || ok_b <= 0.0 {
                    return Ok(1.0);
                }
                let joint_err = self.joint_error_with(result, a, b, diag)?;
                let ok_both = (1.0 - deltas[a] - deltas[b] + joint_err).clamp(0.0, 1.0);
                let theta = diag.clamp_theta(ok_both / (ok_a * ok_b), 1e-6, 1e6);
                log_none += theta.ln();
            }
        }
        let lower = deltas.iter().cloned().fold(0.0, f64::max);
        let upper = deltas.iter().sum::<f64>().min(1.0);
        Ok((1.0 - log_none.exp()).clamp(lower, upper))
    }
}

/// Per-output δ recomputed from the pair's joint value marginals, for
/// consistency with the stored joint distribution. Falls back to the
/// result's value.
fn delta_of(result: &SinglePassResult, node: NodeId, values: &[f64; 4], first: bool) -> f64 {
    let p0 = if first {
        values[0b00] + values[0b10]
    } else {
        values[0b00] + values[0b01]
    };
    (1.0 - p0).mul_add(result.p10(node), p0 * result.p01(node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateEps, SinglePass, SinglePassOptions, Weights};
    use relogic_sim::{estimate, exact_reliability, MonteCarloConfig};

    fn analyzed(c: &Circuit, eps: f64) -> (SinglePassResult, Consolidator, GateEps) {
        let w = Weights::compute(c, &InputDistribution::Uniform, Backend::Bdd);
        let e = GateEps::uniform(c, eps);
        let r = SinglePass::new(c, &w, SinglePassOptions::default()).run(&e);
        let cons = Consolidator::new(c, &InputDistribution::Uniform, Backend::Bdd);
        (r, cons, e)
    }

    fn two_output_reconvergent() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let s = c.nand([a, b]);
        let o1 = c.or([s, x]);
        let o2 = c.xor([s, x]);
        c.add_output("y1", o1);
        c.add_output("y2", o2);
        c
    }

    #[test]
    fn identical_outputs_err_together() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y1", g);
        c.add_output("y2", g);
        let (r, cons, _) = analyzed(&c, 0.2);
        // Same node: joint error = δ (they always err together)... the
        // correlation machinery reaches this via a perfectly correlated
        // pair only when tracked; identical nodes share everything.
        let j = cons.joint_error(&r, 0, 1);
        assert!(j <= r.per_output()[0] + 1e-12);
        let any = cons.any_output_error(&r);
        assert!(any <= r.per_output()[0] + r.per_output()[1]);
        assert!(any >= r.per_output()[0] - 1e-12);
    }

    #[test]
    fn consolidated_error_close_to_exact() {
        let c = two_output_reconvergent();
        for &e in &[0.05, 0.15, 0.3] {
            let (r, cons, eps) = analyzed(&c, e);
            let exact = exact_reliability(&c, eps.as_slice());
            let any = cons.any_output_error(&r);
            assert!(
                (any - exact.any_output).abs() < 0.05,
                "ε={e}: consolidated {any} vs exact {}",
                exact.any_output
            );
            let pair = cons.pair_error(&r, 0, 1);
            assert!((pair - exact.any_output).abs() < 0.05);
        }
    }

    #[test]
    fn correlation_correction_beats_independence_assumption() {
        let c = two_output_reconvergent();
        let mut corrected = 0.0f64;
        let mut independent = 0.0f64;
        for &e in &[0.05, 0.1, 0.2, 0.3] {
            let (r, cons, eps) = analyzed(&c, e);
            let exact = exact_reliability(&c, eps.as_slice()).any_output;
            let any = cons.any_output_error(&r);
            let naive = 1.0 - r.per_output().iter().map(|&d| 1.0 - d).product::<f64>();
            corrected += (any - exact).abs();
            independent += (naive - exact).abs();
        }
        assert!(
            corrected <= independent + 1e-9,
            "corrected {corrected} vs independent {independent}"
        );
    }

    #[test]
    fn simulation_backend_agrees_with_bdd() {
        let c = two_output_reconvergent();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, 0.1);
        let r = SinglePass::new(&c, &w, SinglePassOptions::default()).run(&eps);
        let exact = Consolidator::new(&c, &InputDistribution::Uniform, Backend::Bdd);
        let sampled = Consolidator::new(
            &c,
            &InputDistribution::Uniform,
            Backend::Simulation {
                patterns: 1 << 15,
                seed: 5,
            },
        );
        assert!((exact.any_output_error(&r) - sampled.any_output_error(&r)).abs() < 0.02);
    }

    #[test]
    fn consolidated_matches_monte_carlo_any() {
        let c = two_output_reconvergent();
        let (r, cons, eps) = analyzed(&c, 0.12);
        let mc = estimate(
            &c,
            eps.as_slice(),
            &MonteCarloConfig {
                patterns: 1 << 17,
                ..MonteCarloConfig::default()
            },
        );
        assert!(
            (cons.any_output_error(&r) - mc.any_output()).abs() < 0.03,
            "{} vs {}",
            cons.any_output_error(&r),
            mc.any_output()
        );
    }

    #[test]
    fn for_pairs_restricts_coverage() {
        let c = two_output_reconvergent();
        let cons =
            Consolidator::for_pairs(&c, &[(0, 1)], &InputDistribution::Uniform, Backend::Bdd);
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let r =
            SinglePass::new(&c, &w, SinglePassOptions::default()).run(&GateEps::uniform(&c, 0.1));
        let _ = cons.pair_error(&r, 0, 1);
    }

    #[test]
    #[should_panic(expected = "invalid output pair")]
    fn bad_pairs_rejected() {
        let c = two_output_reconvergent();
        let _ = Consolidator::for_pairs(&c, &[(1, 1)], &InputDistribution::Uniform, Backend::Bdd);
    }

    #[test]
    fn try_variants_surface_typed_errors() {
        let c = two_output_reconvergent();
        assert!(matches!(
            Consolidator::try_for_pairs(&c, &[(0, 7)], &InputDistribution::Uniform, Backend::Bdd),
            Err(RelogicError::InvalidOutputPair { .. })
        ));
        // A consolidator missing a pair reports it instead of panicking.
        let empty = Consolidator::try_for_pairs(&c, &[], &InputDistribution::Uniform, Backend::Bdd)
            .unwrap();
        let (r, _, _) = analyzed(&c, 0.1);
        assert!(matches!(
            empty.try_joint_error(&r, 0, 1),
            Err(RelogicError::MissingOutputPair { a: 0, b: 1 })
        ));
        assert!(matches!(
            empty.try_pair_error(&r, 0, 1),
            Err(RelogicError::MissingOutputPair { .. })
        ));
        let mut diag = Diagnostics::new();
        assert!(empty.any_output_error_with(&r, &mut diag).is_err());
    }

    #[test]
    fn any_output_error_with_accumulates_diagnostics() {
        let c = two_output_reconvergent();
        let (r, cons, _) = analyzed(&c, 0.3);
        let mut diag = Diagnostics::new();
        let with = cons.any_output_error_with(&r, &mut diag).unwrap();
        assert!((with - cons.any_output_error(&r)).abs() < 1e-15);
        // Whatever events occurred, the plain call must not change them.
        assert!(diag.worst_excursion().is_finite());
    }

    #[test]
    fn empty_and_single_output_edge_cases() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let (r, cons, _) = analyzed(&c, 0.2);
        assert!((cons.any_output_error(&r) - r.per_output()[0]).abs() < 1e-12);
    }
}
