//! Per-run numerical diagnostics.
//!
//! The single-pass engine (§4/§4.1) and the multi-output consolidator keep
//! their estimates legal by clamping: propagated flip probabilities and
//! coefficient-weighted products are clamped into `[0, 1]`, and the
//! pairwise Kirkwood correction factor θ in
//! [`crate::consolidate::Consolidator::any_output_error`] is clamped into
//! `[1e-6, 1e6]`. Those clamps are part of the approximation — §4.1's
//! correlation coefficients are first-order, so the products they re-weight
//! can legitimately leave `[0, 1]` — but silently discarding the excursion
//! makes large-benchmark runs unobservable. A [`Diagnostics`] value counts
//! every such event, records the worst excursion magnitude, and tracks the
//! graceful-degradation fallbacks taken when correlation propagation
//! produces non-finite coefficients.

use std::fmt;

/// Slack below which a clamp is considered floating-point rounding and not
/// counted as an event (the value is still clamped).
pub(crate) const CLAMP_SLACK: f64 = 1e-12;

/// Counters and extrema accumulated over one analysis run.
///
/// Obtained from [`crate::SinglePassResult::diagnostics`], from the
/// consolidator's `*_with` methods, and from [`crate::sweep::DeltaCurves`].
/// Merge several runs with [`Diagnostics::merge`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Diagnostics {
    prob_clamps: u64,
    coeff_saturations: u64,
    theta_clamps: u64,
    correlation_fallbacks: u64,
    worst_excursion: f64,
}

impl Diagnostics {
    /// A fresh, all-zero accumulator.
    #[must_use]
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Number of probability clamp events: a propagated error probability
    /// left `[0, 1]` by more than floating-point slack and was clamped.
    #[must_use]
    pub fn prob_clamps(&self) -> u64 {
        self.prob_clamps
    }

    /// Number of correlation-coefficient saturation events: a
    /// coefficient-weighted probability product left `[0, 1]` and was
    /// clamped (the §4.1 re-weighting overshot).
    #[must_use]
    pub fn coeff_saturations(&self) -> u64 {
        self.coeff_saturations
    }

    /// Number of θ clamp events in multi-output consolidation (the
    /// pairwise correction factor hit the `1e-6..1e6` guard rails).
    #[must_use]
    pub fn theta_clamps(&self) -> u64 {
        self.theta_clamps
    }

    /// Number of signal pairs whose correlation coefficients came out
    /// non-finite and were dropped, falling back to uncorrelated
    /// propagation for that pair.
    #[must_use]
    pub fn correlation_fallbacks(&self) -> u64 {
        self.correlation_fallbacks
    }

    /// The largest distance by which any clamped quantity left its legal
    /// range (0 when no clamp event occurred).
    #[must_use]
    pub fn worst_excursion(&self) -> f64 {
        self.worst_excursion
    }

    /// Total number of recorded events of any kind.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.prob_clamps + self.coeff_saturations + self.theta_clamps + self.correlation_fallbacks
    }

    /// `true` when the run completed without a single clamp, saturation,
    /// or fallback.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_events() == 0
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &Diagnostics) {
        self.prob_clamps += other.prob_clamps;
        self.coeff_saturations += other.coeff_saturations;
        self.theta_clamps += other.theta_clamps;
        self.correlation_fallbacks += other.correlation_fallbacks;
        self.worst_excursion = self.worst_excursion.max(other.worst_excursion);
    }

    /// Clamps `value` into `[lo, hi]`, recording a probability-clamp event
    /// when the excursion exceeds the rounding slack.
    #[inline]
    pub(crate) fn clamp_prob(&mut self, value: f64, lo: f64, hi: f64) -> f64 {
        self.clamp_counted(value, lo, hi, ClampKind::Probability)
    }

    /// Clamps a coefficient-weighted product, recording a saturation event.
    #[inline]
    pub(crate) fn clamp_coeff(&mut self, value: f64, lo: f64, hi: f64) -> f64 {
        self.clamp_counted(value, lo, hi, ClampKind::Coefficient)
    }

    /// Clamps the consolidation θ factor, recording a θ-clamp event.
    #[inline]
    pub(crate) fn clamp_theta(&mut self, value: f64, lo: f64, hi: f64) -> f64 {
        self.clamp_counted(value, lo, hi, ClampKind::Theta)
    }

    /// Records one correlation-propagation fallback (a pair dropped to
    /// independence because its coefficients were non-finite).
    #[inline]
    pub(crate) fn record_fallback(&mut self) {
        self.correlation_fallbacks += 1;
    }

    #[inline]
    fn clamp_counted(&mut self, value: f64, lo: f64, hi: f64, kind: ClampKind) -> f64 {
        debug_assert!(lo <= hi);
        if value.is_nan() {
            // NaN clamps to the lower bound; record it as a (large) event
            // so it never passes silently.
            self.count(kind);
            self.worst_excursion = f64::INFINITY;
            return lo;
        }
        let excursion = if value < lo {
            lo - value
        } else if value > hi {
            value - hi
        } else {
            return value;
        };
        if excursion > CLAMP_SLACK {
            self.count(kind);
            self.worst_excursion = self.worst_excursion.max(excursion);
        }
        value.clamp(lo, hi)
    }

    #[inline]
    fn count(&mut self, kind: ClampKind) {
        match kind {
            ClampKind::Probability => self.prob_clamps += 1,
            ClampKind::Coefficient => self.coeff_saturations += 1,
            ClampKind::Theta => self.theta_clamps += 1,
        }
    }
}

#[derive(Clone, Copy)]
enum ClampKind {
    Probability,
    Coefficient,
    Theta,
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "probability clamps:       {}", self.prob_clamps)?;
        writeln!(f, "coefficient saturations:  {}", self.coeff_saturations)?;
        writeln!(f, "theta clamps:             {}", self.theta_clamps)?;
        writeln!(
            f,
            "correlation fallbacks:    {}",
            self.correlation_fallbacks
        )?;
        write!(f, "worst excursion:          {:.3e}", self.worst_excursion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through_uncounted() {
        let mut d = Diagnostics::new();
        assert_eq!(d.clamp_prob(0.5, 0.0, 1.0), 0.5);
        assert_eq!(d.clamp_prob(0.0, 0.0, 1.0), 0.0);
        assert_eq!(d.clamp_prob(1.0, 0.0, 1.0), 1.0);
        assert!(d.is_clean());
    }

    #[test]
    fn rounding_slack_is_clamped_but_not_counted() {
        let mut d = Diagnostics::new();
        let v = d.clamp_prob(1.0 + 1e-15, 0.0, 1.0);
        assert_eq!(v, 1.0);
        assert!(d.is_clean());
    }

    #[test]
    fn real_excursions_are_counted_with_magnitude() {
        let mut d = Diagnostics::new();
        assert_eq!(d.clamp_prob(1.25, 0.0, 1.0), 1.0);
        assert_eq!(d.clamp_coeff(-0.5, 0.0, 1.0), 0.0);
        assert_eq!(d.clamp_theta(1e8, 1e-6, 1e6), 1e6);
        assert_eq!(d.prob_clamps(), 1);
        assert_eq!(d.coeff_saturations(), 1);
        assert_eq!(d.theta_clamps(), 1);
        assert_eq!(d.total_events(), 3);
        assert!((d.worst_excursion() - (1e8 - 1e6)).abs() < 1.0);
        assert!(!d.is_clean());
    }

    #[test]
    fn nan_is_caught_and_pinned_to_lower_bound() {
        let mut d = Diagnostics::new();
        assert_eq!(d.clamp_prob(f64::NAN, 0.0, 1.0), 0.0);
        assert_eq!(d.prob_clamps(), 1);
        assert!(d.worst_excursion().is_infinite());
    }

    #[test]
    fn merge_accumulates_counters_and_extrema() {
        let mut a = Diagnostics::new();
        let _ = a.clamp_prob(1.5, 0.0, 1.0);
        let mut b = Diagnostics::new();
        let _ = b.clamp_coeff(3.0, 0.0, 1.0);
        b.record_fallback();
        a.merge(&b);
        assert_eq!(a.prob_clamps(), 1);
        assert_eq!(a.coeff_saturations(), 1);
        assert_eq!(a.correlation_fallbacks(), 1);
        assert!((a.worst_excursion() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_every_counter() {
        let mut d = Diagnostics::new();
        let _ = d.clamp_prob(2.0, 0.0, 1.0);
        let text = d.to_string();
        assert!(text.contains("probability clamps:       1"));
        assert!(text.contains("worst excursion"));
    }
}
