//! Per-run numerical diagnostics.
//!
//! The single-pass engine (§4/§4.1) and the multi-output consolidator keep
//! their estimates legal by clamping: propagated flip probabilities and
//! coefficient-weighted products are clamped into `[0, 1]`, and the
//! pairwise Kirkwood correction factor θ in
//! [`crate::consolidate::Consolidator::any_output_error`] is clamped into
//! `[1e-6, 1e6]`. Those clamps are part of the approximation — §4.1's
//! correlation coefficients are first-order, so the products they re-weight
//! can legitimately leave `[0, 1]` — but silently discarding the excursion
//! makes large-benchmark runs unobservable. A [`Diagnostics`] value counts
//! every such event, records the worst excursion magnitude, and tracks the
//! graceful-degradation fallbacks taken when correlation propagation
//! produces non-finite coefficients.

use std::fmt;

/// Slack below which a clamp is considered floating-point rounding and not
/// counted as an event (the value is still clamped).
pub(crate) const CLAMP_SLACK: f64 = 1e-12;

/// Symbolic-engine counters attached to a run that used the BDD backend.
///
/// Aggregated across every per-worker manager the run created (counters
/// sum; peaks and load factors take the maximum), so the numbers describe
/// the whole computation regardless of thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BddEngineStats {
    /// High-water mark of live decision nodes in any one manager.
    pub peak_live_nodes: usize,
    /// Live decision nodes at the end of the run (summed over managers).
    pub live_nodes: usize,
    /// Worst occupied fraction of any manager's unique table.
    pub unique_load: f64,
    /// Operation-cache (ite / restrict) lookups that hit.
    pub cache_hits: u64,
    /// Operation-cache lookups that missed.
    pub cache_misses: u64,
    /// Mark-and-sweep garbage collections run.
    pub gc_runs: u64,
    /// Sifting-based reorder passes run.
    pub reorders: u64,
}

impl BddEngineStats {
    /// Hit fraction of the operation cache (0 when never consulted).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.cache_hits as f64 / total as f64
            }
        }
    }

    /// Folds another engine's counters into this one (sums counters, maxes
    /// extrema).
    pub fn merge(&mut self, other: &BddEngineStats) {
        self.peak_live_nodes = self.peak_live_nodes.max(other.peak_live_nodes);
        self.live_nodes += other.live_nodes;
        self.unique_load = self.unique_load.max(other.unique_load);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.gc_runs += other.gc_runs;
        self.reorders += other.reorders;
    }
}

impl fmt::Display for BddEngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "peak live BDD nodes:      {}", self.peak_live_nodes)?;
        writeln!(f, "unique-table load:        {:.3}", self.unique_load)?;
        writeln!(
            f,
            "op-cache hit rate:        {:.3} ({} hits / {} misses)",
            self.cache_hit_rate(),
            self.cache_hits,
            self.cache_misses
        )?;
        writeln!(f, "GC runs:                  {}", self.gc_runs)?;
        write!(f, "reorder passes:           {}", self.reorders)
    }
}

/// Counters and extrema accumulated over one analysis run.
///
/// Obtained from [`crate::SinglePassResult::diagnostics`], from the
/// consolidator's `*_with` methods, and from [`crate::sweep::DeltaCurves`].
/// Merge several runs with [`Diagnostics::merge`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Diagnostics {
    prob_clamps: u64,
    coeff_saturations: u64,
    theta_clamps: u64,
    correlation_fallbacks: u64,
    worst_excursion: f64,
    bdd: Option<BddEngineStats>,
    tier_exact: u64,
    tier_propagation: u64,
    tier_mc: u64,
    estimator_fallbacks: u64,
    cancellations: u64,
}

impl Diagnostics {
    /// A fresh, all-zero accumulator.
    #[must_use]
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Reconstructs an accumulator from previously-recorded counters, for
    /// deserializing a persisted run. `worst_excursion` is pinned
    /// non-negative (NaN and negatives become 0) so a restored value obeys
    /// the same invariants a live accumulator does.
    #[must_use]
    pub fn restore(
        prob_clamps: u64,
        coeff_saturations: u64,
        theta_clamps: u64,
        correlation_fallbacks: u64,
        worst_excursion: f64,
        bdd: Option<BddEngineStats>,
    ) -> Self {
        Diagnostics {
            prob_clamps,
            coeff_saturations,
            theta_clamps,
            correlation_fallbacks,
            worst_excursion: if worst_excursion > 0.0 {
                worst_excursion
            } else {
                0.0
            },
            bdd,
            ..Diagnostics::default()
        }
    }

    /// Number of probability clamp events: a propagated error probability
    /// left `[0, 1]` by more than floating-point slack and was clamped.
    #[must_use]
    pub fn prob_clamps(&self) -> u64 {
        self.prob_clamps
    }

    /// Number of correlation-coefficient saturation events: a
    /// coefficient-weighted probability product left `[0, 1]` and was
    /// clamped (the §4.1 re-weighting overshot).
    #[must_use]
    pub fn coeff_saturations(&self) -> u64 {
        self.coeff_saturations
    }

    /// Number of θ clamp events in multi-output consolidation (the
    /// pairwise correction factor hit the `1e-6..1e6` guard rails).
    #[must_use]
    pub fn theta_clamps(&self) -> u64 {
        self.theta_clamps
    }

    /// Number of signal pairs whose correlation coefficients came out
    /// non-finite and were dropped, falling back to uncorrelated
    /// propagation for that pair.
    #[must_use]
    pub fn correlation_fallbacks(&self) -> u64 {
        self.correlation_fallbacks
    }

    /// The largest distance by which any clamped quantity left its legal
    /// range (0 when no clamp event occurred).
    #[must_use]
    pub fn worst_excursion(&self) -> f64 {
        self.worst_excursion
    }

    /// Total number of recorded events of any kind.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.prob_clamps + self.coeff_saturations + self.theta_clamps + self.correlation_fallbacks
    }

    /// `true` when the run completed without a single clamp, saturation,
    /// or fallback. BDD engine statistics are informational and do not
    /// affect cleanliness.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_events() == 0
    }

    /// Times the auto-escalating estimator answered with the exact (BDD)
    /// tier.
    #[must_use]
    pub fn tier_exact(&self) -> u64 {
        self.tier_exact
    }

    /// Times the auto-escalating estimator answered with the
    /// propagation-probability tier.
    #[must_use]
    pub fn tier_propagation(&self) -> u64 {
        self.tier_propagation
    }

    /// Times the auto-escalating estimator answered with the Monte Carlo
    /// refinement tier.
    #[must_use]
    pub fn tier_mc(&self) -> u64 {
        self.tier_mc
    }

    /// Times the exact tier failed (budget trip or analysis error) and
    /// the estimator fell back to a cheaper tier. Fallbacks are never
    /// silent: the count survives merges and serialization.
    #[must_use]
    pub fn estimator_fallbacks(&self) -> u64 {
        self.estimator_fallbacks
    }

    /// Records that the exact tier produced this run's answer.
    pub fn record_tier_exact(&mut self) {
        self.tier_exact += 1;
    }

    /// Records that the propagation-probability tier produced this run's
    /// answer.
    pub fn record_tier_propagation(&mut self) {
        self.tier_propagation += 1;
    }

    /// Records that the Monte Carlo tier produced this run's answer.
    pub fn record_tier_mc(&mut self) {
        self.tier_mc += 1;
    }

    /// Records one exact-tier failure that forced a fallback to a cheaper
    /// tier.
    pub fn record_estimator_fallback(&mut self) {
        self.estimator_fallbacks += 1;
    }

    /// Times a computation under this accumulator was cancelled (deadline
    /// or explicit cancel) before it completed. Cancelled work never
    /// produces a partial result; this counter is how the abandonment
    /// stays visible.
    #[must_use]
    pub fn cancellations(&self) -> u64 {
        self.cancellations
    }

    /// Records one cancelled computation.
    pub fn record_cancellation(&mut self) {
        self.cancellations += 1;
    }

    /// Symbolic-engine statistics, present when the run used the BDD
    /// backend.
    #[must_use]
    pub fn bdd_stats(&self) -> Option<&BddEngineStats> {
        self.bdd.as_ref()
    }

    /// Attaches (or merges in) BDD engine statistics for this run.
    pub fn record_bdd_stats(&mut self, stats: BddEngineStats) {
        match &mut self.bdd {
            Some(existing) => existing.merge(&stats),
            slot @ None => *slot = Some(stats),
        }
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &Diagnostics) {
        self.prob_clamps += other.prob_clamps;
        self.coeff_saturations += other.coeff_saturations;
        self.theta_clamps += other.theta_clamps;
        self.correlation_fallbacks += other.correlation_fallbacks;
        self.worst_excursion = self.worst_excursion.max(other.worst_excursion);
        self.tier_exact += other.tier_exact;
        self.tier_propagation += other.tier_propagation;
        self.tier_mc += other.tier_mc;
        self.estimator_fallbacks += other.estimator_fallbacks;
        self.cancellations += other.cancellations;
        if let Some(stats) = &other.bdd {
            self.record_bdd_stats(*stats);
        }
    }

    /// Clamps `value` into `[lo, hi]`, recording a probability-clamp event
    /// when the excursion exceeds the rounding slack.
    #[inline]
    pub(crate) fn clamp_prob(&mut self, value: f64, lo: f64, hi: f64) -> f64 {
        self.clamp_counted(value, lo, hi, ClampKind::Probability)
    }

    /// Clamps a coefficient-weighted product, recording a saturation event.
    #[inline]
    pub(crate) fn clamp_coeff(&mut self, value: f64, lo: f64, hi: f64) -> f64 {
        self.clamp_counted(value, lo, hi, ClampKind::Coefficient)
    }

    /// Clamps the consolidation θ factor, recording a θ-clamp event.
    #[inline]
    pub(crate) fn clamp_theta(&mut self, value: f64, lo: f64, hi: f64) -> f64 {
        self.clamp_counted(value, lo, hi, ClampKind::Theta)
    }

    /// Records one correlation-propagation fallback (a pair dropped to
    /// independence because its coefficients were non-finite).
    #[inline]
    pub(crate) fn record_fallback(&mut self) {
        self.correlation_fallbacks += 1;
    }

    #[inline]
    fn clamp_counted(&mut self, value: f64, lo: f64, hi: f64, kind: ClampKind) -> f64 {
        debug_assert!(lo <= hi);
        if value.is_nan() {
            // NaN clamps to the lower bound; record it as a (large) event
            // so it never passes silently.
            self.count(kind);
            self.worst_excursion = f64::INFINITY;
            return lo;
        }
        let excursion = if value < lo {
            lo - value
        } else if value > hi {
            value - hi
        } else {
            return value;
        };
        if excursion > CLAMP_SLACK {
            self.count(kind);
            self.worst_excursion = self.worst_excursion.max(excursion);
        }
        value.clamp(lo, hi)
    }

    #[inline]
    fn count(&mut self, kind: ClampKind) {
        match kind {
            ClampKind::Probability => self.prob_clamps += 1,
            ClampKind::Coefficient => self.coeff_saturations += 1,
            ClampKind::Theta => self.theta_clamps += 1,
        }
    }
}

#[derive(Clone, Copy)]
enum ClampKind {
    Probability,
    Coefficient,
    Theta,
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "probability clamps:       {}", self.prob_clamps)?;
        writeln!(f, "coefficient saturations:  {}", self.coeff_saturations)?;
        writeln!(f, "theta clamps:             {}", self.theta_clamps)?;
        writeln!(
            f,
            "correlation fallbacks:    {}",
            self.correlation_fallbacks
        )?;
        write!(f, "worst excursion:          {:.3e}", self.worst_excursion)?;
        let tiers = self.tier_exact + self.tier_propagation + self.tier_mc;
        if tiers + self.estimator_fallbacks > 0 {
            write!(
                f,
                "\nestimator tiers:          exact {} / propagation {} / mc {} (fallbacks {})",
                self.tier_exact, self.tier_propagation, self.tier_mc, self.estimator_fallbacks
            )?;
        }
        if self.cancellations > 0 {
            write!(f, "\ncancellations:            {}", self.cancellations)?;
        }
        if let Some(stats) = &self.bdd {
            write!(f, "\n{stats}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through_uncounted() {
        let mut d = Diagnostics::new();
        assert_eq!(d.clamp_prob(0.5, 0.0, 1.0), 0.5);
        assert_eq!(d.clamp_prob(0.0, 0.0, 1.0), 0.0);
        assert_eq!(d.clamp_prob(1.0, 0.0, 1.0), 1.0);
        assert!(d.is_clean());
    }

    #[test]
    fn rounding_slack_is_clamped_but_not_counted() {
        let mut d = Diagnostics::new();
        let v = d.clamp_prob(1.0 + 1e-15, 0.0, 1.0);
        assert_eq!(v, 1.0);
        assert!(d.is_clean());
    }

    #[test]
    fn real_excursions_are_counted_with_magnitude() {
        let mut d = Diagnostics::new();
        assert_eq!(d.clamp_prob(1.25, 0.0, 1.0), 1.0);
        assert_eq!(d.clamp_coeff(-0.5, 0.0, 1.0), 0.0);
        assert_eq!(d.clamp_theta(1e8, 1e-6, 1e6), 1e6);
        assert_eq!(d.prob_clamps(), 1);
        assert_eq!(d.coeff_saturations(), 1);
        assert_eq!(d.theta_clamps(), 1);
        assert_eq!(d.total_events(), 3);
        assert!((d.worst_excursion() - (1e8 - 1e6)).abs() < 1.0);
        assert!(!d.is_clean());
    }

    #[test]
    fn nan_is_caught_and_pinned_to_lower_bound() {
        let mut d = Diagnostics::new();
        assert_eq!(d.clamp_prob(f64::NAN, 0.0, 1.0), 0.0);
        assert_eq!(d.prob_clamps(), 1);
        assert!(d.worst_excursion().is_infinite());
    }

    #[test]
    fn merge_accumulates_counters_and_extrema() {
        let mut a = Diagnostics::new();
        let _ = a.clamp_prob(1.5, 0.0, 1.0);
        let mut b = Diagnostics::new();
        let _ = b.clamp_coeff(3.0, 0.0, 1.0);
        b.record_fallback();
        a.merge(&b);
        assert_eq!(a.prob_clamps(), 1);
        assert_eq!(a.coeff_saturations(), 1);
        assert_eq!(a.correlation_fallbacks(), 1);
        assert!((a.worst_excursion() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bdd_stats_attach_merge_and_display() {
        let mut d = Diagnostics::new();
        assert!(d.bdd_stats().is_none());
        d.record_bdd_stats(BddEngineStats {
            peak_live_nodes: 1000,
            live_nodes: 400,
            unique_load: 0.5,
            cache_hits: 30,
            cache_misses: 70,
            gc_runs: 2,
            reorders: 1,
        });
        // Informational only: a run with engine stats is still clean.
        assert!(d.is_clean());
        let mut other = Diagnostics::new();
        other.record_bdd_stats(BddEngineStats {
            peak_live_nodes: 2000,
            live_nodes: 100,
            unique_load: 0.25,
            cache_hits: 70,
            cache_misses: 30,
            gc_runs: 1,
            reorders: 0,
        });
        d.merge(&other);
        let s = d.bdd_stats().unwrap();
        assert_eq!(s.peak_live_nodes, 2000);
        assert_eq!(s.live_nodes, 500);
        assert_eq!(s.cache_hits, 100);
        assert_eq!(s.gc_runs, 3);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
        let text = d.to_string();
        assert!(text.contains("peak live BDD nodes:      2000"));
        assert!(text.contains("op-cache hit rate"));
    }

    #[test]
    fn cancellations_count_merge_and_display() {
        let mut d = Diagnostics::new();
        assert_eq!(d.cancellations(), 0);
        assert!(!d.to_string().contains("cancellations"));
        d.record_cancellation();
        let mut other = Diagnostics::new();
        other.record_cancellation();
        d.merge(&other);
        assert_eq!(d.cancellations(), 2);
        assert!(d.to_string().contains("cancellations:            2"));
        // Informational like BDD stats: cancellations don't dirty a run's
        // numeric cleanliness.
        assert!(d.is_clean());
    }

    #[test]
    fn display_lists_every_counter() {
        let mut d = Diagnostics::new();
        let _ = d.clamp_prob(2.0, 0.0, 1.0);
        let text = d.to_string();
        assert!(text.contains("probability clamps:       1"));
        assert!(text.contains("worst excursion"));
    }
}
