//! Per-node gate failure probabilities (the ε⃗ vector of the paper).

use rand::Rng;
use relogic_netlist::{Circuit, NodeId};

/// The vector of BSC crossover probabilities `ε⃗`, one entry per node.
///
/// Sources (primary inputs, constants) default to ε = 0 — the paper's
/// setting, where noise originates at gates — but may be given nonzero
/// values to model noisy inputs.
///
/// # Examples
///
/// ```
/// use relogic_netlist::Circuit;
/// use relogic::GateEps;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.not(a);
/// c.add_output("y", g);
///
/// let eps = GateEps::uniform(&c, 0.1);
/// assert_eq!(eps.get(a), 0.0); // inputs are noise-free
/// assert_eq!(eps.get(g), 0.1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GateEps {
    values: Vec<f64>,
}

impl GateEps {
    /// All nodes noise-free.
    #[must_use]
    pub fn zero(circuit: &Circuit) -> Self {
        GateEps {
            values: vec![0.0; circuit.len()],
        }
    }

    /// Every logic gate fails with probability `eps`; sources are
    /// noise-free. This is the configuration used throughout the paper's
    /// Table 2 and figure sweeps ("the same value of ε has been used for
    /// all the gates").
    ///
    /// # Panics
    ///
    /// Panics if `eps` is outside `[0, 1]`.
    #[must_use]
    pub fn uniform(circuit: &Circuit, eps: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "ε = {eps} out of [0,1]");
        GateEps {
            values: circuit
                .iter()
                .map(|(_, n)| if n.kind().is_gate() { eps } else { 0.0 })
                .collect(),
        }
    }

    /// Independent per-gate ε drawn uniformly from `[lo, hi]` — the Fig. 7
    /// configuration ("ε for each gate was derived from a uniform random
    /// distribution over the interval [0, 0.5]").
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or outside `[0, 1]`.
    #[must_use]
    pub fn random_uniform<R: Rng + ?Sized>(
        circuit: &Circuit,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            0.0 <= lo && lo <= hi && hi <= 1.0,
            "invalid ε range [{lo}, {hi}]"
        );
        GateEps {
            values: circuit
                .iter()
                .map(|(_, n)| {
                    if n.kind().is_gate() {
                        rng.gen_range(lo..=hi)
                    } else {
                        0.0
                    }
                })
                .collect(),
        }
    }

    /// Builds an ε vector from a per-node closure.
    ///
    /// # Panics
    ///
    /// Panics if the closure returns a value outside `[0, 1]`.
    #[must_use]
    pub fn from_fn(circuit: &Circuit, mut f: impl FnMut(NodeId) -> f64) -> Self {
        GateEps {
            values: circuit
                .node_ids()
                .map(|id| {
                    let e = f(id);
                    assert!((0.0..=1.0).contains(&e), "ε({id}) = {e} out of [0,1]");
                    e
                })
                .collect(),
        }
    }

    /// ε of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn get(&self, node: NodeId) -> f64 {
        self.values[node.index()]
    }

    /// Sets ε of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `eps` is outside `[0, 1]`.
    pub fn set(&mut self, node: NodeId, eps: f64) {
        assert!((0.0..=1.0).contains(&eps), "ε = {eps} out of [0,1]");
        self.values[node.index()] = eps;
    }

    /// The raw per-node slice (indexed by [`NodeId::index`]), as consumed by
    /// `relogic_sim::estimate`.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the vector covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over nodes with nonzero ε.
    pub fn noisy_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &e)| e > 0.0)
            .map(|(i, _)| NodeId::from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn circuit() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        let h = c.not(g);
        c.add_output("y", h);
        c
    }

    #[test]
    fn uniform_skips_sources() {
        let c = circuit();
        let eps = GateEps::uniform(&c, 0.2);
        assert_eq!(eps.as_slice(), &[0.0, 0.0, 0.2, 0.2]);
        assert_eq!(eps.noisy_nodes().count(), 2);
    }

    #[test]
    fn zero_is_all_zero() {
        let c = circuit();
        assert!(GateEps::zero(&c).noisy_nodes().next().is_none());
    }

    #[test]
    fn set_and_get() {
        let c = circuit();
        let mut eps = GateEps::zero(&c);
        let g = NodeId::from_index(2);
        eps.set(g, 0.5);
        assert_eq!(eps.get(g), 0.5);
        assert_eq!(eps.len(), 4);
    }

    #[test]
    fn random_uniform_stays_in_range() {
        let c = circuit();
        let mut rng = SmallRng::seed_from_u64(1);
        let eps = GateEps::random_uniform(&c, 0.0, 0.5, &mut rng);
        for id in c.node_ids() {
            let e = eps.get(id);
            assert!((0.0..=0.5).contains(&e));
            if !c.node(id).kind().is_gate() {
                assert_eq!(e, 0.0);
            }
        }
    }

    #[test]
    fn from_fn_builds_arbitrary_vectors() {
        let c = circuit();
        let eps = GateEps::from_fn(&c, |id| if id.index() == 3 { 0.4 } else { 0.0 });
        assert_eq!(eps.get(NodeId::from_index(3)), 0.4);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_eps_rejected() {
        let c = circuit();
        let _ = GateEps::uniform(&c, 1.2);
    }
}
