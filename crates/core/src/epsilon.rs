//! Per-node gate failure probabilities (the ε⃗ vector of the paper).

use crate::RelogicError;
use rand::Rng;
use relogic_netlist::{Circuit, NodeId};

/// Validates one ε value against `[0, 1]` (finiteness included).
fn check_eps(node: Option<NodeId>, eps: f64) -> Result<(), RelogicError> {
    if eps.is_finite() && (0.0..=1.0).contains(&eps) {
        Ok(())
    } else {
        Err(RelogicError::InvalidEpsilon {
            node,
            value: eps,
            max: 1.0,
        })
    }
}

/// The vector of BSC crossover probabilities `ε⃗`, one entry per node.
///
/// Sources (primary inputs, constants) default to ε = 0 — the paper's
/// setting, where noise originates at gates — but may be given nonzero
/// values to model noisy inputs.
///
/// # Examples
///
/// ```
/// use relogic_netlist::Circuit;
/// use relogic::GateEps;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.not(a);
/// c.add_output("y", g);
///
/// let eps = GateEps::uniform(&c, 0.1);
/// assert_eq!(eps.get(a), 0.0); // inputs are noise-free
/// assert_eq!(eps.get(g), 0.1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GateEps {
    values: Vec<f64>,
}

impl GateEps {
    /// All nodes noise-free.
    #[must_use]
    pub fn zero(circuit: &Circuit) -> Self {
        GateEps {
            values: vec![0.0; circuit.len()],
        }
    }

    /// Every logic gate fails with probability `eps`; sources are
    /// noise-free. This is the configuration used throughout the paper's
    /// Table 2 and figure sweeps ("the same value of ε has been used for
    /// all the gates").
    ///
    /// # Panics
    ///
    /// Panics if `eps` is outside `[0, 1]`.
    #[must_use]
    pub fn uniform(circuit: &Circuit, eps: f64) -> Self {
        match GateEps::try_uniform(circuit, eps) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`GateEps::uniform`]: rejects non-finite or out-of-range
    /// `eps` with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RelogicError::InvalidEpsilon`] if `eps` is not a finite value in
    /// `[0, 1]`.
    pub fn try_uniform(circuit: &Circuit, eps: f64) -> Result<Self, RelogicError> {
        check_eps(None, eps)?;
        Ok(GateEps {
            values: circuit
                .iter()
                .map(|(_, n)| if n.kind().is_gate() { eps } else { 0.0 })
                .collect(),
        })
    }

    /// Independent per-gate ε drawn uniformly from `[lo, hi]` — the Fig. 7
    /// configuration ("ε for each gate was derived from a uniform random
    /// distribution over the interval [0, 0.5]").
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or outside `[0, 1]`.
    #[must_use]
    pub fn random_uniform<R: Rng + ?Sized>(
        circuit: &Circuit,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        match GateEps::try_random_uniform(circuit, lo, hi, rng) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`GateEps::random_uniform`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::InvalidGrid`] if the range is not an increasing,
    /// finite subrange of `[0, 1]`.
    pub fn try_random_uniform<R: Rng + ?Sized>(
        circuit: &Circuit,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Result<Self, RelogicError> {
        if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi && hi <= 1.0) {
            return Err(RelogicError::InvalidGrid {
                message: format!("invalid ε range [{lo}, {hi}]"),
            });
        }
        Ok(GateEps {
            values: circuit
                .iter()
                .map(|(_, n)| {
                    if n.kind().is_gate() {
                        rng.gen_range(lo..=hi)
                    } else {
                        0.0
                    }
                })
                .collect(),
        })
    }

    /// Builds an ε vector from a per-node closure.
    ///
    /// # Panics
    ///
    /// Panics if the closure returns a value outside `[0, 1]`.
    #[must_use]
    pub fn from_fn(circuit: &Circuit, f: impl FnMut(NodeId) -> f64) -> Self {
        match GateEps::try_from_fn(circuit, f) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`GateEps::from_fn`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::InvalidEpsilon`] naming the offending node if the
    /// closure returns a non-finite value or one outside `[0, 1]`.
    pub fn try_from_fn(
        circuit: &Circuit,
        mut f: impl FnMut(NodeId) -> f64,
    ) -> Result<Self, RelogicError> {
        let mut values = Vec::with_capacity(circuit.len());
        for id in circuit.node_ids() {
            let e = f(id);
            check_eps(Some(id), e)?;
            values.push(e);
        }
        Ok(GateEps { values })
    }

    /// ε of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn get(&self, node: NodeId) -> f64 {
        self.values[node.index()]
    }

    /// Sets ε of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `eps` is outside `[0, 1]`.
    pub fn set(&mut self, node: NodeId, eps: f64) {
        if let Err(e) = self.try_set(node, eps) {
            panic!("{e}");
        }
    }

    /// Fallible [`GateEps::set`]: validates both the node index and the
    /// value.
    ///
    /// # Errors
    ///
    /// [`RelogicError::InvalidEpsilon`] for a non-finite or out-of-range
    /// value, [`RelogicError::LengthMismatch`] for an out-of-range node.
    pub fn try_set(&mut self, node: NodeId, eps: f64) -> Result<(), RelogicError> {
        check_eps(Some(node), eps)?;
        match self.values.get_mut(node.index()) {
            Some(slot) => {
                *slot = eps;
                Ok(())
            }
            None => Err(RelogicError::LengthMismatch {
                what: "ε node index",
                expected: self.values.len(),
                actual: node.index(),
            }),
        }
    }

    /// The raw per-node slice (indexed by [`NodeId::index`]), as consumed by
    /// `relogic_sim::estimate`.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the vector covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over nodes with nonzero ε.
    pub fn noisy_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &e)| e > 0.0)
            .map(|(i, _)| NodeId::from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn circuit() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        let h = c.not(g);
        c.add_output("y", h);
        c
    }

    #[test]
    fn uniform_skips_sources() {
        let c = circuit();
        let eps = GateEps::uniform(&c, 0.2);
        assert_eq!(eps.as_slice(), &[0.0, 0.0, 0.2, 0.2]);
        assert_eq!(eps.noisy_nodes().count(), 2);
    }

    #[test]
    fn zero_is_all_zero() {
        let c = circuit();
        assert!(GateEps::zero(&c).noisy_nodes().next().is_none());
    }

    #[test]
    fn set_and_get() {
        let c = circuit();
        let mut eps = GateEps::zero(&c);
        let g = NodeId::from_index(2);
        eps.set(g, 0.5);
        assert_eq!(eps.get(g), 0.5);
        assert_eq!(eps.len(), 4);
    }

    #[test]
    fn random_uniform_stays_in_range() {
        let c = circuit();
        let mut rng = SmallRng::seed_from_u64(1);
        let eps = GateEps::random_uniform(&c, 0.0, 0.5, &mut rng);
        for id in c.node_ids() {
            let e = eps.get(id);
            assert!((0.0..=0.5).contains(&e));
            if !c.node(id).kind().is_gate() {
                assert_eq!(e, 0.0);
            }
        }
    }

    #[test]
    fn from_fn_builds_arbitrary_vectors() {
        let c = circuit();
        let eps = GateEps::from_fn(&c, |id| if id.index() == 3 { 0.4 } else { 0.0 });
        assert_eq!(eps.get(NodeId::from_index(3)), 0.4);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_eps_rejected() {
        let c = circuit();
        let _ = GateEps::uniform(&c, 1.2);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        let c = circuit();
        assert!(matches!(
            GateEps::try_uniform(&c, f64::NAN),
            Err(RelogicError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            GateEps::try_uniform(&c, 1.0 + 1e-9),
            Err(RelogicError::InvalidEpsilon { .. })
        ));
        assert!(GateEps::try_uniform(&c, 0.5).is_ok());

        let mut eps = GateEps::zero(&c);
        assert!(matches!(
            eps.try_set(NodeId::from_index(2), f64::INFINITY),
            Err(RelogicError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            eps.try_set(NodeId::from_index(99), 0.1),
            Err(RelogicError::LengthMismatch { .. })
        ));
        assert!(eps.try_set(NodeId::from_index(2), 0.3).is_ok());
        assert_eq!(eps.get(NodeId::from_index(2)), 0.3);

        assert!(matches!(
            GateEps::try_from_fn(&c, |_| -0.1),
            Err(RelogicError::InvalidEpsilon { node: Some(_), .. })
        ));

        let mut rng = SmallRng::seed_from_u64(5);
        assert!(matches!(
            GateEps::try_random_uniform(&c, 0.4, 0.1, &mut rng),
            Err(RelogicError::InvalidGrid { .. })
        ));
    }
}
