//! Typed errors for the analytical engines.
//!
//! Every public analysis entry point has a fallible `try_*` variant that
//! validates its inputs and returns a [`RelogicError`] instead of panicking.
//! The original infallible APIs remain as thin wrappers for callers that
//! have already validated their inputs (they panic with the error's
//! `Display` text on violation).

use relogic_netlist::NodeId;
use relogic_sim::{Cancelled, SimError};
use std::error::Error;
use std::fmt;

/// Errors returned by the fallible analysis entry points of this crate.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RelogicError {
    /// A gate failure probability is non-finite or outside the accepted
    /// range (`[0, 1]` normally; `[0, 0.5]` under the strict von Neumann
    /// BSC policy, where ε > 0.5 means the gate computes the complement
    /// more often than the function).
    InvalidEpsilon {
        /// The node carrying the offending ε, when known.
        node: Option<NodeId>,
        /// The offending value.
        value: f64,
        /// Upper end of the accepted range (1.0, or 0.5 under strict).
        max: f64,
    },
    /// Two per-node structures cover different node counts (e.g. an ε map
    /// or weight table computed for a different circuit).
    LengthMismatch {
        /// What was being matched against the circuit.
        what: &'static str,
        /// Nodes in the circuit.
        expected: usize,
        /// Entries supplied.
        actual: usize,
    },
    /// The circuit has no nodes; there is nothing to analyze.
    EmptyCircuit,
    /// The circuit has more nodes than the engine's compact `u32` node
    /// keys (or the BDD variable space) can index.
    CircuitTooLarge {
        /// Number of nodes in the circuit.
        nodes: usize,
    },
    /// A gate's fanin count exceeds what the analytical engines enumerate.
    ArityExceeded {
        /// The offending gate.
        node: NodeId,
        /// Its fanin count.
        arity: usize,
        /// The supported maximum.
        max: usize,
    },
    /// An input distribution does not match the circuit (wrong input count
    /// or a probability outside `[0, 1]`).
    DistributionMismatch {
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// An output pair is malformed (not strictly increasing or out of
    /// range).
    InvalidOutputPair {
        /// First output index.
        a: usize,
        /// Second output index.
        b: usize,
        /// Number of primary outputs.
        outputs: usize,
    },
    /// A consolidation query named an output pair whose joint value
    /// distribution was not precomputed.
    MissingOutputPair {
        /// First output index.
        a: usize,
        /// Second output index.
        b: usize,
    },
    /// An ε-grid request is malformed (zero points or an invalid range).
    InvalidGrid {
        /// Human-readable description of the problem.
        message: String,
    },
    /// Strict numeric policy: an intermediate quantity left its legal
    /// range (or became non-finite) by more than the tolerance, instead of
    /// being silently clamped.
    NumericRange {
        /// Which quantity went out of range.
        context: &'static str,
        /// The offending value.
        value: f64,
        /// Legal lower bound.
        lo: f64,
        /// Legal upper bound.
        hi: f64,
    },
    /// A simulation-backend failure (zero pattern budget, bad ε vector …).
    Sim(SimError),
    /// A budgeted exact (BDD) computation exceeded its live-node budget
    /// and aborted. The tiered estimator treats this as the signal to
    /// fall back to a cheaper backend.
    BddBudgetExceeded {
        /// Live decision nodes when the budget check tripped.
        live_nodes: usize,
        /// The configured live-node budget.
        budget: usize,
    },
    /// The run's [`relogic_sim::CancelToken`] fired (deadline or explicit
    /// cancel) before the work completed; no partial result escapes.
    /// Unlike [`RelogicError::BddBudgetExceeded`], this is *not* a
    /// fall-back signal — the caller asked the whole computation to stop.
    Cancelled(Cancelled),
}

impl fmt::Display for RelogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelogicError::InvalidEpsilon { node, value, max } => {
                // `{max}` renders 1.0 as "1", keeping the historical
                // "out of [0,1]" wording asserted on by callers.
                match node {
                    Some(n) => write!(f, "ε({n}) = {value} out of [0,{max}]")?,
                    None => write!(f, "ε = {value} out of [0,{max}]")?,
                }
                if *max < 1.0 {
                    write!(f, " (strict von Neumann BSC policy)")?;
                }
                Ok(())
            }
            RelogicError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} covers {actual} nodes, circuit has {expected}"),
            RelogicError::EmptyCircuit => write!(f, "circuit has no nodes"),
            RelogicError::CircuitTooLarge { nodes } => {
                write!(
                    f,
                    "circuit has {nodes} nodes, exceeding the engine's index space"
                )
            }
            RelogicError::ArityExceeded { node, arity, max } => write!(
                f,
                "gate {node} has arity {arity}, exceeding the analysis limit {max}"
            ),
            RelogicError::DistributionMismatch { message } => {
                write!(f, "input distribution mismatch: {message}")
            }
            RelogicError::InvalidOutputPair { a, b, outputs } => {
                write!(f, "invalid output pair ({a},{b}) with {outputs} outputs")
            }
            RelogicError::MissingOutputPair { a, b } => {
                write!(f, "output pair ({a},{b}) was not precomputed")
            }
            RelogicError::InvalidGrid { message } => write!(f, "invalid ε grid: {message}"),
            RelogicError::NumericRange {
                context,
                value,
                lo,
                hi,
            } => write!(
                f,
                "strict numeric policy violation: {context} = {value} outside [{lo}, {hi}]"
            ),
            RelogicError::Sim(e) => write!(f, "simulation error: {e}"),
            RelogicError::BddBudgetExceeded { live_nodes, budget } => write!(
                f,
                "exact BDD analysis exceeded its live-node budget ({live_nodes} live nodes > {budget})"
            ),
            RelogicError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl Error for RelogicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RelogicError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RelogicError {
    fn from(e: SimError) -> Self {
        match e {
            // Keep cancellation typed across the layer boundary: callers
            // match `RelogicError::Cancelled` regardless of which engine
            // (graph MC, tape, sweep, BDD) noticed the token.
            SimError::Cancelled(c) => RelogicError::Cancelled(c),
            other => RelogicError::Sim(other),
        }
    }
}

impl From<Cancelled> for RelogicError {
    fn from(c: Cancelled) -> Self {
        RelogicError::Cancelled(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_legacy_wording() {
        let e = RelogicError::InvalidEpsilon {
            node: None,
            value: 1.2,
            max: 1.0,
        };
        assert!(e.to_string().contains("out of [0,1]"), "{e}");
        let e = RelogicError::ArityExceeded {
            node: NodeId::from_index(4),
            arity: 9,
            max: 8,
        };
        assert!(e.to_string().contains("exceeding the analysis limit"));
        let e = RelogicError::InvalidOutputPair {
            a: 1,
            b: 1,
            outputs: 2,
        };
        assert!(e.to_string().contains("invalid output pair"));
    }

    #[test]
    fn sim_errors_wrap_with_source() {
        let e = RelogicError::from(SimError::ZeroPatternBudget);
        assert!(e.to_string().contains("pattern budget"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn sim_cancellation_stays_typed_across_the_boundary() {
        let c = Cancelled {
            after: std::time::Duration::from_millis(52),
            checked_at: "mc_chunk",
        };
        let e = RelogicError::from(SimError::Cancelled(c));
        assert_eq!(e, RelogicError::Cancelled(c));
        assert!(e.to_string().contains("cancelled after"), "{e}");
        assert!(e.to_string().contains("mc_chunk"), "{e}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RelogicError>();
    }
}
