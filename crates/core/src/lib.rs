//! Accurate and scalable reliability analysis of logic circuits.
//!
//! Rust reproduction of *M. R. Choudhury and K. Mohanram, "Accurate and
//! scalable reliability analysis of logic circuits", DATE 2007*. Every gate
//! is modelled as a binary symmetric channel that flips its output with
//! probability ε (the von Neumann noise model); the crate computes the
//! probability `δ_y(ε⃗)` that each primary output is in error, without Monte
//! Carlo simulation:
//!
//! * [`ObservabilityMatrix`] — §3's observability-based analysis with the
//!   closed form `δ_y = ½(1 − Π_i (1 − 2 ε_i o_i))`, exact for single gate
//!   failures (soft-error rate estimation).
//! * [`SinglePass`] — §4's single-pass algorithm: one topological sweep
//!   propagating per-signal `Pr(0→1)`/`Pr(1→0)` through weight-vector-
//!   conditioned gate models, with §4.1's correlation coefficients for
//!   reconvergent fanout.
//! * [`Weights`] — the ε-independent weight vectors (joint fanin
//!   distributions) and signal probabilities, computed exactly with BDDs or
//!   estimated by random-pattern simulation.
//! * [`consolidate`] — multi-output "at least one output wrong"
//!   consolidation using output-pair correlations.
//! * [`applications`] — §5.1's redundancy-free exploration: per-node
//!   asymmetric error reports and selective hardening.
//! * [`baselines`] — the competing §2 analyses (von Neumann-style
//!   compositional rules and a PTM-equivalent exact engine), for measured
//!   comparisons instead of cited ones.
//!
//! # Examples
//!
//! ```
//! use relogic::{Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights};
//! use relogic_netlist::Circuit;
//!
//! // y = (a & b) | c with every gate failing with probability 0.05.
//! let mut c = Circuit::new("aoi");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let cin = c.add_input("cin");
//! let g = c.and([a, b]);
//! let y = c.or([g, cin]);
//! c.add_output("y", y);
//!
//! let weights = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
//! let engine = SinglePass::new(&c, &weights, SinglePassOptions::default());
//! let result = engine.run(&GateEps::uniform(&c, 0.05));
//! let delta = result.per_output()[0];
//! assert!(delta > 0.0 && delta < 0.15);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod applications;
mod backend;
pub mod baselines;
pub mod consolidate;
mod diagnostics;
mod epsilon;
mod error;
pub mod metrics;
mod observability;
mod single_pass;
pub mod sweep;
mod tape;
mod weights;

pub use backend::{Backend, InputDistribution};
pub use diagnostics::{BddEngineStats, Diagnostics};
pub use epsilon::GateEps;
pub use error::RelogicError;
pub use observability::ObservabilityMatrix;
pub use relogic_sim::{CancelToken, Cancelled};
pub use single_pass::{CorrCoeffs, ErrorEvent, SinglePass, SinglePassOptions, SinglePassResult};
pub use tape::{SweepPoint, SweepTape};
pub use weights::{joint_value_distribution, Weights, MAX_ANALYSIS_ARITY};
