//! Accuracy metrics for comparing analytical estimates against a reference
//! (Monte Carlo or exhaustive), matching how the paper reports Table 2:
//! *"the error in δ(ε⃗) with respect to Monte Carlo simulation is measured,
//! and the average error over all outputs is reported"* (in %).

/// Relative error of `estimate` against `reference`, in percent.
///
/// When the reference is (numerically) zero, the absolute error in
/// percentage points is reported instead, so noise-free configurations do
/// not divide by zero.
#[must_use]
pub fn percent_error(estimate: f64, reference: f64) -> f64 {
    const FLOOR: f64 = 1e-9;
    if reference.abs() < FLOOR {
        (estimate - reference).abs() * 100.0
    } else {
        (estimate - reference).abs() / reference.abs() * 100.0
    }
}

/// Per-output percent errors.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn percent_errors(estimate: &[f64], reference: &[f64]) -> Vec<f64> {
    assert_eq!(estimate.len(), reference.len());
    estimate
        .iter()
        .zip(reference)
        .map(|(&e, &r)| percent_error(e, r))
        .collect()
}

/// Average percent error over all outputs — the Table 2 statistic.
///
/// Returns 0 for empty slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn average_percent_error(estimate: &[f64], reference: &[f64]) -> f64 {
    let errs = percent_errors(estimate, reference);
    if errs.is_empty() {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        let n = errs.len() as f64;
        errs.iter().sum::<f64>() / n
    }
}

/// Maximum absolute error over all outputs.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn max_abs_error(estimate: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(estimate.len(), reference.len());
    estimate
        .iter()
        .zip(reference)
        .map(|(&e, &r)| (e - r).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert!((percent_error(0.11, 0.1) - 10.0).abs() < 1e-9);
        assert_eq!(percent_error(0.1, 0.1), 0.0);
    }

    #[test]
    fn zero_reference_uses_absolute() {
        assert!((percent_error(0.005, 0.0) - 0.5).abs() < 1e-12);
        assert_eq!(percent_error(0.0, 0.0), 0.0);
    }

    #[test]
    fn averages_and_maxima() {
        let est = [0.11, 0.2];
        let refr = [0.1, 0.2];
        assert!((average_percent_error(&est, &refr) - 5.0).abs() < 1e-9);
        assert!((max_abs_error(&est, &refr) - 0.01).abs() < 1e-12);
        assert_eq!(average_percent_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = percent_errors(&[0.1], &[0.1, 0.2]);
    }
}
