//! Observability-based reliability analysis (§3 of the paper).
//!
//! The *observability* `o_i` of node `i` at output `y` is the probability
//! (over the input distribution) that flipping node `i` changes `y` in the
//! noise-free circuit. Given observabilities, the paper derives the closed
//! form (Eq. 3)
//!
//! ```text
//! δ_y(ε⃗) = ½ · (1 − Π_i (1 − 2 ε_i o_i))
//! ```
//!
//! which is exact when at most one gate fails (hence its use for soft-error
//! rate estimation) and accurate whenever multiple simultaneous failures
//! are improbable.

use crate::{Backend, GateEps, InputDistribution, RelogicError};
use relogic_bdd::{BddManager, CircuitBdds, VarOrder};
use relogic_netlist::{Circuit, NodeId};

/// Per-node, per-output noiseless observabilities.
#[derive(Clone, Debug)]
pub struct ObservabilityMatrix {
    per_output: Vec<Vec<f64>>, // [node][output]
    any_output: Vec<f64>,
}

impl ObservabilityMatrix {
    /// Computes observabilities for every node of `circuit`.
    ///
    /// With [`Backend::Bdd`] the computation is exact: an auxiliary
    /// variable is spliced in at each node and the Boolean difference of
    /// each output with respect to it is weighted by the input
    /// distribution. With [`Backend::Simulation`] observabilities are
    /// estimated by parallel-pattern fault simulation.
    ///
    /// # Panics
    ///
    /// Panics if the input distribution does not match the circuit.
    #[must_use]
    pub fn compute(circuit: &Circuit, dist: &InputDistribution, backend: Backend) -> Self {
        match Self::try_compute(circuit, dist, backend) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ObservabilityMatrix::compute`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::DistributionMismatch`] if the input distribution
    /// does not match the circuit, or [`RelogicError::CircuitTooLarge`] if
    /// the circuit exhausts the BDD variable space.
    pub fn try_compute(
        circuit: &Circuit,
        dist: &InputDistribution,
        backend: Backend,
    ) -> Result<Self, RelogicError> {
        let _ = dist.try_position_probs(circuit)?;
        match backend {
            Backend::Bdd => Self::compute_bdd(circuit, dist),
            Backend::Simulation { patterns, seed } => {
                let sampler = relogic_sim::InputSampler::independent(&dist.position_probs(circuit));
                let est = relogic_sim::observabilities_biased(circuit, &sampler, patterns, seed);
                let per_output = circuit
                    .node_ids()
                    .map(|id| {
                        (0..circuit.output_count())
                            .map(|k| est.at_output(id, k))
                            .collect()
                    })
                    .collect();
                let any_output = circuit.node_ids().map(|id| est.any(id)).collect();
                Ok(ObservabilityMatrix {
                    per_output,
                    any_output,
                })
            }
        }
    }

    fn compute_bdd(circuit: &Circuit, dist: &InputDistribution) -> Result<Self, RelogicError> {
        let order = VarOrder::dfs(circuit);
        let mut manager = BddManager::new(order.len() + 1);
        let aux =
            relogic_bdd::Var::try_from(order.len()).map_err(|_| RelogicError::CircuitTooLarge {
                nodes: circuit.len(),
            })?;
        let bdds = CircuitBdds::build(&mut manager, circuit, &order);
        let var_probs = order.permute_probs(&dist.position_probs(circuit), order.len() + 1, 0.5);
        let out_nodes: Vec<NodeId> = circuit.outputs().iter().map(|o| o.node()).collect();

        let mut per_output: Vec<Vec<f64>> = Vec::with_capacity(circuit.len());
        let mut any_output: Vec<f64> = Vec::with_capacity(circuit.len());
        for id in circuit.node_ids() {
            let funcs = bdds.with_aux_at(&mut manager, circuit, id, aux);
            let mut row = Vec::with_capacity(out_nodes.len());
            let mut any = relogic_bdd::BddRef::FALSE;
            for &on in &out_nodes {
                let diff = manager.boolean_difference(funcs[on.index()], aux);
                row.push(manager.probability(diff, &var_probs));
                any = manager.or(any, diff);
            }
            any_output.push(manager.probability(any, &var_probs));
            per_output.push(row);
            // Bound memory growth across the per-node rebuilds.
            if manager.node_count() > 4_000_000 {
                manager.clear_op_caches();
            }
        }
        Ok(ObservabilityMatrix {
            per_output,
            any_output,
        })
    }

    /// Observability of `node` at output `output_index`.
    #[must_use]
    pub fn at_output(&self, node: NodeId, output_index: usize) -> f64 {
        self.per_output[node.index()][output_index]
    }

    /// Probability a flip at `node` changes at least one output.
    #[must_use]
    pub fn any(&self, node: NodeId) -> f64 {
        self.any_output[node.index()]
    }

    /// Number of outputs covered.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.per_output.first().map_or(0, Vec::len)
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.any_output.len()
    }

    /// Returns `true` if no nodes are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.any_output.is_empty()
    }

    /// The closed-form reliability (Eq. 3) of output `output_index`:
    /// `δ_y = ½ (1 − Π_i (1 − 2 ε_i o_i))` over all noisy nodes.
    #[must_use]
    pub fn closed_form_output(&self, eps: &GateEps, output_index: usize) -> f64 {
        let mut prod = 1.0f64;
        for node in eps.noisy_nodes() {
            prod *= 1.0 - 2.0 * eps.get(node) * self.at_output(node, output_index);
        }
        0.5 * (1.0 - prod)
    }

    /// Closed-form reliability for every output.
    #[must_use]
    pub fn closed_form(&self, eps: &GateEps) -> Vec<f64> {
        (0..self.output_count())
            .map(|k| self.closed_form_output(eps, k))
            .collect()
    }

    /// Per-node *criticality* `ε_i · o_i` at a given output: the
    /// single-failure contribution of each node, useful for ranking
    /// soft-error hardening candidates (§5.1).
    #[must_use]
    pub fn criticality(&self, eps: &GateEps, output_index: usize) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = (0..self.len())
            .map(NodeId::from_index)
            .map(|id| (id, eps.get(id) * self.at_output(id, output_index)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic_sim::{exact_reliability, flip_influence};

    /// y = (a & b) | c.
    fn aoi() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let y = c.or([g, x]);
        c.add_output("y", y);
        c
    }

    #[test]
    fn bdd_observabilities_match_flip_influence() {
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        for id in c.node_ids() {
            let inf = flip_influence(&c, &[id]);
            assert!(
                (obs.at_output(id, 0) - inf[0]).abs() < 1e-12,
                "{id}: {} vs {}",
                obs.at_output(id, 0),
                inf[0]
            );
        }
    }

    #[test]
    fn sim_observabilities_converge_to_bdd() {
        let c = aoi();
        let exact = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let approx = ObservabilityMatrix::compute(
            &c,
            &InputDistribution::Uniform,
            Backend::Simulation {
                patterns: 1 << 15,
                seed: 9,
            },
        );
        for id in c.node_ids() {
            assert!((exact.at_output(id, 0) - approx.at_output(id, 0)).abs() < 0.02);
            assert!((exact.any(id) - approx.any(id)).abs() < 0.02);
        }
    }

    #[test]
    fn closed_form_exact_for_single_noisy_gate() {
        // With exactly one noisy gate the closed form is exact: δ = ε·o.
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let g = NodeId::from_index(3); // the AND gate, o = 1/2
        for &e in &[0.05, 0.2, 0.45] {
            let mut eps = GateEps::zero(&c);
            eps.set(g, e);
            let cf = obs.closed_form_output(&eps, 0);
            let exact = exact_reliability(&c, eps.as_slice());
            assert!(
                (cf - exact.per_output[0]).abs() < 1e-12,
                "ε={e}: closed form {cf} vs exact {}",
                exact.per_output[0]
            );
        }
    }

    #[test]
    fn closed_form_is_accurate_for_small_eps_on_all_gates() {
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, 0.01);
        let cf = obs.closed_form(&eps);
        let exact = exact_reliability(&c, eps.as_slice());
        assert!(
            (cf[0] - exact.per_output[0]).abs() < 1e-4,
            "closed form {} vs exact {}",
            cf[0],
            exact.per_output[0]
        );
    }

    #[test]
    fn closed_form_saturates_at_half() {
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, 0.5);
        for &d in &obs.closed_form(&eps) {
            assert!(d <= 0.5 + 1e-12);
        }
        assert_eq!(obs.closed_form(&GateEps::zero(&c)), vec![0.0]);
    }

    #[test]
    fn sim_backend_honours_input_distribution() {
        // obs(AND gate) = Pr(c = 0); bias c to 0.9 → obs = 0.1, and the
        // sampling backend must reproduce it.
        let c = aoi();
        let dist = InputDistribution::Independent(vec![0.5, 0.5, 0.9]);
        let obs = ObservabilityMatrix::compute(
            &c,
            &dist,
            Backend::Simulation {
                patterns: 1 << 16,
                seed: 12,
            },
        );
        let g = NodeId::from_index(3);
        assert!((obs.at_output(g, 0) - 0.1).abs() < 0.01);
    }

    #[test]
    fn observability_weights_with_input_distribution() {
        // obs(AND gate) = Pr(c = 0); bias c to 0.9 → obs = 0.1.
        let c = aoi();
        let dist = InputDistribution::Independent(vec![0.5, 0.5, 0.9]);
        let obs = ObservabilityMatrix::compute(&c, &dist, Backend::Bdd);
        let g = NodeId::from_index(3);
        assert!((obs.at_output(g, 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn criticality_ranks_by_single_failure_contribution() {
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, 0.1);
        let ranked = obs.criticality(&eps, 0);
        // The OR gate is the output gate (o = 1): must rank first.
        assert_eq!(ranked[0].0, NodeId::from_index(4));
        assert!(ranked[0].1 >= ranked[1].1);
        // Noise-free inputs have zero criticality.
        assert_eq!(ranked.last().unwrap().1, 0.0);
    }

    #[test]
    fn multi_output_any_observability() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.not(a);
        let h = c.and([g, b]);
        c.add_output("y1", g);
        c.add_output("y2", h);
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        assert!((obs.at_output(g, 0) - 1.0).abs() < 1e-12);
        assert!((obs.at_output(g, 1) - 0.5).abs() < 1e-12);
        assert!((obs.any(g) - 1.0).abs() < 1e-12);
        assert_eq!(obs.output_count(), 2);
    }
}
