//! Observability-based reliability analysis (§3 of the paper).
//!
//! The *observability* `o_i` of node `i` at output `y` is the probability
//! (over the input distribution) that flipping node `i` changes `y` in the
//! noise-free circuit. Given observabilities, the paper derives the closed
//! form (Eq. 3)
//!
//! ```text
//! δ_y(ε⃗) = ½ · (1 − Π_i (1 − 2 ε_i o_i))
//! ```
//!
//! which is exact when at most one gate fails (hence its use for soft-error
//! rate estimation) and accurate whenever multiple simultaneous failures
//! are improbable.

use crate::{Backend, BddEngineStats, Diagnostics, GateEps, InputDistribution, RelogicError};
use relogic_bdd::{BddManager, BddRef, BuildInterrupt, CircuitBdds, VarOrder};
use relogic_netlist::{Circuit, NodeId};
use relogic_sim::exec::ChunkExecutor;
use relogic_sim::{CancelToken, Cancelled};
use std::collections::HashMap;

/// Number of output columns handed to a worker at a time. Workers fan out
/// over *outputs* (plus one extra chunk for the any-output column), so the
/// expensive per-stem splices are shared by all columns a worker owns.
const OUTPUTS_PER_CHUNK: usize = 8;

/// Live-node count headroom above the base circuit functions before a
/// worker garbage-collects. Collection wipes the operation caches and the
/// probability memo — both of which carry most of the algorithm's shared
/// work — so it is deliberately rare.
const GC_HEADROOM_NODES: usize = 2_000_000;

/// Live-node count above which a worker's manager runs a sifting pass (a
/// backstop for pathological growth; the static DFS order handles the
/// common case).
const REORDER_TRIGGER_NODES: usize = 6_000_000;

/// Compact `u32` node/output key. Circuit node indices fit `u32` by
/// construction (`NodeId` is `u32`-backed), and output/variable counts are
/// bounded by the node count.
#[inline]
#[allow(clippy::cast_possible_truncation)]
fn key32(index: usize) -> u32 {
    index as u32
}

/// Per-node, per-output noiseless observabilities.
#[derive(Clone, Debug)]
pub struct ObservabilityMatrix {
    per_output: Vec<Vec<f64>>, // [node][output]
    any_output: Vec<f64>,
    diagnostics: Diagnostics,
}

/// How a node's observability predicates are obtained during the backward
/// sweep (see [`ObsPlan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeMode {
    /// No live path to any output: all zeros.
    Dead,
    /// Only output ports observe the node: the predicate is TRUE for the
    /// columns whose port reads it and FALSE elsewhere — no symbolic work.
    PortsOnly,
    /// The node's flips reconverge at its immediate post-dominator (the
    /// payload) before reaching any output, so the generalized chain rule
    /// is *exact* for every column:
    /// `∂y/∂g = region_difference(g, dom) ∧ ∂y/∂dom`.
    /// A node with a single gate observer is the degenerate case (the
    /// region is just that gate).
    Region(u32),
    /// The node's flips reach two or more outputs along paths that only
    /// reconverge at the output boundary — no post-dominator short of the
    /// virtual sink — so the node pays the full auxiliary-variable splice.
    Stem,
}

/// Static sweep plan: classifies every node by computing immediate
/// post-dominators over the observation DAG (gate fanouts, with every
/// output port feeding a virtual sink) and counts how long each node's
/// predicate row must stay alive.
struct ObsPlan {
    mode: Vec<NodeMode>,
    /// Output columns whose port reads the node directly.
    ports: Vec<Vec<u32>>,
    /// Number of [`NodeMode::Region`] fanins that will read this node's
    /// predicate row (rows with zero readers are dropped immediately).
    readers: Vec<u32>,
}

impl ObsPlan {
    fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut ports: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (k, out) in circuit.outputs().iter().enumerate() {
            ports[out.node().index()].push(key32(k));
        }
        // Distinct gate observers per node: a gate reading a node on two
        // pins flips both together, so it counts once (the region
        // derivative handles the multi-pin case exactly).
        let mut observers: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, node) in circuit.iter() {
            for &f in node.fanins() {
                let obs = &mut observers[f.index()];
                let tag = key32(id.index());
                if !obs.contains(&tag) {
                    obs.push(tag);
                }
            }
        }
        // Immediate post-dominators (Cooper–Harvey–Kennedy intersect on
        // the acyclic observation DAG, one reverse-topological pass). The
        // virtual sink — index `n` — post-dominates everything observable;
        // `usize::MAX` marks dead nodes.
        let sink = n;
        let order = |v: usize| if v == sink { 0 } else { n - v };
        let mut idom: Vec<usize> = vec![usize::MAX; n + 1];
        idom[sink] = sink;
        let intersect = |idom: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while order(a) > order(b) {
                    a = idom[a];
                }
                while order(b) > order(a) {
                    b = idom[b];
                }
            }
            a
        };
        for v in (0..n).rev() {
            let mut dom: Option<usize> = if ports[v].is_empty() {
                None
            } else {
                Some(sink)
            };
            for &h in &observers[v] {
                let h = h as usize;
                if idom[h] == usize::MAX {
                    continue; // dead observer: flips through it vanish
                }
                dom = Some(match dom {
                    None => h,
                    Some(d) => intersect(&idom, d, h),
                });
            }
            if let Some(d) = dom {
                idom[v] = d;
            }
        }
        let mode: Vec<NodeMode> = (0..n)
            .map(|v| {
                let live_gates = observers[v].iter().any(|&h| idom[h as usize] != usize::MAX);
                match idom[v] {
                    usize::MAX => NodeMode::Dead,
                    d if d == sink && !live_gates => NodeMode::PortsOnly,
                    d if d == sink => NodeMode::Stem,
                    d => NodeMode::Region(key32(d)),
                }
            })
            .collect();
        let mut readers = vec![0u32; n];
        for m in &mode {
            if let NodeMode::Region(d) = m {
                readers[*d as usize] += 1;
            }
        }
        ObsPlan {
            mode,
            ports,
            readers,
        }
    }
}

/// Per-worker symbolic state: a full BDD manager plus the base circuit
/// functions it splices auxiliaries into. Each worker builds its own copy
/// through the identical deterministic construction sequence, so any
/// worker computes bit-identical results for any node — which is what
/// makes the fan-out independent of thread count and scheduling.
struct BddWorker {
    manager: BddManager,
    bdds: CircuitBdds,
    var_probs: Vec<f64>,
    aux: relogic_bdd::Var,
    /// Probability memo shared across nodes; keyed by node index, so it
    /// must be dropped whenever the manager collects or reorders.
    memo: HashMap<BddRef, f64>,
    gc_floor: usize,
}

impl ObservabilityMatrix {
    /// Computes observabilities for every node of `circuit`.
    ///
    /// With [`Backend::Bdd`] the computation is exact: an auxiliary
    /// variable is spliced in at each node and the Boolean difference of
    /// each output with respect to it is weighted by the input
    /// distribution. With [`Backend::Simulation`] observabilities are
    /// estimated by parallel-pattern fault simulation.
    ///
    /// # Panics
    ///
    /// Panics if the input distribution does not match the circuit.
    #[must_use]
    pub fn compute(circuit: &Circuit, dist: &InputDistribution, backend: Backend) -> Self {
        match Self::try_compute(circuit, dist, backend) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ObservabilityMatrix::compute`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::DistributionMismatch`] if the input distribution
    /// does not match the circuit, or [`RelogicError::CircuitTooLarge`] if
    /// the circuit exhausts the BDD variable space.
    pub fn try_compute(
        circuit: &Circuit,
        dist: &InputDistribution,
        backend: Backend,
    ) -> Result<Self, RelogicError> {
        Self::try_compute_threads(circuit, dist, backend, 0)
    }

    /// Like [`ObservabilityMatrix::try_compute`] with an explicit worker
    /// thread count for the BDD backend (`0` auto-detects the hardware).
    ///
    /// Results are **bit-identical for every thread count**: each worker
    /// rebuilds the circuit's BDDs through the same deterministic
    /// construction sequence, so a node's row does not depend on which
    /// worker computed it, and rows are reassembled in node order.
    ///
    /// # Errors
    ///
    /// As [`ObservabilityMatrix::try_compute`].
    pub fn try_compute_threads(
        circuit: &Circuit,
        dist: &InputDistribution,
        backend: Backend,
        threads: usize,
    ) -> Result<Self, RelogicError> {
        let never = CancelToken::new();
        Self::try_compute_threads_cancellable(circuit, dist, backend, threads, &never)
    }

    /// Like [`ObservabilityMatrix::try_compute_threads`], checking `cancel`
    /// while it works.
    ///
    /// The BDD backend checks per output chunk and per node of each
    /// backward sweep; the simulation backend checks once before the
    /// pattern run. A run that completes before the token fires returns
    /// values bit-identical to an uncancelled run — the checks are
    /// read-only early exits that never perturb the computation.
    ///
    /// # Errors
    ///
    /// [`RelogicError::Cancelled`] once the token fires, otherwise as
    /// [`ObservabilityMatrix::try_compute`].
    pub fn try_compute_threads_cancellable(
        circuit: &Circuit,
        dist: &InputDistribution,
        backend: Backend,
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<Self, RelogicError> {
        let _ = dist.try_position_probs(circuit)?;
        match backend {
            Backend::Bdd => Self::compute_bdd(circuit, dist, threads, cancel),
            Backend::Simulation { patterns, seed } => {
                cancel.check("obs_sim")?;
                let sampler = relogic_sim::InputSampler::independent(&dist.position_probs(circuit));
                let est = relogic_sim::observabilities_biased(circuit, &sampler, patterns, seed);
                let per_output = circuit
                    .node_ids()
                    .map(|id| {
                        (0..circuit.output_count())
                            .map(|k| est.at_output(id, k))
                            .collect()
                    })
                    .collect();
                let any_output = circuit.node_ids().map(|id| est.any(id)).collect();
                Ok(ObservabilityMatrix {
                    per_output,
                    any_output,
                    diagnostics: Diagnostics::new(),
                })
            }
        }
    }

    /// Like [`ObservabilityMatrix::try_compute_threads`] with the BDD
    /// backend, but the deterministic base circuit construction is bounded
    /// by a live-node `budget`.
    ///
    /// The budget is checked gate-by-gate during a single-threaded probe
    /// build — the identical sequence every parallel worker would replay —
    /// so the trip decision is a pure function of `(circuit, budget)` and
    /// cannot depend on thread count or scheduling. The subsequent
    /// backward sweep is GC-managed (see [`GC_HEADROOM_NODES`]) rather
    /// than budget-checked; the base build is where multiplier-class
    /// reconvergence blows up.
    ///
    /// # Errors
    ///
    /// [`RelogicError::BddBudgetExceeded`] when the probe build trips the
    /// budget, otherwise as [`ObservabilityMatrix::try_compute`].
    pub fn try_compute_budgeted(
        circuit: &Circuit,
        dist: &InputDistribution,
        threads: usize,
        budget: usize,
    ) -> Result<Self, RelogicError> {
        let never = CancelToken::new();
        Self::try_compute_budgeted_cancellable(circuit, dist, threads, budget, &never)
    }

    /// Like [`ObservabilityMatrix::try_compute_budgeted`], checking
    /// `cancel` while it works: the probe build polls the token at the
    /// same per-gate point as the budget check (one extra branch), and
    /// the subsequent sweep checks per chunk and per node.
    ///
    /// # Errors
    ///
    /// [`RelogicError::Cancelled`] once the token fires, otherwise as
    /// [`ObservabilityMatrix::try_compute_budgeted`].
    pub fn try_compute_budgeted_cancellable(
        circuit: &Circuit,
        dist: &InputDistribution,
        threads: usize,
        budget: usize,
        cancel: &CancelToken,
    ) -> Result<Self, RelogicError> {
        let _ = dist.try_position_probs(circuit)?;
        let order_len = circuit.input_count();
        let _aux =
            relogic_bdd::Var::try_from(order_len).map_err(|_| RelogicError::CircuitTooLarge {
                nodes: circuit.len(),
            })?;
        let order = VarOrder::dfs(circuit);
        let mut manager = BddManager::new(order.len() + 1);
        manager.place_var_at_top(key32(order.len()));
        let mut poll = || cancel.is_cancelled();
        CircuitBdds::try_build_interruptible(&mut manager, circuit, &order, budget, &mut poll)
            .map_err(|e| match e {
                BuildInterrupt::Budget(b) => RelogicError::BddBudgetExceeded {
                    live_nodes: b.live_nodes,
                    budget: b.budget,
                },
                BuildInterrupt::Interrupted => RelogicError::Cancelled(Cancelled {
                    after: cancel.elapsed(),
                    checked_at: "bdd_gate",
                }),
            })?;
        drop(manager);
        Self::compute_bdd(circuit, dist, threads, cancel)
    }

    fn build_worker(circuit: &Circuit, dist: &InputDistribution) -> BddWorker {
        let order = VarOrder::dfs(circuit);
        let mut manager = BddManager::new(order.len() + 1);
        let aux: relogic_bdd::Var = key32(order.len());
        // The auxiliary goes at the TOP of the order: spliced cones then
        // cost one node per gate above the splice point, and the Boolean
        // difference reads the root's two cofactors instead of dragging
        // the auxiliary through every path of the diagram.
        manager.place_var_at_top(aux);
        let bdds = CircuitBdds::build(&mut manager, circuit, &order);
        let var_probs = order.permute_probs(&dist.position_probs(circuit), order.len() + 1, 0.5);
        // Collect back to the base functions once the splice garbage
        // outgrows the circuit itself by a wide margin.
        let gc_floor = manager.live_node_count() + GC_HEADROOM_NODES;
        manager.enable_reordering(REORDER_TRIGGER_NODES);
        BddWorker {
            manager,
            bdds,
            var_probs,
            aux,
            memo: HashMap::new(),
            gc_floor,
        }
    }

    /// One backward sweep over the netlist, producing the observability
    /// values for a set of columns.
    ///
    /// `cols` names the output columns to compute; with `include_any` set
    /// an extra *last* column holds the any-output observability (the OR,
    /// in ascending output order, of every output's predicate).
    ///
    /// Nodes are visited in reverse topological order. A node's predicate
    /// row is one of:
    ///
    /// * **Stem** (post-dominated only by the virtual sink): full
    ///   auxiliary-variable splice — the only expensive case, and exact
    ///   under arbitrary reconvergence. Ports need no special casing: the
    ///   splice replaces the node's own function with the auxiliary, so a
    ///   port column's Boolean difference collapses to TRUE by itself.
    /// * **Region** (immediate post-dominator `d` short of the sink):
    ///   `D ∧ P_d` per column, where `D = region_difference(node, d)` is
    ///   the Boolean difference of `d` over the reconvergent region
    ///   between them. Exact because every sensitized path to every
    ///   output runs through `d`; distributing `D ∧ ·` over the OR in the
    ///   any column is sound for the same reason. A region node never
    ///   feeds a port directly (a port would pull its post-dominator up
    ///   to the sink), so no column overrides exist.
    /// * **PortsOnly / Dead**: constant TRUE/FALSE rows, no symbolic work.
    ///
    /// Rows are dropped as soon as their last region reader has consumed
    /// them, and the manager garbage-collects (rooting the base functions
    /// plus every live row) only when splice garbage exceeds
    /// [`GC_HEADROOM_NODES`].
    fn sweep(
        worker: &mut BddWorker,
        circuit: &Circuit,
        plan: &ObsPlan,
        cols: &[usize],
        include_any: bool,
        cancel: &CancelToken,
    ) -> Result<Vec<Vec<f64>>, Cancelled> {
        let n = circuit.len();
        let width = cols.len() + usize::from(include_any);
        let out_nodes: Vec<usize> = circuit.outputs().iter().map(|o| o.node().index()).collect();
        let mut vals: Vec<Vec<f64>> = vec![vec![0.0; width]; n];
        let mut rows: Vec<Option<Vec<BddRef>>> = vec![None; n];
        let mut pending: Vec<u32> = plan.readers.clone();
        for i in (0..n).rev() {
            // Per-node check: a stem splice can dwarf everything else in
            // the sweep, so finer granularity buys nothing.
            cancel.check("obs_node")?;
            let id = NodeId::from_index(i);
            let preds: Vec<BddRef> = match plan.mode[i] {
                NodeMode::Dead => vec![BddRef::FALSE; width],
                NodeMode::PortsOnly => {
                    let mut preds: Vec<BddRef> = cols
                        .iter()
                        .map(|&y| {
                            let y = key32(y);
                            if plan.ports[i].contains(&y) {
                                BddRef::TRUE
                            } else {
                                BddRef::FALSE
                            }
                        })
                        .collect();
                    if include_any {
                        preds.push(BddRef::TRUE);
                    }
                    preds
                }
                NodeMode::Region(d) => {
                    let d = d as usize;
                    let manager = &mut worker.manager;
                    let diff = worker.bdds.region_difference(
                        manager,
                        circuit,
                        id,
                        NodeId::from_index(d),
                        worker.aux,
                    );
                    // The dominator's row is pinned until its last region
                    // reader (this node, at the latest) is done.
                    let Some(drow) = rows[d].as_ref() else {
                        unreachable!("region dominator row dropped before its readers")
                    };
                    drow.iter().map(|&p| manager.and(diff, p)).collect()
                }
                NodeMode::Stem => {
                    let BddWorker {
                        manager, bdds, aux, ..
                    } = worker;
                    let funcs = bdds.with_aux_at(manager, circuit, id, *aux);
                    let mut preds: Vec<BddRef> = cols
                        .iter()
                        .map(|&y| manager.boolean_difference(funcs[out_nodes[y]], *aux))
                        .collect();
                    if include_any {
                        // Fixed ascending fold order keeps the any column
                        // bit-identical across thread counts.
                        let mut acc = BddRef::FALSE;
                        for &on in &out_nodes {
                            let diff = manager.boolean_difference(funcs[on], *aux);
                            acc = manager.or(acc, diff);
                        }
                        preds.push(acc);
                    }
                    preds
                }
            };
            for (j, &p) in preds.iter().enumerate() {
                vals[i][j] =
                    worker
                        .manager
                        .probability_memo(p, &worker.var_probs, &mut worker.memo);
            }
            if plan.readers[i] > 0 {
                rows[i] = Some(preds);
            }
            if let NodeMode::Region(d) = plan.mode[i] {
                let d = d as usize;
                pending[d] -= 1;
                if pending[d] == 0 {
                    rows[d] = None;
                }
            }
            if worker.manager.live_node_count() > worker.gc_floor {
                let mut roots: Vec<BddRef> = worker.bdds.funcs().to_vec();
                for row in rows.iter().flatten() {
                    roots.extend_from_slice(row);
                }
                // maybe_reorder gc's as part of sifting; otherwise collect
                // explicitly. Either way node indices are recycled, so the
                // probability memo goes with them.
                if !worker.manager.maybe_reorder(&roots) {
                    worker.manager.gc(&roots);
                }
                worker.memo.clear();
                worker.gc_floor = worker.manager.live_node_count() + GC_HEADROOM_NODES;
            }
        }
        Ok(vals)
    }

    fn compute_bdd(
        circuit: &Circuit,
        dist: &InputDistribution,
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<Self, RelogicError> {
        let order_len = circuit.input_count();
        let _aux =
            relogic_bdd::Var::try_from(order_len).map_err(|_| RelogicError::CircuitTooLarge {
                nodes: circuit.len(),
            })?;
        let n = circuit.len();
        let m = circuit.output_count();
        let plan = ObsPlan::build(circuit);
        let exec = ChunkExecutor::new(threads);
        // A lone worker computes every column (plus the any column) in a
        // single sweep so the expensive per-stem splices are paid once.
        // With real parallelism, workers fan out over output chunks and
        // the any column rides in a dedicated chunk; either way the
        // numbers are bit-identical because every predicate is a
        // canonical BDD evaluated against the same variable order.
        let (out_chunks, chunks) = if exec.threads() <= 1 {
            (0, 1)
        } else {
            (
                m.div_ceil(OUTPUTS_PER_CHUNK),
                m.div_ceil(OUTPUTS_PER_CHUNK) + 1,
            )
        };
        let (chunk_vals, workers) = exec.try_map_chunks_with_state(
            chunks,
            cancel,
            "obs_chunk",
            || Self::build_worker(circuit, dist),
            |worker, chunk| {
                if out_chunks == 0 {
                    let cols: Vec<usize> = (0..m).collect();
                    Self::sweep(worker, circuit, &plan, &cols, true, cancel)
                } else if chunk == out_chunks {
                    Self::sweep(worker, circuit, &plan, &[], true, cancel)
                } else {
                    let cols: Vec<usize> = (chunk * OUTPUTS_PER_CHUNK
                        ..m.min((chunk + 1) * OUTPUTS_PER_CHUNK))
                        .collect();
                    Self::sweep(worker, circuit, &plan, &cols, false, cancel)
                }
            },
        )?;
        let mut per_output: Vec<Vec<f64>> = vec![Vec::with_capacity(m); n];
        let mut any_output: Vec<f64> = vec![0.0; n];
        for (chunk, vals) in chunk_vals.into_iter().enumerate() {
            if out_chunks == 0 || chunk == out_chunks {
                for (i, mut row) in vals.into_iter().enumerate() {
                    let Some(any) = row.pop() else {
                        unreachable!("sweep rows always carry the any column last")
                    };
                    any_output[i] = any;
                    per_output[i].extend(row);
                }
            } else {
                for (i, row) in vals.into_iter().enumerate() {
                    per_output[i].extend(row);
                }
            }
        }
        let mut engine = BddEngineStats::default();
        for w in &workers {
            let s = w.manager.stats();
            engine.merge(&BddEngineStats {
                peak_live_nodes: s.peak_live_nodes,
                live_nodes: s.live_nodes,
                unique_load: s.unique_load,
                cache_hits: s.cache_hits,
                cache_misses: s.cache_misses,
                gc_runs: s.gc_runs,
                reorders: s.reorders,
            });
        }
        let mut diagnostics = Diagnostics::new();
        diagnostics.record_bdd_stats(engine);
        Ok(ObservabilityMatrix {
            per_output,
            any_output,
            diagnostics,
        })
    }

    /// Numerical and symbolic-engine diagnostics for the computation that
    /// produced this matrix (BDD engine statistics are present when the
    /// BDD backend ran).
    #[must_use]
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// All per-output rows, indexed `[node][output]`; exposed for the
    /// persistent artifact store.
    #[must_use]
    pub fn per_output_rows(&self) -> &[Vec<f64>] {
        &self.per_output
    }

    /// All any-output observabilities, indexed by [`NodeId::index`].
    #[must_use]
    pub fn any_output_values(&self) -> &[f64] {
        &self.any_output
    }

    /// Rebuilds a matrix from deserialized arrays, validating what
    /// [`ObservabilityMatrix::try_compute`] guarantees: one row per node,
    /// uniform row width, and every value finite. Checksummed payloads
    /// still route through here so a hash collision degrades into an
    /// error, never a panic downstream.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn from_parts(
        per_output: Vec<Vec<f64>>,
        any_output: Vec<f64>,
        diagnostics: Diagnostics,
    ) -> Result<Self, String> {
        if per_output.len() != any_output.len() {
            return Err(format!(
                "{} rows but {} any-output entries",
                per_output.len(),
                any_output.len()
            ));
        }
        let width = per_output.first().map_or(0, Vec::len);
        for (i, row) in per_output.iter().enumerate() {
            if row.len() != width {
                return Err(format!("row {i} has width {} != {width}", row.len()));
            }
            if row.iter().any(|x| !x.is_finite()) {
                return Err(format!("non-finite entry in row {i}"));
            }
        }
        if any_output.iter().any(|x| !x.is_finite()) {
            return Err("non-finite any-output entry".to_owned());
        }
        Ok(ObservabilityMatrix {
            per_output,
            any_output,
            diagnostics,
        })
    }

    /// Approximate heap footprint of this matrix in bytes (per-output row
    /// payloads and headers plus the any-output array). A structural
    /// estimate for cache byte-accounting, not an allocator-exact figure.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        let row_payload: usize = self.per_output.iter().map(|r| r.len() * 8).sum();
        let row_headers = self.per_output.len() * std::mem::size_of::<Vec<f64>>();
        row_payload + row_headers + self.any_output.len() * 8
    }

    /// The heap footprint [`ObservabilityMatrix::try_compute`] *would*
    /// produce for `circuit`, computable without running either backend
    /// (rows are `output_count` wide for every node — a pure function of
    /// circuit structure). Lets a cache charge an entry for its
    /// observability matrix before the matrix is lazily materialized.
    #[must_use]
    pub fn projected_heap_bytes(circuit: &Circuit) -> usize {
        let n = circuit.len();
        n * (std::mem::size_of::<Vec<f64>>() + circuit.output_count() * 8) + n * 8
    }

    /// Observability of `node` at output `output_index`.
    #[must_use]
    pub fn at_output(&self, node: NodeId, output_index: usize) -> f64 {
        self.per_output[node.index()][output_index]
    }

    /// Probability a flip at `node` changes at least one output.
    #[must_use]
    pub fn any(&self, node: NodeId) -> f64 {
        self.any_output[node.index()]
    }

    /// Number of outputs covered.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.per_output.first().map_or(0, Vec::len)
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.any_output.len()
    }

    /// Returns `true` if no nodes are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.any_output.is_empty()
    }

    /// The closed-form reliability (Eq. 3) of output `output_index`:
    /// `δ_y = ½ (1 − Π_i (1 − 2 ε_i o_i))` over all noisy nodes.
    #[must_use]
    pub fn closed_form_output(&self, eps: &GateEps, output_index: usize) -> f64 {
        let mut prod = 1.0f64;
        for node in eps.noisy_nodes() {
            prod *= 1.0 - 2.0 * eps.get(node) * self.at_output(node, output_index);
        }
        0.5 * (1.0 - prod)
    }

    /// Closed-form reliability for every output.
    #[must_use]
    pub fn closed_form(&self, eps: &GateEps) -> Vec<f64> {
        (0..self.output_count())
            .map(|k| self.closed_form_output(eps, k))
            .collect()
    }

    /// Per-node *criticality* `ε_i · o_i` at a given output: the
    /// single-failure contribution of each node, useful for ranking
    /// soft-error hardening candidates (§5.1).
    #[must_use]
    pub fn criticality(&self, eps: &GateEps, output_index: usize) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = (0..self.len())
            .map(NodeId::from_index)
            .map(|id| (id, eps.get(id) * self.at_output(id, output_index)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic_sim::{exact_reliability, flip_influence};

    /// y = (a & b) | c.
    fn aoi() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let y = c.or([g, x]);
        c.add_output("y", y);
        c
    }

    #[test]
    fn bdd_observabilities_match_flip_influence() {
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        for id in c.node_ids() {
            let inf = flip_influence(&c, &[id]);
            assert!(
                (obs.at_output(id, 0) - inf[0]).abs() < 1e-12,
                "{id}: {} vs {}",
                obs.at_output(id, 0),
                inf[0]
            );
        }
    }

    #[test]
    fn sim_observabilities_converge_to_bdd() {
        let c = aoi();
        let exact = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let approx = ObservabilityMatrix::compute(
            &c,
            &InputDistribution::Uniform,
            Backend::Simulation {
                patterns: 1 << 15,
                seed: 9,
            },
        );
        for id in c.node_ids() {
            assert!((exact.at_output(id, 0) - approx.at_output(id, 0)).abs() < 0.02);
            assert!((exact.any(id) - approx.any(id)).abs() < 0.02);
        }
    }

    #[test]
    fn closed_form_exact_for_single_noisy_gate() {
        // With exactly one noisy gate the closed form is exact: δ = ε·o.
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let g = NodeId::from_index(3); // the AND gate, o = 1/2
        for &e in &[0.05, 0.2, 0.45] {
            let mut eps = GateEps::zero(&c);
            eps.set(g, e);
            let cf = obs.closed_form_output(&eps, 0);
            let exact = exact_reliability(&c, eps.as_slice());
            assert!(
                (cf - exact.per_output[0]).abs() < 1e-12,
                "ε={e}: closed form {cf} vs exact {}",
                exact.per_output[0]
            );
        }
    }

    #[test]
    fn closed_form_is_accurate_for_small_eps_on_all_gates() {
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, 0.01);
        let cf = obs.closed_form(&eps);
        let exact = exact_reliability(&c, eps.as_slice());
        assert!(
            (cf[0] - exact.per_output[0]).abs() < 1e-4,
            "closed form {} vs exact {}",
            cf[0],
            exact.per_output[0]
        );
    }

    #[test]
    fn closed_form_saturates_at_half() {
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, 0.5);
        for &d in &obs.closed_form(&eps) {
            assert!(d <= 0.5 + 1e-12);
        }
        assert_eq!(obs.closed_form(&GateEps::zero(&c)), vec![0.0]);
    }

    #[test]
    fn sim_backend_honours_input_distribution() {
        // obs(AND gate) = Pr(c = 0); bias c to 0.9 → obs = 0.1, and the
        // sampling backend must reproduce it.
        let c = aoi();
        let dist = InputDistribution::Independent(vec![0.5, 0.5, 0.9]);
        let obs = ObservabilityMatrix::compute(
            &c,
            &dist,
            Backend::Simulation {
                patterns: 1 << 16,
                seed: 12,
            },
        );
        let g = NodeId::from_index(3);
        assert!((obs.at_output(g, 0) - 0.1).abs() < 0.01);
    }

    #[test]
    fn observability_weights_with_input_distribution() {
        // obs(AND gate) = Pr(c = 0); bias c to 0.9 → obs = 0.1.
        let c = aoi();
        let dist = InputDistribution::Independent(vec![0.5, 0.5, 0.9]);
        let obs = ObservabilityMatrix::compute(&c, &dist, Backend::Bdd);
        let g = NodeId::from_index(3);
        assert!((obs.at_output(g, 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn criticality_ranks_by_single_failure_contribution() {
        let c = aoi();
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, 0.1);
        let ranked = obs.criticality(&eps, 0);
        // The OR gate is the output gate (o = 1): must rank first.
        assert_eq!(ranked[0].0, NodeId::from_index(4));
        assert!(ranked[0].1 >= ranked[1].1);
        // Noise-free inputs have zero criticality.
        assert_eq!(ranked.last().unwrap().1, 0.0);
    }

    #[test]
    fn pre_fired_token_cancels_bdd_and_budgeted_compute() {
        let c = aoi();
        let fired = CancelToken::new();
        fired.cancel();
        for &threads in &[1usize, 4] {
            let err = ObservabilityMatrix::try_compute_threads_cancellable(
                &c,
                &InputDistribution::Uniform,
                Backend::Bdd,
                threads,
                &fired,
            )
            .expect_err("fired token must cancel the compute");
            assert!(matches!(err, RelogicError::Cancelled(_)), "{err}");
        }
        // The budgeted probe build polls at the per-gate check: the
        // cancellation surfaces there, before any sweep work starts.
        let err = ObservabilityMatrix::try_compute_budgeted_cancellable(
            &c,
            &InputDistribution::Uniform,
            1,
            1 << 20,
            &fired,
        )
        .expect_err("fired token must cancel the probe build");
        match err {
            RelogicError::Cancelled(cc) => assert_eq!(cc.checked_at, "bdd_gate"),
            other => panic!("expected Cancelled, got {other}"),
        }
        // A budget trip still reports as a budget trip, not a cancel.
        let err = ObservabilityMatrix::try_compute_budgeted_cancellable(
            &c,
            &InputDistribution::Uniform,
            1,
            0,
            &CancelToken::new(),
        )
        .expect_err("zero budget must trip");
        assert!(
            matches!(err, RelogicError::BddBudgetExceeded { .. }),
            "{err}"
        );
    }

    #[test]
    fn completed_compute_under_deadline_is_bit_identical() {
        let c = aoi();
        let plain = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        for &threads in &[1usize, 2, 8] {
            let generous = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
            let under = ObservabilityMatrix::try_compute_threads_cancellable(
                &c,
                &InputDistribution::Uniform,
                Backend::Bdd,
                threads,
                &generous,
            )
            .expect("generous deadline must not fire");
            assert_eq!(under.per_output_rows(), plain.per_output_rows());
            assert_eq!(under.any_output_values(), plain.any_output_values());
        }
    }

    #[test]
    fn multi_output_any_observability() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.not(a);
        let h = c.and([g, b]);
        c.add_output("y1", g);
        c.add_output("y2", h);
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        assert!((obs.at_output(g, 0) - 1.0).abs() < 1e-12);
        assert!((obs.at_output(g, 1) - 0.5).abs() < 1e-12);
        assert!((obs.any(g) - 1.0).abs() < 1e-12);
        assert_eq!(obs.output_count(), 2);
    }
}
