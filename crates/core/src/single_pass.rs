//! Single-pass reliability analysis (§4 of the paper) with correlation
//! coefficients for reconvergent fanout (§4.1).
//!
//! Gates are processed once, in topological order. Each signal carries two
//! conditional error probabilities — `Pr(0→1 | fault-free value 0)` and
//! `Pr(1→0 | fault-free value 1)`. At every gate, the *propagated* error
//! component is computed by enumerating (error-free input combination,
//! perturbed input combination) pairs weighted by the gate's weight vector
//! (this generalizes the paper's Table 1, which spells out the 2-input AND
//! case), and is then mixed with the gate's *local* BSC failure ε:
//!
//! ```text
//! Pr(g_{b→¬b}) = (1−ε)·PW(b)/W(b) + ε·(1 − PW(b)/W(b))
//! ```
//!
//! Reconvergent fanout makes fanin error events dependent. Following §4.1,
//! every signal pair that shares a fanout stem carries four correlation
//! coefficients `C_vw, C_vw̃, C_ṽw, C_ṽw̃` (one per combination of 0→1/1→0
//! events), seeded at the stem (`C = 1/Pr`, cross terms 0) and propagated
//! through each gate by re-running the propagation step conditioned on the
//! partner's event (the paper's Fig. 4). At a reconvergence site the
//! coefficients re-weight the propagation terms, e.g.
//! `Pr(i_{0→1})·(1 − Pr(j_{1→0})·C_{ij̃})`.

use crate::weights::MAX_ANALYSIS_ARITY;
use crate::{Diagnostics, GateEps, RelogicError, Weights};
use relogic_netlist::structure::FanoutMap;
use relogic_netlist::{Circuit, GateKind, NodeId};
use std::collections::HashMap;

/// Compact `u32` node key. Safe after [`SinglePass::try_new`] has verified
/// the circuit's node count fits `u32`.
#[inline]
#[allow(clippy::cast_possible_truncation)]
fn node_key(index: usize) -> u32 {
    index as u32
}

/// A `0→1` or `1→0` error event on a signal.
///
/// Used to index the four correlation coefficients of a signal pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorEvent {
    /// The signal's fault-free value is 0 and the noisy value is 1.
    Rise,
    /// The signal's fault-free value is 1 and the noisy value is 0.
    Fall,
}

impl ErrorEvent {
    /// Both events, for iteration.
    pub const BOTH: [ErrorEvent; 2] = [ErrorEvent::Rise, ErrorEvent::Fall];

    #[inline]
    fn idx(self) -> usize {
        match self {
            ErrorEvent::Rise => 0,
            ErrorEvent::Fall => 1,
        }
    }

    #[inline]
    fn from_value(fault_free: bool) -> Self {
        if fault_free {
            ErrorEvent::Fall
        } else {
            ErrorEvent::Rise
        }
    }
}

/// Four correlation coefficients for a signal pair, indexed
/// `[event on first][event on second]`. `1.0` everywhere means independent.
pub type CorrCoeffs = [[f64; 2]; 2];

const INDEPENDENT: CorrCoeffs = [[1.0, 1.0], [1.0, 1.0]];

/// Tracked coefficients for a signal pair: the four §4.1 error-event
/// coefficients plus four Ercolani-style *signal-value* coefficients
/// `V[value on first][value on second]` (the paper's ref [8]), used to
/// condition weight vectors on a partner's fault-free value.
#[derive(Clone, Copy, Debug)]
struct PairCoeffs {
    err: CorrCoeffs,
    val: CorrCoeffs,
}

const PAIR_INDEPENDENT: PairCoeffs = PairCoeffs {
    err: INDEPENDENT,
    val: INDEPENDENT,
};

/// Options controlling the single-pass engine.
#[derive(Clone, Debug)]
pub struct SinglePassOptions {
    /// Track and apply correlation coefficients (§4.1). Without this, all
    /// fanin error events are assumed independent — the plain §4 algorithm.
    pub correlations: bool,
    /// Maximum number of correlated partners retained per signal; `None`
    /// keeps every partner. When trimming, the partners closest to
    /// independence (smallest `max |C − 1|`) are dropped first.
    pub partner_cap: Option<usize>,
    /// Partners whose coefficients are all within this distance of 1 are
    /// pruned (they carry no information).
    pub prune_tolerance: f64,
    /// Extension beyond the paper: condition weight vectors on the
    /// partner's fault-free value using Ercolani-style signal-value
    /// coefficients (the paper's ref [8]) while propagating error
    /// coefficients. The Fig. 4 conditionals otherwise use the
    /// unconditioned weight vector, which overestimates correlation where
    /// the partner's value restricts the gate's input space. The
    /// first-order product form implemented here helps modestly on control
    /// logic and is neutral on the XOR lattices (see EXPERIMENTS.md), so
    /// the default stays faithful to the paper: off.
    pub value_conditioning: bool,
    /// Strict numeric policy. When set, [`SinglePass::try_run`] rejects
    /// ε > 0.5 (outside the sensible von Neumann BSC regime) and turns
    /// non-finite correlation numerics into
    /// [`RelogicError::NumericRange`] errors instead of silently falling
    /// back to uncorrelated propagation.
    pub strict: bool,
}

impl Default for SinglePassOptions {
    fn default() -> Self {
        SinglePassOptions {
            correlations: true,
            partner_cap: Some(64),
            prune_tolerance: 1e-4,
            value_conditioning: false,
            strict: false,
        }
    }
}

impl SinglePassOptions {
    /// The plain §4 algorithm, with no reconvergence correction.
    #[must_use]
    pub fn without_correlations() -> Self {
        SinglePassOptions {
            correlations: false,
            ..SinglePassOptions::default()
        }
    }
}

/// Result of one single-pass run: per-node conditional error probabilities,
/// per-node and per-output error probabilities, and the surviving
/// correlation coefficients.
#[derive(Clone, Debug)]
pub struct SinglePassResult {
    p01: Vec<f64>,
    p10: Vec<f64>,
    node_delta: Vec<f64>,
    per_output: Vec<f64>,
    partners: Vec<HashMap<u32, PairCoeffs>>,
    diagnostics: Diagnostics,
}

impl SinglePassResult {
    /// `Pr(0→1 error | fault-free value 0)` at `node`.
    #[must_use]
    pub fn p01(&self, node: NodeId) -> f64 {
        self.p01[node.index()]
    }

    /// `Pr(1→0 error | fault-free value 1)` at `node`.
    #[must_use]
    pub fn p10(&self, node: NodeId) -> f64 {
        self.p10[node.index()]
    }

    /// Unconditional error probability of `node`:
    /// `Pr(n=0)·p01 + Pr(n=1)·p10`. For an output node this is the paper's
    /// `δ_y`; the per-node values support selective-hardening studies
    /// (§5.1).
    #[must_use]
    pub fn node_delta(&self, node: NodeId) -> f64 {
        self.node_delta[node.index()]
    }

    /// `δ_y` for each primary output, in declaration order.
    #[must_use]
    pub fn per_output(&self) -> &[f64] {
        &self.per_output
    }

    /// The tracked error-event correlation coefficients between two
    /// signals, if the pair survived propagation (`None` means they are
    /// treated as independent). Indexed `[event on a][event on b]`.
    #[must_use]
    pub fn correlation(&self, a: NodeId, b: NodeId) -> Option<CorrCoeffs> {
        u32::try_from(b.index())
            .ok()
            .and_then(|k| self.partners[a.index()].get(&k))
            .map(|c| c.err)
    }

    /// The tracked signal-value correlation coefficients
    /// `V[value on a][value on b]` for a pair, if tracked.
    #[must_use]
    pub fn value_correlation(&self, a: NodeId, b: NodeId) -> Option<CorrCoeffs> {
        u32::try_from(b.index())
            .ok()
            .and_then(|k| self.partners[a.index()].get(&k))
            .map(|c| c.val)
    }

    /// Numerical diagnostics accumulated during this run: clamp events,
    /// coefficient saturations, and correlation fallbacks.
    #[must_use]
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }
}

/// The single-pass reliability engine.
///
/// Construction precomputes ε-independent structure; [`SinglePass::run`] is
/// then `O(n · 4^arity)` per ε vector (plus correlation bookkeeping), which
/// is what makes 50-point ε sweeps cheap compared to Monte Carlo.
///
/// # Examples
///
/// ```
/// use relogic::{Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights};
/// use relogic_netlist::Circuit;
///
/// let mut c = Circuit::new("inv");
/// let a = c.add_input("a");
/// let g = c.not(a);
/// c.add_output("y", g);
///
/// let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
/// let engine = SinglePass::new(&c, &w, SinglePassOptions::default());
/// let r = engine.run(&GateEps::uniform(&c, 0.1));
/// assert!((r.per_output()[0] - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct SinglePass<'a> {
    circuit: &'a Circuit,
    weights: &'a Weights,
    options: SinglePassOptions,
    is_stem: Vec<bool>,
}

impl<'a> SinglePass<'a> {
    /// Creates an engine over `circuit` with precomputed `weights`.
    ///
    /// # Panics
    ///
    /// Panics if [`SinglePass::try_new`] would return an error — in
    /// particular if `weights` was computed for a different circuit
    /// (length mismatch).
    #[must_use]
    pub fn new(circuit: &'a Circuit, weights: &'a Weights, options: SinglePassOptions) -> Self {
        match SinglePass::try_new(circuit, weights, options) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates that the circuit is non-empty, that
    /// its node count fits the engine's compact `u32` node keys, that
    /// `weights` covers exactly the circuit's nodes, and that every gate's
    /// arity is within [`MAX_ANALYSIS_ARITY`].
    ///
    /// # Errors
    ///
    /// [`RelogicError::EmptyCircuit`], [`RelogicError::CircuitTooLarge`],
    /// [`RelogicError::LengthMismatch`], or [`RelogicError::ArityExceeded`].
    pub fn try_new(
        circuit: &'a Circuit,
        weights: &'a Weights,
        options: SinglePassOptions,
    ) -> Result<Self, RelogicError> {
        if circuit.is_empty() {
            return Err(RelogicError::EmptyCircuit);
        }
        if u32::try_from(circuit.len()).is_err() {
            return Err(RelogicError::CircuitTooLarge {
                nodes: circuit.len(),
            });
        }
        if weights.len() != circuit.len() {
            return Err(RelogicError::LengthMismatch {
                what: "weights",
                expected: circuit.len(),
                actual: weights.len(),
            });
        }
        for (id, node) in circuit.iter() {
            let arity = node.fanins().len();
            if arity > MAX_ANALYSIS_ARITY {
                return Err(RelogicError::ArityExceeded {
                    node: id,
                    arity,
                    max: MAX_ANALYSIS_ARITY,
                });
            }
        }
        let fanout = FanoutMap::build(circuit);
        let is_stem = circuit.node_ids().map(|id| fanout.is_stem(id)).collect();
        Ok(SinglePass {
            circuit,
            weights,
            options,
            is_stem,
        })
    }

    /// Runs the single topological pass for the failure probabilities `eps`.
    ///
    /// # Panics
    ///
    /// Panics if [`SinglePass::try_run`] would return an error — in
    /// particular if `eps` covers a different node count than the circuit.
    #[must_use]
    pub fn run(&self, eps: &GateEps) -> SinglePassResult {
        match self.try_run(eps) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible run: validates the ε map against the circuit before the
    /// pass and applies the configured numeric policy during it.
    ///
    /// Every ε must be finite and in `[0, 1]` — or `[0, 0.5]` when
    /// [`SinglePassOptions::strict`] is set (beyond 0.5 the BSC gate
    /// computes the complement more often than the function). Under strict,
    /// a correlation fallback or a non-finite excursion also turns into
    /// [`RelogicError::NumericRange`] instead of being absorbed.
    ///
    /// # Errors
    ///
    /// [`RelogicError::LengthMismatch`], [`RelogicError::InvalidEpsilon`],
    /// or (strict only) [`RelogicError::NumericRange`].
    pub fn try_run(&self, eps: &GateEps) -> Result<SinglePassResult, RelogicError> {
        if eps.len() != self.circuit.len() {
            return Err(RelogicError::LengthMismatch {
                what: "ε map",
                expected: self.circuit.len(),
                actual: eps.len(),
            });
        }
        let max_eps = if self.options.strict { 0.5 } else { 1.0 };
        for id in self.circuit.node_ids() {
            let e = eps.get(id);
            if !e.is_finite() || !(0.0..=max_eps).contains(&e) {
                return Err(RelogicError::InvalidEpsilon {
                    node: Some(id),
                    value: e,
                    max: max_eps,
                });
            }
        }
        let result = self.run_validated(eps);
        if self.options.strict {
            let d = result.diagnostics();
            if d.correlation_fallbacks() > 0 || d.worst_excursion().is_infinite() {
                return Err(RelogicError::NumericRange {
                    context: "correlation propagation",
                    value: f64::NAN,
                    lo: 0.0,
                    hi: 1.0,
                });
            }
        }
        Ok(result)
    }

    /// The pass itself, assuming pre-validated inputs.
    fn run_validated(&self, eps: &GateEps) -> SinglePassResult {
        let n = self.circuit.len();
        let mut diag = Diagnostics::new();
        let mut p01 = vec![0.0f64; n];
        let mut p10 = vec![0.0f64; n];
        let mut partners: Vec<HashMap<u32, PairCoeffs>> = vec![HashMap::new(); n];
        let mut scratch = PropagationScratch::default();

        for (id, node) in self.circuit.iter() {
            let i = id.index();
            let e = eps.get(id);
            match node.kind() {
                GateKind::Input | GateKind::Const(_) => {
                    p01[i] = e;
                    p10[i] = e;
                }
                kind => {
                    let w = self.weights.vector(id);
                    let fanins = node.fanins();
                    scratch.load_fanins(fanins, &p01, &p10);
                    let pair = PairLookup {
                        fanins,
                        partners: partners.as_slice(),
                        p01: &p01,
                        p10: &p10,
                        enabled: self.options.correlations,
                    };
                    let (r0, r1) =
                        propagated_ratios(kind, w, &scratch.base, &pair, None, &mut diag);
                    p01[i] = e + (1.0 - 2.0 * e) * r0;
                    p10[i] = e + (1.0 - 2.0 * e) * r1;

                    if self.options.correlations {
                        self.propagate_coefficients(
                            id,
                            kind,
                            w,
                            e,
                            &mut scratch,
                            &mut partners,
                            &p01,
                            &p10,
                            &mut diag,
                        );
                    }
                }
            }
        }

        let node_delta: Vec<f64> = (0..n)
            .map(|i| {
                let sp = self.weights.signal_probs()[i];
                (1.0 - sp) * p01[i] + sp * p10[i]
            })
            .collect();
        let per_output: Vec<f64> = self
            .circuit
            .outputs()
            .iter()
            .map(|o| node_delta[o.node().index()])
            .collect();
        SinglePassResult {
            p01,
            p10,
            node_delta,
            per_output,
            partners,
            diagnostics: diag,
        }
    }

    /// Computes the error-event coefficients `C_{id,k}` (and, when value
    /// conditioning is enabled, the signal-value coefficients `V_{id,k}`)
    /// for every partner `k` correlated with any fanin of `id` (plus fanins
    /// that are stems), and registers them symmetrically.
    #[allow(clippy::too_many_arguments)]
    fn propagate_coefficients(
        &self,
        id: NodeId,
        kind: GateKind,
        w: &[f64],
        e: f64,
        scratch: &mut PropagationScratch,
        partners: &mut [HashMap<u32, PairCoeffs>],
        p01: &[f64],
        p10: &[f64],
        diag: &mut Diagnostics,
    ) {
        let i = id.index();
        let node = self.circuit.node(id);
        let fanins = node.fanins();

        // Candidate partner set: everything correlated with a fanin, plus
        // stem fanins themselves.
        scratch.candidates.clear();
        for &f in fanins {
            for &k in partners[f.index()].keys() {
                if k as usize != i && !scratch.candidates.contains(&k) {
                    scratch.candidates.push(k);
                }
            }
            let fi = node_key(f.index());
            if self.is_stem[f.index()] && !scratch.candidates.contains(&fi) {
                scratch.candidates.push(fi);
            }
        }
        if scratch.candidates.is_empty() {
            return;
        }

        let candidates = std::mem::take(&mut scratch.candidates);
        let sp_l = self.weights.signal_probs()[i];
        let mut new_coeffs: Vec<(u32, PairCoeffs)> = Vec::with_capacity(candidates.len());
        let mut w_ctx: Vec<f64> = Vec::with_capacity(w.len());
        for &k in &candidates {
            let k_node = NodeId::from_index(k as usize);
            let mut coeffs = PAIR_INDEPENDENT;
            for ctx in 0..2usize {
                // Weight vector conditioned on the partner's fault-free
                // value (Fig. 4's "the terms of the weight vector W include
                // the signal probability of k", via the ref-[8] value
                // coefficients). Any overall scale cancels in the ratios.
                w_ctx.clear();
                if self.options.value_conditioning {
                    for (v, &wv) in w.iter().enumerate() {
                        let mut factor = 1.0f64;
                        for (j, &f) in fanins.iter().enumerate() {
                            let vj = v >> j & 1;
                            if f.index() == k as usize {
                                if vj != ctx {
                                    factor = 0.0;
                                    break;
                                }
                            } else if let Some(c) = partners[f.index()].get(&k) {
                                factor *= c.val[vj][ctx].max(0.0);
                            }
                        }
                        w_ctx.push(wv * factor);
                    }
                } else {
                    w_ctx.extend_from_slice(w);
                }

                // Signal-value coefficient V_{l,k}[·][ctx].
                if self.options.value_conditioning {
                    let mut mass = 0.0f64;
                    let mut mass1 = 0.0f64;
                    for (v, &wv) in w_ctx.iter().enumerate() {
                        mass += wv;
                        if kind.eval_combo(v, fanins.len()) {
                            mass1 += wv;
                        }
                    }
                    if mass > COEFF_EPS {
                        let p1_ctx = mass1 / mass;
                        coeffs.val[1][ctx] =
                            diag.clamp_coeff(ratio_or_one(p1_ctx, sp_l), 0.0, f64::INFINITY);
                        coeffs.val[0][ctx] = diag.clamp_coeff(
                            ratio_or_one(1.0 - p1_ctx, 1.0 - sp_l),
                            0.0,
                            f64::INFINITY,
                        );
                    }
                }

                // Error-event coefficient for the event whose fault-free
                // context is `ctx` (rise needs clean 0, fall clean 1).
                let ev_k = if ctx == 0 {
                    ErrorEvent::Rise
                } else {
                    ErrorEvent::Fall
                };
                let pk = match ev_k {
                    ErrorEvent::Rise => p01[k as usize],
                    ErrorEvent::Fall => p10[k as usize],
                };
                if pk <= COEFF_EPS {
                    // Event never occurs; coefficients are irrelevant.
                    continue;
                }
                // Condition every fanin's error probabilities on k's event.
                scratch.cond.clear();
                for &f in fanins {
                    let fi = f.index();
                    if fi == k as usize {
                        scratch.cond.push(match ev_k {
                            ErrorEvent::Rise => (1.0, 0.0),
                            ErrorEvent::Fall => (0.0, 1.0),
                        });
                    } else {
                        let c = partners[fi].get(&k).map_or(INDEPENDENT, |c| c.err);
                        scratch.cond.push((
                            diag.clamp_coeff(p01[fi] * c[0][ev_k.idx()], 0.0, 1.0),
                            diag.clamp_coeff(p10[fi] * c[1][ev_k.idx()], 0.0, 1.0),
                        ));
                    }
                }
                let pair = PairLookup {
                    fanins,
                    partners: &*partners,
                    p01,
                    p10,
                    enabled: true,
                };
                let (r0, r1) =
                    propagated_ratios(kind, &w_ctx, &scratch.cond, &pair, Some(k_node), diag);
                let cond_p01 = diag.clamp_prob(e + (1.0 - 2.0 * e) * r0, 0.0, 1.0);
                let cond_p10 = diag.clamp_prob(e + (1.0 - 2.0 * e) * r1, 0.0, 1.0);
                coeffs.err[0][ev_k.idx()] = ratio_or_one(cond_p01, p01[i]);
                coeffs.err[1][ev_k.idx()] = ratio_or_one(cond_p10, p10[i]);
            }
            if !pair_is_finite(&coeffs) {
                // Graceful degradation: a non-finite coefficient would
                // poison every downstream gate; drop the pair back to
                // independence and record the fallback.
                diag.record_fallback();
                continue;
            }
            if pair_strength(&coeffs) >= self.options.prune_tolerance {
                new_coeffs.push((k, coeffs));
            }
        }
        scratch.candidates = candidates;

        // Enforce the partner cap, keeping the strongest correlations.
        if let Some(cap) = self.options.partner_cap {
            if new_coeffs.len() > cap {
                new_coeffs.sort_by(|a, b| {
                    pair_strength(&b.1)
                        .partial_cmp(&pair_strength(&a.1))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                new_coeffs.truncate(cap);
            }
        }

        let iu = node_key(i);
        for (k, coeffs) in new_coeffs {
            partners[i].insert(k, coeffs);
            // Symmetric registration with transposed indices.
            let transposed = PairCoeffs {
                err: [
                    [coeffs.err[0][0], coeffs.err[1][0]],
                    [coeffs.err[0][1], coeffs.err[1][1]],
                ],
                val: [
                    [coeffs.val[0][0], coeffs.val[1][0]],
                    [coeffs.val[0][1], coeffs.val[1][1]],
                ],
            };
            partners[k as usize].insert(iu, transposed);
        }
    }
}

pub(crate) const COEFF_EPS: f64 = 1e-15;

fn ratio_or_one(num: f64, den: f64) -> f64 {
    if den <= COEFF_EPS {
        1.0
    } else {
        num / den
    }
}

fn coeff_strength(c: &CorrCoeffs) -> f64 {
    c.iter()
        .flatten()
        .map(|&x| (x - 1.0).abs())
        .fold(0.0, f64::max)
}

fn pair_strength(c: &PairCoeffs) -> f64 {
    coeff_strength(&c.err).max(coeff_strength(&c.val))
}

fn pair_is_finite(c: &PairCoeffs) -> bool {
    c.err.iter().flatten().all(|x| x.is_finite()) && c.val.iter().flatten().all(|x| x.is_finite())
}

#[derive(Default)]
struct PropagationScratch {
    base: Vec<(f64, f64)>,
    cond: Vec<(f64, f64)>,
    candidates: Vec<u32>,
}

impl std::fmt::Debug for PropagationScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PropagationScratch").finish_non_exhaustive()
    }
}

impl PropagationScratch {
    fn load_fanins(&mut self, fanins: &[NodeId], p01: &[f64], p10: &[f64]) {
        self.base.clear();
        self.base
            .extend(fanins.iter().map(|f| (p01[f.index()], p10[f.index()])));
    }
}

/// Lookup of pairwise correlation coefficients between two fanin positions.
struct PairLookup<'b> {
    fanins: &'b [NodeId],
    partners: &'b [HashMap<u32, PairCoeffs>],
    p01: &'b [f64],
    p10: &'b [f64],
    enabled: bool,
}

impl PairLookup<'_> {
    /// Coefficient applied to fanin `a`'s event given fanin `b`'s event.
    fn get(&self, a: usize, b: usize, ev_a: ErrorEvent, ev_b: ErrorEvent) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let na = self.fanins[a].index();
        let nb = self.fanins[b].index();
        if na == nb {
            // Same physical signal: events coincide exactly.
            if ev_a == ev_b {
                let p = match ev_a {
                    ErrorEvent::Rise => self.p01[na],
                    ErrorEvent::Fall => self.p10[na],
                };
                return if p <= COEFF_EPS { 1.0 } else { 1.0 / p };
            }
            return 0.0;
        }
        self.partners[na]
            .get(&node_key(nb))
            .map_or(1.0, |c| c.err[ev_a.idx()][ev_b.idx()])
    }
}

/// Computes `(PW(0)/W(0), PW(1)/W(1))`: the propagated error ratios of a
/// gate, generalizing Table 1 to arbitrary kinds and arities.
///
/// `probs[j]` is fanin `j`'s `(p01, p10)` (possibly conditioned on a
/// partner event); `exclude` marks a fanin node that is the conditioning
/// partner itself, whose pairwise coefficients with the other fanins are
/// already folded into `probs` (so its chain factors are skipped).
fn propagated_ratios(
    kind: GateKind,
    w: &[f64],
    probs: &[(f64, f64)],
    pair: &PairLookup<'_>,
    exclude: Option<NodeId>,
    diag: &mut Diagnostics,
) -> (f64, f64) {
    let k = probs.len();
    debug_assert_eq!(w.len(), 1 << k);
    let mut pw = [0.0f64; 2];
    let mut wsum = [0.0f64; 2];
    for (v, &wv) in w.iter().enumerate() {
        let out_v = usize::from(kind.eval_combo(v, k));
        wsum[out_v] += wv;
        if wv <= 0.0 {
            continue;
        }
        let mut flip_prob = 0.0f64;
        for u in 0..1usize << k {
            if usize::from(kind.eval_combo(u, k)) == out_v {
                continue;
            }
            let diff = v ^ u;
            let mut prob = 1.0f64;
            #[allow(clippy::needless_range_loop)]
            for j in 0..k {
                let vj = v >> j & 1;
                let flipped = diff >> j & 1 == 1;
                let ev_j = ErrorEvent::from_value(vj == 1);
                let mut q = if vj == 0 { probs[j].0 } else { probs[j].1 };
                if q > 0.0 {
                    // Condition on the flip set (§4.1's reweighting, e.g.
                    // (1 − Pr(j₁₀)·C_ij̃)): a flipped fanin is chained on the
                    // flipped fanins before it (so each pairwise coefficient
                    // enters once), while a non-flipped fanin's flip
                    // probability is conditioned on *every* flipped fanin.
                    let upper = if flipped { j } else { k };
                    for j2 in 0..upper {
                        if j2 != j
                            && diff >> j2 & 1 == 1
                            && exclude != Some(pair.fanins[j2])
                            && exclude != Some(pair.fanins[j])
                        {
                            let ev_j2 = ErrorEvent::from_value(v >> j2 & 1 == 1);
                            q *= pair.get(j, j2, ev_j, ev_j2);
                        }
                    }
                }
                let q = diag.clamp_coeff(q, 0.0, 1.0);
                prob *= if flipped { q } else { 1.0 - q };
                if prob <= 0.0 {
                    break;
                }
            }
            flip_prob += prob;
        }
        pw[out_v] += wv * diag.clamp_prob(flip_prob, 0.0, 1.0);
    }
    let r0 = if wsum[0] > COEFF_EPS {
        pw[0] / wsum[0]
    } else {
        0.0
    };
    let r1 = if wsum[1] > COEFF_EPS {
        pw[1] / wsum[1]
    } else {
        0.0
    };
    (diag.clamp_prob(r0, 0.0, 1.0), diag.clamp_prob(r1, 0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, InputDistribution};
    use relogic_sim::exact_reliability;

    fn weights(c: &Circuit) -> Weights {
        Weights::compute(c, &InputDistribution::Uniform, Backend::Bdd)
    }

    fn run(c: &Circuit, eps: &GateEps, opts: SinglePassOptions) -> SinglePassResult {
        let w = weights(c);
        SinglePass::new(c, &w, opts).run(eps)
    }

    #[test]
    fn single_gate_delta_equals_eps() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.nand([a, b]);
        c.add_output("y", g);
        let r = run(
            &c,
            &GateEps::uniform(&c, 0.23),
            SinglePassOptions::default(),
        );
        assert!((r.per_output()[0] - 0.23).abs() < 1e-12);
        assert!((r.p01(g) - 0.23).abs() < 1e-12);
        assert!((r.p10(g) - 0.23).abs() < 1e-12);
    }

    #[test]
    fn inverter_chain_matches_exact() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g1 = c.not(a);
        let g2 = c.not(g1);
        let g3 = c.not(g2);
        c.add_output("y", g3);
        for &e in &[0.05, 0.15, 0.3, 0.5] {
            let eps = GateEps::uniform(&c, e);
            let r = run(&c, &eps, SinglePassOptions::default());
            let exact = exact_reliability(&c, eps.as_slice());
            assert!(
                (r.per_output()[0] - exact.per_output[0]).abs() < 1e-12,
                "ε={e}: {} vs {}",
                r.per_output()[0],
                exact.per_output[0]
            );
        }
    }

    #[test]
    fn tree_circuit_is_exact_without_correlations() {
        // No reconvergent fanout ⇒ the plain single pass is exact (§4).
        let mut c = Circuit::new("tree");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let e_in = c.add_input("e");
        let g1 = c.and([a, b]);
        let g2 = c.or([d, e_in]);
        let g3 = c.xor([g1, g2]);
        c.add_output("y", g3);
        for &e in &[0.02, 0.1, 0.25, 0.4] {
            let eps = GateEps::uniform(&c, e);
            let r = run(&c, &eps, SinglePassOptions::without_correlations());
            let exact = exact_reliability(&c, eps.as_slice());
            assert!(
                (r.per_output()[0] - exact.per_output[0]).abs() < 1e-10,
                "ε={e}: {} vs {}",
                r.per_output()[0],
                exact.per_output[0]
            );
        }
    }

    #[test]
    fn mixed_gate_kinds_tree_is_exact() {
        let mut c = Circuit::new("tree2");
        let ins: Vec<_> = (0..6).map(|i| c.add_input(format!("x{i}"))).collect();
        let g1 = c.nand([ins[0], ins[1]]);
        let g2 = c.nor([ins[2], ins[3]]);
        let g3 = c.xnor([ins[4], ins[5]]);
        let g4 = c.or([g1, g2]);
        let g5 = c.and([g4, g3]);
        c.add_output("y", g5);
        let eps = GateEps::uniform(&c, 0.17);
        let r = run(&c, &eps, SinglePassOptions::without_correlations());
        let exact = exact_reliability(&c, eps.as_slice());
        assert!(
            (r.per_output()[0] - exact.per_output[0]).abs() < 1e-10,
            "{} vs {}",
            r.per_output()[0],
            exact.per_output[0]
        );
    }

    #[test]
    fn duplicate_fanin_handled_by_self_correlation() {
        // g = XOR(a', a') where a' = NOT(a) is noisy: the two fanins are the
        // same wire, so their errors always cancel in the XOR; only g's own
        // ε matters.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let inv = c.not(a);
        let g = c.xor([inv, inv]);
        c.add_output("y", g);
        let eps = GateEps::uniform(&c, 0.2);
        let r = run(&c, &eps, SinglePassOptions::default());
        let exact = exact_reliability(&c, eps.as_slice());
        assert!(
            (r.per_output()[0] - exact.per_output[0]).abs() < 1e-10,
            "{} vs {}",
            r.per_output()[0],
            exact.per_output[0]
        );
        assert!((r.per_output()[0] - 0.2).abs() < 1e-10);
    }

    #[test]
    fn correlations_improve_reconvergent_accuracy() {
        // The hardest reconvergence pattern: a stem reaching an XOR along
        // two branches. Errors on the stem cancel exactly at the XOR, which
        // the independence assumption misses entirely but the correlation
        // coefficients capture.
        let mut c = Circuit::new("xor_reconv");
        let a = c.add_input("a");
        let s = c.not(a); // stem
        let p = c.buf(s);
        let q = c.buf(s);
        let g = c.xor([p, q]);
        c.add_output("y", g);
        let w = weights(&c);
        let plain = SinglePass::new(&c, &w, SinglePassOptions::without_correlations());
        let corr = SinglePass::new(&c, &w, SinglePassOptions::default());
        for &e in &[0.05, 0.1, 0.2, 0.3] {
            let eps = GateEps::uniform(&c, e);
            let exact = exact_reliability(&c, eps.as_slice()).per_output[0];
            let pe = (plain.run(&eps).per_output()[0] - exact).abs();
            let ce = (corr.run(&eps).per_output()[0] - exact).abs();
            assert!(
                ce < pe,
                "ε={e}: corrected error {ce} should beat plain {pe}"
            );
            assert!(ce < 0.02, "ε={e}: corrected error {ce} too large");
        }
    }

    #[test]
    fn moderate_reconvergence_stays_accurate() {
        // AND/OR reconvergence: both modes should be close to exact; the
        // corrected mode must stay within 1% absolute.
        let mut c = Circuit::new("reconv");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.not(a); // stem
        let p = c.and([s, b]);
        let q = c.or([s, b]);
        let g = c.and([p, q]);
        c.add_output("y", g);
        let w = weights(&c);
        let corr = SinglePass::new(&c, &w, SinglePassOptions::default());
        for &e in &[0.05, 0.1, 0.2, 0.3] {
            let eps = GateEps::uniform(&c, e);
            let exact = exact_reliability(&c, eps.as_slice()).per_output[0];
            let ce = (corr.run(&eps).per_output()[0] - exact).abs();
            assert!(ce < 0.01, "ε={e}: corrected error {ce}");
        }
    }

    #[test]
    fn stem_descendants_carry_coefficients() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.not(a);
        let p = c.and([s, b]);
        let q = c.or([s, b]);
        c.add_output("y1", p);
        c.add_output("y2", q);
        let r = run(&c, &GateEps::uniform(&c, 0.1), SinglePassOptions::default());
        // p and q both descend from stem s: coefficients must be tracked.
        assert!(r.correlation(p, q).is_some());
        assert!(r.correlation(p, s).is_some());
        // a and b are independent of each other.
        assert!(r.correlation(a, b).is_none());
    }

    #[test]
    fn zero_eps_gives_zero_delta_everywhere() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.xor([a, b]);
        let g = c.and([s, a]);
        c.add_output("y", g);
        let r = run(&c, &GateEps::zero(&c), SinglePassOptions::default());
        for id in c.node_ids() {
            assert_eq!(r.node_delta(id), 0.0);
        }
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.nand([a, b]);
        let p = c.nor([s, a]);
        let q = c.xor([s, b]);
        let g = c.and([p, q]);
        c.add_output("y", g);
        for &e in &[0.0, 0.1, 0.3, 0.5, 0.49] {
            let r = run(&c, &GateEps::uniform(&c, e), SinglePassOptions::default());
            for id in c.node_ids() {
                assert!((0.0..=1.0).contains(&r.p01(id)), "p01({id})={}", r.p01(id));
                assert!((0.0..=1.0).contains(&r.p10(id)), "p10({id})={}", r.p10(id));
                assert!((0.0..=1.0).contains(&r.node_delta(id)));
            }
        }
    }

    #[test]
    fn noisy_inputs_propagate() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.buf(a);
        c.add_output("y", g);
        let mut eps = GateEps::zero(&c);
        eps.set(a, 0.3);
        let r = run(&c, &eps, SinglePassOptions::default());
        assert!((r.per_output()[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn partner_cap_limits_tracking() {
        // A stem with many descendants; cap 1 keeps only the strongest.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.not(a);
        let g1 = c.and([s, b]);
        let g2 = c.or([s, b]);
        let g3 = c.xor([g1, g2]);
        c.add_output("y", g3);
        let opts = SinglePassOptions {
            partner_cap: Some(1),
            ..SinglePassOptions::default()
        };
        let r = run(&c, &GateEps::uniform(&c, 0.2), opts);
        // still produces sane probabilities
        assert!((0.0..=1.0).contains(&r.per_output()[0]));
    }

    #[test]
    fn value_conditioning_extension_stays_bounded() {
        // The ref-[8] value-conditioning extension must keep every
        // probability legal and track the exact result at least as well as
        // a coarse envelope on a reconvergent circuit.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.nand([a, b]);
        let p = c.and([s, b]);
        let q = c.or([s, a]);
        let g = c.xor([p, q]);
        c.add_output("y", g);
        let w = weights(&c);
        let opts = SinglePassOptions {
            value_conditioning: true,
            ..SinglePassOptions::default()
        };
        let engine = SinglePass::new(&c, &w, opts);
        for &e in &[0.05, 0.2, 0.5] {
            let eps = GateEps::uniform(&c, e);
            let r = engine.run(&eps);
            for id in c.node_ids() {
                assert!((0.0..=1.0).contains(&r.p01(id)));
                assert!((0.0..=1.0).contains(&r.p10(id)));
            }
            let exact = exact_reliability(&c, eps.as_slice()).per_output[0];
            assert!(
                (r.per_output()[0] - exact).abs() < 0.05,
                "ε={e}: {} vs {exact}",
                r.per_output()[0]
            );
        }
        // The value coefficients are exposed for inspection.
        let r = engine.run(&GateEps::uniform(&c, 0.1));
        let v = r.value_correlation(p, q).expect("pair tracked");
        assert!(v.iter().flatten().all(|&x| x >= 0.0));
    }

    #[test]
    fn example_fig2_structure_runs() {
        // The shape of the paper's Fig. 2 walkthrough: a fanout at gate 2
        // reconverging at gate 6.
        let mut c = Circuit::new("fig2");
        let x1 = c.add_input("x1");
        let x2 = c.add_input("x2");
        let x3 = c.add_input("x3");
        let g1 = c.and([x1, x2]);
        let g2 = c.or([g1, x3]); // fanout stem
        let g4 = c.nand([g2, x1]);
        let g5 = c.nor([g2, x2]);
        let g6 = c.xor([g4, g5]);
        c.add_output("y", g6);
        let eps = GateEps::uniform(&c, 0.1);
        let exact = exact_reliability(&c, eps.as_slice()).per_output[0];
        let plain = run(&c, &eps, SinglePassOptions::without_correlations()).per_output()[0];
        let corr = run(&c, &eps, SinglePassOptions::default()).per_output()[0];
        assert!((corr - exact).abs() <= (plain - exact).abs() + 1e-9);
        assert!((corr - exact).abs() < 0.05);
    }

    #[test]
    fn try_new_rejects_empty_circuit() {
        let c = Circuit::new("empty");
        let mut c2 = Circuit::new("one");
        let a = c2.add_input("a");
        c2.add_output("y", a);
        let w = weights(&c2);
        let err = SinglePass::try_new(&c, &w, SinglePassOptions::default()).unwrap_err();
        assert!(matches!(err, RelogicError::EmptyCircuit));
    }

    #[test]
    fn try_new_rejects_mismatched_weights() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let mut other = Circuit::new("other");
        let b = other.add_input("b");
        other.add_output("y", b);
        let w = weights(&other);
        let err = SinglePass::try_new(&c, &w, SinglePassOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            RelogicError::LengthMismatch {
                what: "weights",
                ..
            }
        ));
    }

    #[test]
    fn try_run_rejects_mismatched_eps() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let mut other = Circuit::new("other");
        let b = other.add_input("b");
        other.add_output("y", b);
        let w = weights(&c);
        let engine = SinglePass::try_new(&c, &w, SinglePassOptions::default()).unwrap();
        let err = engine.try_run(&GateEps::uniform(&other, 0.1)).unwrap_err();
        assert!(matches!(
            err,
            RelogicError::LengthMismatch { what: "ε map", .. }
        ));
    }

    #[test]
    fn strict_rejects_eps_beyond_half() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let w = weights(&c);
        let opts = SinglePassOptions {
            strict: true,
            ..SinglePassOptions::default()
        };
        let engine = SinglePass::try_new(&c, &w, opts).unwrap();
        let err = engine.try_run(&GateEps::uniform(&c, 0.6)).unwrap_err();
        match err {
            RelogicError::InvalidEpsilon { value, max, .. } => {
                assert!((value - 0.6).abs() < 1e-12);
                assert!((max - 0.5).abs() < 1e-12);
            }
            other => panic!("unexpected error: {other}"),
        }
        // The same ε is fine without strict.
        let lenient = SinglePass::try_new(&c, &w, SinglePassOptions::default()).unwrap();
        assert!(lenient.try_run(&GateEps::uniform(&c, 0.6)).is_ok());
    }

    #[test]
    fn reconvergent_circuit_reports_clamp_diagnostics() {
        // The XOR-reconvergence lattice drives coefficient-weighted
        // products out of [0, 1]; the diagnostics must record it.
        let mut c = Circuit::new("xor_reconv");
        let a = c.add_input("a");
        let s = c.not(a);
        let p = c.buf(s);
        let q = c.buf(s);
        let g = c.xor([p, q]);
        c.add_output("y", g);
        let r = run(&c, &GateEps::uniform(&c, 0.2), SinglePassOptions::default());
        assert!(
            !r.diagnostics().is_clean(),
            "expected clamp events on a reconvergent XOR, got {:?}",
            r.diagnostics()
        );
        assert!(r.diagnostics().worst_excursion() > 0.0);
    }

    #[test]
    fn tree_circuit_diagnostics_are_clean() {
        let mut c = Circuit::new("tree");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        let r = run(&c, &GateEps::uniform(&c, 0.1), SinglePassOptions::default());
        assert!(r.diagnostics().is_clean(), "{:?}", r.diagnostics());
    }
}
