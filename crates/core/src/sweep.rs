//! ε-sweep drivers: evaluate δ(ε⃗) curves over a grid of uniform gate
//! failure probabilities, as every figure and table in the paper does
//! ("δ(ε⃗) for 50 different values of ε over the range 0 to 0.5").

use crate::{Diagnostics, GateEps, RelogicError, SinglePass, SinglePassOptions, Weights};
use relogic_netlist::Circuit;
use relogic_sim::{try_estimate, ChunkExecutor, MonteCarloConfig};

/// An evenly spaced ε grid of `points` values covering `[lo, hi]`
/// inclusive.
///
/// # Panics
///
/// Panics if `points == 0` or the range is invalid.
///
/// # Examples
///
/// ```
/// let grid = relogic::sweep::epsilon_grid(50, 0.0, 0.5);
/// assert_eq!(grid.len(), 50);
/// assert_eq!(grid[0], 0.0);
/// assert_eq!(*grid.last().unwrap(), 0.5);
/// ```
#[must_use]
pub fn epsilon_grid(points: usize, lo: f64, hi: f64) -> Vec<f64> {
    match try_epsilon_grid(points, lo, hi) {
        Ok(g) => g,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`epsilon_grid`].
///
/// # Errors
///
/// [`RelogicError::InvalidGrid`] if `points == 0` or the range is not an
/// increasing, finite subrange of `[0, 1]`.
pub fn try_epsilon_grid(points: usize, lo: f64, hi: f64) -> Result<Vec<f64>, RelogicError> {
    if points == 0 {
        return Err(RelogicError::InvalidGrid {
            message: "need at least one grid point".to_string(),
        });
    }
    if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi && hi <= 1.0) {
        return Err(RelogicError::InvalidGrid {
            message: format!("invalid ε range [{lo}, {hi}]"),
        });
    }
    Ok(epsilon_grid_validated(points, lo, hi))
}

fn epsilon_grid_validated(points: usize, lo: f64, hi: f64) -> Vec<f64> {
    if points == 1 {
        return vec![lo];
    }
    #[allow(clippy::cast_precision_loss)]
    let step = (hi - lo) / (points - 1) as f64;
    (0..points)
        .map(|i| {
            if i == points - 1 {
                hi
            } else {
                #[allow(clippy::cast_precision_loss)]
                let e = lo + step * i as f64;
                e.min(hi)
            }
        })
        .collect()
}

/// A family of δ(ε) curves: `delta[point][output]`.
#[derive(Clone, Debug)]
pub struct DeltaCurves {
    /// The ε grid.
    pub eps: Vec<f64>,
    /// `delta[i][k]` is δ of output `k` at `eps[i]`.
    pub delta: Vec<Vec<f64>>,
    /// Numerical diagnostics merged over every grid point (all-zero for
    /// the Monte Carlo and closed-form sweeps, which do not clamp).
    pub diagnostics: Diagnostics,
}

impl DeltaCurves {
    /// The curve of one output across the grid.
    #[must_use]
    pub fn output_curve(&self, output: usize) -> Vec<f64> {
        self.delta.iter().map(|row| row[output]).collect()
    }
}

/// Sweeps the single-pass engine over `eps_values` (uniform per-gate ε).
///
/// The weight vectors are computed by the caller once and shared across the
/// whole sweep — the reuse the paper highlights in §4(i). Equivalent to
/// [`sweep_single_pass_threads`] with `threads = 1`.
#[must_use]
pub fn sweep_single_pass(
    circuit: &Circuit,
    weights: &Weights,
    options: SinglePassOptions,
    eps_values: &[f64],
) -> DeltaCurves {
    sweep_single_pass_threads(circuit, weights, options, eps_values, 1)
}

/// Fallible [`sweep_single_pass`].
///
/// # Errors
///
/// Any error of [`SinglePass::try_new`] or [`SinglePass::try_run`], e.g. an
/// out-of-range ε under the strict policy.
pub fn try_sweep_single_pass(
    circuit: &Circuit,
    weights: &Weights,
    options: SinglePassOptions,
    eps_values: &[f64],
) -> Result<DeltaCurves, RelogicError> {
    try_sweep_single_pass_threads(circuit, weights, options, eps_values, 1)
}

/// Multi-threaded [`sweep_single_pass`]: grid points are evaluated in
/// parallel on `threads` workers (`0` = auto-detect) against one shared,
/// immutable [`SinglePass`] engine (and hence one shared [`Weights`]).
///
/// Each grid point is an independent, purely analytical evaluation, so the
/// curves are identical for every thread count.
#[must_use]
pub fn sweep_single_pass_threads(
    circuit: &Circuit,
    weights: &Weights,
    options: SinglePassOptions,
    eps_values: &[f64],
    threads: usize,
) -> DeltaCurves {
    match try_sweep_single_pass_threads(circuit, weights, options, eps_values, threads) {
        Ok(curves) => curves,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`sweep_single_pass_threads`]: the first grid point that fails
/// validation aborts the sweep with its error; per-point diagnostics are
/// merged into [`DeltaCurves::diagnostics`].
///
/// # Errors
///
/// Any error of [`SinglePass::try_new`], [`GateEps::try_uniform`], or
/// [`SinglePass::try_run`].
pub fn try_sweep_single_pass_threads(
    circuit: &Circuit,
    weights: &Weights,
    options: SinglePassOptions,
    eps_values: &[f64],
    threads: usize,
) -> Result<DeltaCurves, RelogicError> {
    // Uncorrelated, non-strict sweeps take the compiled grid engine: one
    // tape traversal carries many grid points at once and produces the
    // same curves as the per-point engine (same arithmetic per lane).
    // Strict mode stays on the per-point path for its ε ≤ 0.5 policy.
    if !options.correlations && !options.strict {
        return crate::SweepTape::try_new(circuit, weights)?.try_run_grid(eps_values, threads);
    }
    let engine = SinglePass::try_new(circuit, weights, options)?;
    let rows = ChunkExecutor::new(threads).map_chunks(eps_values.len(), |i| {
        let eps = GateEps::try_uniform(circuit, eps_values[i])?;
        let r = engine.try_run(&eps)?;
        Ok::<_, RelogicError>((r.per_output().to_vec(), r.diagnostics().clone()))
    });
    let mut delta = Vec::with_capacity(rows.len());
    let mut diagnostics = Diagnostics::new();
    for row in rows {
        let (d, diag) = row?;
        delta.push(d);
        diagnostics.merge(&diag);
    }
    Ok(DeltaCurves {
        eps: eps_values.to_vec(),
        delta,
        diagnostics,
    })
}

/// Sweeps Monte Carlo fault injection over `eps_values`, deriving a distinct
/// RNG seed per point from `config.seed`. Equivalent to
/// [`sweep_monte_carlo_threads`] with `threads = 1`.
#[must_use]
pub fn sweep_monte_carlo(
    circuit: &Circuit,
    config: &MonteCarloConfig,
    eps_values: &[f64],
) -> DeltaCurves {
    sweep_monte_carlo_threads(circuit, config, eps_values, 1)
}

/// Fallible [`sweep_monte_carlo`].
///
/// # Errors
///
/// [`RelogicError::Sim`] wrapping any Monte Carlo validation failure (zero
/// pattern budget, bad ε vector …), or [`GateEps::try_uniform`] errors.
pub fn try_sweep_monte_carlo(
    circuit: &Circuit,
    config: &MonteCarloConfig,
    eps_values: &[f64],
) -> Result<DeltaCurves, RelogicError> {
    try_sweep_monte_carlo_threads(circuit, config, eps_values, 1)
}

/// Multi-threaded [`sweep_monte_carlo`]: grid points run in parallel on
/// `threads` workers (`0` = auto-detect).
///
/// When the sweep fans out (`> 1` workers), each point's estimator runs
/// single-threaded — the sweep itself is the parallel axis, so nesting would
/// only oversubscribe; on a sequential sweep the estimator keeps
/// `config.threads`. Every point draws from a seed derived off `config.seed`
/// and the point index alone, and the estimator is bit-identical for every
/// `threads` value, so the whole sweep is too — a 7-thread sweep reproduces
/// the 1-thread curves exactly.
#[must_use]
pub fn sweep_monte_carlo_threads(
    circuit: &Circuit,
    config: &MonteCarloConfig,
    eps_values: &[f64],
    threads: usize,
) -> DeltaCurves {
    match try_sweep_monte_carlo_threads(circuit, config, eps_values, threads) {
        Ok(curves) => curves,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`sweep_monte_carlo_threads`].
///
/// # Errors
///
/// [`RelogicError::Sim`] wrapping any Monte Carlo validation failure, or
/// [`GateEps::try_uniform`] errors.
pub fn try_sweep_monte_carlo_threads(
    circuit: &Circuit,
    config: &MonteCarloConfig,
    eps_values: &[f64],
    threads: usize,
) -> Result<DeltaCurves, RelogicError> {
    let executor = ChunkExecutor::new(threads);
    let inner_threads = if executor.threads() > 1 {
        1
    } else {
        config.threads
    };
    let rows = executor.map_chunks(eps_values.len(), |i| {
        let cfg = MonteCarloConfig {
            seed: config
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
            threads: inner_threads,
            ..config.clone()
        };
        let eps = GateEps::try_uniform(circuit, eps_values[i])?;
        let est = try_estimate(circuit, eps.as_slice(), &cfg)?;
        Ok::<_, RelogicError>(est.per_output().to_vec())
    });
    let delta = rows.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(DeltaCurves {
        eps: eps_values.to_vec(),
        delta,
        diagnostics: Diagnostics::new(),
    })
}

/// Sweeps the observability closed form (Eq. 3) over `eps_values`.
/// Equivalent to [`sweep_closed_form_threads`] with `threads = 1`.
#[must_use]
pub fn sweep_closed_form(
    circuit: &Circuit,
    obs: &crate::ObservabilityMatrix,
    eps_values: &[f64],
) -> DeltaCurves {
    sweep_closed_form_threads(circuit, obs, eps_values, 1)
}

/// Multi-threaded [`sweep_closed_form`]: grid points are evaluated in
/// parallel on `threads` workers (`0` = auto-detect) against the shared,
/// immutable observability matrix.
#[must_use]
pub fn sweep_closed_form_threads(
    circuit: &Circuit,
    obs: &crate::ObservabilityMatrix,
    eps_values: &[f64],
    threads: usize,
) -> DeltaCurves {
    match try_sweep_closed_form_threads(circuit, obs, eps_values, threads) {
        Ok(curves) => curves,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`sweep_closed_form_threads`].
///
/// # Errors
///
/// [`GateEps::try_uniform`] errors for any grid value outside `[0, 1]`.
pub fn try_sweep_closed_form_threads(
    circuit: &Circuit,
    obs: &crate::ObservabilityMatrix,
    eps_values: &[f64],
    threads: usize,
) -> Result<DeltaCurves, RelogicError> {
    let rows = ChunkExecutor::new(threads).map_chunks(eps_values.len(), |i| {
        GateEps::try_uniform(circuit, eps_values[i]).map(|eps| obs.closed_form(&eps))
    });
    let delta = rows.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(DeltaCurves {
        eps: eps_values.to_vec(),
        delta,
        diagnostics: Diagnostics::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, InputDistribution, ObservabilityMatrix};

    fn circuit() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        let h = c.not(g);
        c.add_output("y", h);
        c
    }

    #[test]
    fn grid_endpoints_and_spacing() {
        let g = epsilon_grid(6, 0.05, 0.3);
        assert_eq!(g.len(), 6);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[5] - 0.3).abs() < 1e-12);
        assert!((g[1] - 0.1).abs() < 1e-12);
        assert_eq!(epsilon_grid(1, 0.2, 0.5), vec![0.2]);
    }

    #[test]
    fn try_grid_rejects_bad_requests() {
        use crate::RelogicError;
        assert!(matches!(
            try_epsilon_grid(0, 0.0, 0.5),
            Err(RelogicError::InvalidGrid { .. })
        ));
        assert!(matches!(
            try_epsilon_grid(5, 0.4, 0.1),
            Err(RelogicError::InvalidGrid { .. })
        ));
        assert!(matches!(
            try_epsilon_grid(5, 0.0, f64::NAN),
            Err(RelogicError::InvalidGrid { .. })
        ));
        assert!(try_epsilon_grid(5, 0.0, 0.5).is_ok());
    }

    #[test]
    fn try_sweep_propagates_grid_point_errors() {
        use crate::RelogicError;
        let c = circuit();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let err = try_sweep_single_pass(&c, &w, SinglePassOptions::default(), &[0.1, 1.5]);
        assert!(matches!(err, Err(RelogicError::InvalidEpsilon { .. })));
        let ok = try_sweep_single_pass(&c, &w, SinglePassOptions::default(), &[0.1, 0.2]).unwrap();
        assert_eq!(ok.delta.len(), 2);
    }

    #[test]
    fn single_pass_sweep_is_monotone_from_zero() {
        let c = circuit();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let grid = epsilon_grid(6, 0.0, 0.25);
        let curves = sweep_single_pass(&c, &w, SinglePassOptions::default(), &grid);
        assert_eq!(curves.delta.len(), 6);
        assert_eq!(curves.delta[0], vec![0.0]);
        let curve = curves.output_curve(0);
        for win in curve.windows(2) {
            assert!(win[1] >= win[0] - 1e-12, "δ should grow with ε here");
        }
    }

    #[test]
    fn monte_carlo_sweep_tracks_single_pass() {
        let c = circuit();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let grid = epsilon_grid(4, 0.0, 0.3);
        let sp = sweep_single_pass(&c, &w, SinglePassOptions::default(), &grid);
        let mc = sweep_monte_carlo(
            &c,
            &MonteCarloConfig {
                patterns: 1 << 15,
                ..MonteCarloConfig::default()
            },
            &grid,
        );
        for (s, m) in sp.delta.iter().zip(&mc.delta) {
            assert!((s[0] - m[0]).abs() < 0.02, "{} vs {}", s[0], m[0]);
        }
    }

    #[test]
    fn sweeps_are_identical_for_every_thread_count() {
        let c = circuit();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let grid = epsilon_grid(7, 0.0, 0.4);
        let sp1 = sweep_single_pass_threads(&c, &w, SinglePassOptions::default(), &grid, 1);
        let cfg = MonteCarloConfig {
            patterns: 4096,
            ..MonteCarloConfig::default()
        };
        let mc1 = sweep_monte_carlo_threads(&c, &cfg, &grid, 1);
        for threads in [2, 3, 7] {
            let sp =
                sweep_single_pass_threads(&c, &w, SinglePassOptions::default(), &grid, threads);
            assert_eq!(sp.delta, sp1.delta, "single-pass sweep @ {threads} threads");
            let mc = sweep_monte_carlo_threads(&c, &cfg, &grid, threads);
            assert_eq!(mc.delta, mc1.delta, "MC sweep @ {threads} threads");
        }
        // The sequential wrapper is the threads = 1 case.
        let mc_wrap = sweep_monte_carlo(&c, &cfg, &grid);
        assert_eq!(mc_wrap.delta, mc1.delta);
    }

    #[test]
    fn closed_form_sweep_matches_single_pass_at_small_eps() {
        let c = circuit();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let grid = epsilon_grid(3, 0.0, 0.02);
        let sp = sweep_single_pass(&c, &w, SinglePassOptions::default(), &grid);
        let cf = sweep_closed_form(&c, &obs, &grid);
        for (s, f) in sp.delta.iter().zip(&cf.delta) {
            assert!((s[0] - f[0]).abs() < 1e-3);
        }
    }
}
