//! Grid-vectorized single-pass sweep engine over a compiled circuit tape.
//!
//! [`crate::sweep::try_sweep_single_pass_threads`] evaluates the plain §4
//! algorithm once per ε grid point, re-walking the node graph and
//! re-deriving each gate's flip enumeration (`propagated_ratios`) every
//! time. For a 50-point sweep that is 50 traversals of structure that
//! never changes across the grid.
//!
//! [`SweepTape`] lowers the ε-independent part of the uncorrelated
//! single-pass recurrence into a flat program once, and then carries the
//! *entire grid* through one traversal:
//!
//! * Per gate, the `(error-free combination v, perturbed combination u)`
//!   enumeration is compiled to a stream of *factors* — `(value row,
//!   complement?)` pairs — with the weight `w_v`, the output polarity, and
//!   the ε-independent weight sums `W(0)`, `W(1)` hoisted next to them.
//!   Gate-kind dispatch, combination evaluation, and correlation lookups
//!   all disappear from the hot loop.
//! * Per node, the engine keeps one `(p01, p10)` *vector* per slot — one
//!   lane per grid point — in structure-of-arrays form, so every factor
//!   multiplication is a contiguous elementwise loop over the grid axis
//!   that the compiler vectorizes.
//!
//! The arithmetic per lane is the same sequence of operations, in the same
//! order, as [`crate::SinglePass`] with
//! [`crate::SinglePassOptions::without_correlations`]: the same flip-sum
//! accumulation order, the same clamps through [`Diagnostics`], the same
//! `ε + (1−2ε)·r` mix, the same `W(b)` guard against [`COEFF_EPS`]. Grid
//! lanes never interact, so results are also identical for every thread
//! count and grid chunking.

use crate::single_pass::COEFF_EPS;
use crate::sweep::DeltaCurves;
use crate::weights::MAX_ANALYSIS_ARITY;
use crate::{Diagnostics, GateEps, RelogicError, Weights};
use relogic_netlist::{Circuit, NodeId};
use relogic_sim::{CancelToken, ChunkExecutor, CircuitTape};

/// Grid points carried per traversal (the vector width of the value
/// rows). A chunk of this many ε values shares one pass; the lanes are
/// independent, so the choice only affects throughput, never results.
const GRID_LANES: usize = 16;

/// One compiled gate: where it writes, its arity, its ε-independent
/// weight sums, and the slice of [`SweepTape::vgroups`] that belongs to
/// it.
#[derive(Clone, Debug)]
struct GateHeader {
    slot: u32,
    arity: u32,
    wsum0: f64,
    wsum1: f64,
    vg_start: u32,
    vg_end: u32,
}

/// One error-free input combination `v` with positive weight: its weight,
/// the gate output it produces, and its run of `n_trans × arity` factors
/// in [`SweepTape::factors`].
#[derive(Clone, Debug)]
struct VGroup {
    wv: f64,
    out1: bool,
    n_trans: u32,
    f_start: u32,
}

/// Per-output δ assembly data: the output's slot and signal probability.
#[derive(Clone, Debug)]
struct OutputTap {
    slot: u32,
    signal_prob: f64,
}

/// The uncorrelated §4 recurrence compiled against a [`CircuitTape`]:
/// evaluates entire ε grids in one topological traversal.
///
/// # Examples
///
/// ```
/// use relogic::{Backend, InputDistribution, SweepTape, Weights};
/// use relogic_netlist::Circuit;
///
/// let mut c = Circuit::new("inv");
/// let a = c.add_input("a");
/// let g = c.not(a);
/// c.add_output("y", g);
///
/// let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
/// let tape = SweepTape::try_new(&c, &w).unwrap();
/// let curves = tape.try_run_grid(&[0.0, 0.1, 0.2], 1).unwrap();
/// assert!((curves.delta[1][0] - 0.1).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SweepTape {
    n_slots: usize,
    /// Node index of each slot (for ε lookup and node-δ assembly).
    node_of_slot: Vec<u32>,
    /// Whether the slot's kind is a gate (draws ε from a uniform grid) or
    /// a source (ε = 0 under [`GateEps::try_uniform`] semantics).
    is_gate: Vec<bool>,
    /// Signal probability of each slot (for δ assembly).
    signal_prob: Vec<f64>,
    gates: Vec<GateHeader>,
    vgroups: Vec<VGroup>,
    /// Factor stream: value-row indices `fanin_slot·4 + v_j + 2·c`. Row
    /// `+v_j` selects the fanin's `p01` (clean value 0) or `p10` (clean
    /// value 1) vector; `c = 1` selects the precomputed complement row
    /// `1 − q` (fanin not in the flip set) instead of `q`. Complements
    /// are materialized once per slot, so every factor is a pure
    /// multiply.
    factors: Vec<u32>,
    outputs: Vec<OutputTap>,
}

/// Result of evaluating one ε configuration on a [`SweepTape`].
#[derive(Clone, Debug)]
pub struct SweepPoint {
    per_output: Vec<f64>,
    node_delta: Vec<f64>,
    p01: Vec<f64>,
    p10: Vec<f64>,
    diagnostics: Diagnostics,
}

impl SweepPoint {
    /// `δ_y` for each primary output, in declaration order.
    #[must_use]
    pub fn per_output(&self) -> &[f64] {
        &self.per_output
    }

    /// Unconditional error probability of `node`.
    #[must_use]
    pub fn node_delta(&self, node: NodeId) -> f64 {
        self.node_delta[node.index()]
    }

    /// `Pr(0→1)` of `node`: probability its clean-0 value reads 1.
    #[must_use]
    pub fn p01(&self, node: NodeId) -> f64 {
        self.p01[node.index()]
    }

    /// `Pr(1→0)` of `node`: probability its clean-1 value reads 0.
    #[must_use]
    pub fn p10(&self, node: NodeId) -> f64 {
        self.p10[node.index()]
    }

    /// All per-node deltas, indexed by `NodeId::index`.
    #[must_use]
    pub fn node_deltas(&self) -> &[f64] {
        &self.node_delta
    }

    /// Numerical diagnostics of the run.
    #[must_use]
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }
}

impl SweepTape {
    /// Compiles the uncorrelated single-pass program for `circuit`,
    /// lowering through a freshly compiled [`CircuitTape`].
    ///
    /// # Errors
    ///
    /// The same construction errors as [`crate::SinglePass::try_new`]:
    /// [`RelogicError::EmptyCircuit`], [`RelogicError::CircuitTooLarge`],
    /// [`RelogicError::LengthMismatch`], or
    /// [`RelogicError::ArityExceeded`].
    pub fn try_new(circuit: &Circuit, weights: &Weights) -> Result<Self, RelogicError> {
        Self::validate(circuit, weights)?;
        let tape = CircuitTape::compile(circuit);
        Ok(Self::compile_validated(circuit, &tape, weights))
    }

    /// Like [`SweepTape::try_new`], but lowers through an existing
    /// [`CircuitTape`] (e.g. one shared with the Monte Carlo engine or an
    /// artifact cache) instead of compiling a fresh one.
    ///
    /// # Errors
    ///
    /// As [`SweepTape::try_new`], plus [`RelogicError::LengthMismatch`]
    /// when `tape` was compiled for a different circuit.
    pub fn try_with_tape(
        circuit: &Circuit,
        tape: &CircuitTape,
        weights: &Weights,
    ) -> Result<Self, RelogicError> {
        Self::validate(circuit, weights)?;
        if tape.n_slots() != circuit.len() {
            return Err(RelogicError::LengthMismatch {
                what: "circuit tape",
                expected: circuit.len(),
                actual: tape.n_slots(),
            });
        }
        Ok(Self::compile_validated(circuit, tape, weights))
    }

    fn validate(circuit: &Circuit, weights: &Weights) -> Result<(), RelogicError> {
        if circuit.is_empty() {
            return Err(RelogicError::EmptyCircuit);
        }
        if u32::try_from(circuit.len()).is_err() {
            return Err(RelogicError::CircuitTooLarge {
                nodes: circuit.len(),
            });
        }
        if weights.len() != circuit.len() {
            return Err(RelogicError::LengthMismatch {
                what: "weights",
                expected: circuit.len(),
                actual: weights.len(),
            });
        }
        for (id, node) in circuit.iter() {
            let arity = node.fanins().len();
            if arity > MAX_ANALYSIS_ARITY {
                return Err(RelogicError::ArityExceeded {
                    node: id,
                    arity,
                    max: MAX_ANALYSIS_ARITY,
                });
            }
        }
        Ok(())
    }

    #[allow(clippy::cast_possible_truncation)] // counts bounded by the u32 node check
    fn compile_validated(circuit: &Circuit, tape: &CircuitTape, weights: &Weights) -> Self {
        let n = tape.n_slots();
        let mut node_of_slot = Vec::with_capacity(n);
        let mut is_gate = Vec::with_capacity(n);
        let mut signal_prob = Vec::with_capacity(n);
        let mut gates = Vec::new();
        let mut vgroups: Vec<VGroup> = Vec::new();
        let mut factors: Vec<u32> = Vec::new();

        for slot in 0..n {
            let node_idx = tape.node_of_slot(slot);
            let kind = tape.kind(slot);
            node_of_slot.push(node_idx as u32);
            is_gate.push(kind.is_gate());
            signal_prob.push(weights.signal_probs()[node_idx]);
            if !kind.is_gate() {
                continue;
            }

            let fanins = tape.fanins(slot);
            let k = fanins.len();
            let w = weights.vector(NodeId::from_index(node_idx));
            let vg_start = vgroups.len() as u32;
            let mut wsum = [0.0f64; 2];
            for (v, &wv) in w.iter().enumerate() {
                let out_v = usize::from(kind.eval_combo(v, k));
                wsum[out_v] += wv;
                if wv <= 0.0 {
                    continue;
                }
                let f_start = factors.len() as u32;
                let mut n_trans = 0u32;
                for u in 0..1usize << k {
                    if usize::from(kind.eval_combo(u, k)) == out_v {
                        continue;
                    }
                    n_trans += 1;
                    let diff = v ^ u;
                    for (j, &f) in fanins.iter().enumerate() {
                        let vj = (v >> j & 1) as u32;
                        let complement = diff >> j & 1 == 0;
                        factors.push(f * 4 + vj + 2 * u32::from(complement));
                    }
                }
                vgroups.push(VGroup {
                    wv,
                    out1: out_v == 1,
                    n_trans,
                    f_start,
                });
            }
            gates.push(GateHeader {
                slot: slot as u32,
                arity: k as u32,
                wsum0: wsum[0],
                wsum1: wsum[1],
                vg_start,
                vg_end: vgroups.len() as u32,
            });
        }

        let outputs = circuit
            .outputs()
            .iter()
            .map(|o| OutputTap {
                slot: tape.slot_of_node(o.node().index()) as u32,
                signal_prob: weights.signal_probs()[o.node().index()],
            })
            .collect();

        SweepTape {
            n_slots: n,
            node_of_slot,
            is_gate,
            signal_prob,
            gates,
            vgroups,
            factors,
            outputs,
        }
    }

    /// Number of slots (= nodes in the source circuit).
    #[must_use]
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Heap footprint of the compiled program.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        self.node_of_slot.len() * 4
            + self.is_gate.len()
            + self.signal_prob.len() * 8
            + self.gates.len() * std::mem::size_of::<GateHeader>()
            + self.vgroups.len() * std::mem::size_of::<VGroup>()
            + self.factors.len() * 4
            + self.outputs.len() * std::mem::size_of::<OutputTap>()
    }

    /// Evaluates δ(ε) for every output at every value of `eps_values`
    /// (uniform per-gate ε, sources at 0 — the exact configuration of
    /// [`crate::sweep::try_sweep_single_pass`]), carrying [`GRID_LANES`]
    /// grid points per traversal and fanning chunks of the grid out over
    /// `threads` workers (`0` = auto-detect).
    ///
    /// # Errors
    ///
    /// [`RelogicError::InvalidEpsilon`] if any grid value is non-finite
    /// or outside `[0, 1]`.
    pub fn try_run_grid(
        &self,
        eps_values: &[f64],
        threads: usize,
    ) -> Result<DeltaCurves, RelogicError> {
        self.try_run_grid_cancellable(eps_values, threads, &CancelToken::new())
    }

    /// [`SweepTape::try_run_grid`] under a [`CancelToken`]: the token is
    /// polled at every grid-chunk hand-out ([`GRID_LANES`] grid points,
    /// the check-interval granularity of the sweep engine). A fired token
    /// returns [`RelogicError::Cancelled`] — never a partial curve. A
    /// sweep that completes before the token fires is bit-identical to an
    /// undeadlined sweep at every thread count.
    ///
    /// # Errors
    ///
    /// Everything [`SweepTape::try_run_grid`] returns, plus
    /// [`RelogicError::Cancelled`] when `cancel` fires mid-sweep.
    pub fn try_run_grid_cancellable(
        &self,
        eps_values: &[f64],
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<DeltaCurves, RelogicError> {
        for &e in eps_values {
            if !e.is_finite() || !(0.0..=1.0).contains(&e) {
                return Err(RelogicError::InvalidEpsilon {
                    node: None,
                    value: e,
                    max: 1.0,
                });
            }
        }
        let chunks = eps_values.len().div_ceil(GRID_LANES);
        let (rows, _) = ChunkExecutor::new(threads).try_map_chunks_with_state(
            chunks,
            cancel,
            "sweep_grid_chunk",
            || vec![0.0f64; self.n_slots * 4 * GRID_LANES],
            |vals, chunk| {
                let grid = &eps_values[chunk * GRID_LANES..];
                let grid = &grid[..grid.len().min(GRID_LANES)];
                let mut diag = Diagnostics::new();
                let deltas = self.run_lanes(
                    grid.len(),
                    |slot, lane| if self.is_gate[slot] { grid[lane] } else { 0.0 },
                    vals,
                    &mut diag,
                );
                Ok((deltas, diag))
            },
        )?;
        let mut delta = Vec::with_capacity(eps_values.len());
        let mut diagnostics = Diagnostics::new();
        for (rows, diag) in rows {
            delta.extend(rows);
            diagnostics.merge(&diag);
        }
        Ok(DeltaCurves {
            eps: eps_values.to_vec(),
            delta,
            diagnostics,
        })
    }

    /// Evaluates one arbitrary per-node ε configuration (a single grid
    /// lane), returning per-output and per-node deltas.
    ///
    /// # Errors
    ///
    /// [`RelogicError::LengthMismatch`] if `eps` covers a different node
    /// count, or [`RelogicError::InvalidEpsilon`] for any non-finite or
    /// out-of-range value.
    pub fn try_run_point(&self, eps: &GateEps) -> Result<SweepPoint, RelogicError> {
        if eps.len() != self.n_slots {
            return Err(RelogicError::LengthMismatch {
                what: "ε map",
                expected: self.n_slots,
                actual: eps.len(),
            });
        }
        for i in 0..self.n_slots {
            let id = NodeId::from_index(i);
            let e = eps.get(id);
            if !e.is_finite() || !(0.0..=1.0).contains(&e) {
                return Err(RelogicError::InvalidEpsilon {
                    node: Some(id),
                    value: e,
                    max: 1.0,
                });
            }
        }
        let mut vals = vec![0.0f64; self.n_slots * 4 * GRID_LANES];
        let mut diag = Diagnostics::new();
        let deltas = self.run_lanes(
            1,
            |slot, _| eps.get(NodeId::from_index(self.node_of_slot[slot] as usize)),
            &mut vals,
            &mut diag,
        );
        let mut node_delta = vec![0.0f64; self.n_slots];
        let mut p01 = vec![0.0f64; self.n_slots];
        let mut p10 = vec![0.0f64; self.n_slots];
        for slot in 0..self.n_slots {
            let sp = self.signal_prob[slot];
            let node = self.node_of_slot[slot] as usize;
            p01[node] = vals[slot * 4 * GRID_LANES];
            p10[node] = vals[(slot * 4 + 1) * GRID_LANES];
            node_delta[node] = (1.0 - sp) * p01[node] + sp * p10[node];
        }
        let per_output = deltas.into_iter().next().unwrap_or_default();
        Ok(SweepPoint {
            per_output,
            node_delta,
            p01,
            p10,
            diagnostics: diag,
        })
    }

    /// One traversal carrying `w ≤ GRID_LANES` grid lanes. `eps_of(slot,
    /// lane)` supplies each slot's ε; `vals` is the `n_slots × 4 ×
    /// GRID_LANES` value buffer (`p01`, `p10`, `1−p01`, `1−p10` rows per
    /// slot). Returns one per-output δ row per lane.
    fn run_lanes<E>(
        &self,
        w: usize,
        eps_of: E,
        vals: &mut [f64],
        diag: &mut Diagnostics,
    ) -> Vec<Vec<f64>>
    where
        E: Fn(usize, usize) -> f64,
    {
        const G: usize = GRID_LANES;

        // Sources: p01 = p10 = ε (no propagated component).
        for slot in 0..self.n_slots {
            if !self.is_gate[slot] {
                for lane in 0..w {
                    let e = eps_of(slot, lane);
                    vals[slot * 4 * G + lane] = e;
                    vals[(slot * 4 + 1) * G + lane] = e;
                    vals[(slot * 4 + 2) * G + lane] = 1.0 - e;
                    vals[(slot * 4 + 3) * G + lane] = 1.0 - e;
                }
            }
        }

        for h in &self.gates {
            let slot = h.slot as usize;
            let (lo, hi) = vals.split_at_mut(slot * 4 * G);
            let mut pw0 = [0.0f64; G];
            let mut pw1 = [0.0f64; G];
            for vg in &self.vgroups[h.vg_start as usize..h.vg_end as usize] {
                let mut flip = [0.0f64; G];
                let mut fi = vg.f_start as usize;
                for _ in 0..vg.n_trans {
                    // The first factor initializes `prod` directly (the
                    // skipped `1.0 ×` is an exact identity); the rest are
                    // uniform row multiplies.
                    let row = &lo[self.factors[fi] as usize * G..][..G];
                    let mut prod = [0.0f64; G];
                    prod[..w].copy_from_slice(&row[..w]);
                    for &f in &self.factors[fi + 1..fi + h.arity as usize] {
                        let row = &lo[f as usize * G..][..G];
                        for g in 0..w {
                            prod[g] *= row[g];
                        }
                    }
                    fi += h.arity as usize;
                    for g in 0..w {
                        flip[g] += prod[g];
                    }
                }
                // Vectorizable in-range pre-check: `clamp_prob` returns
                // in-range values unchanged and records nothing, so the
                // scalar path is only needed on an actual excursion
                // (NaN fails the check too).
                let mut ok = true;
                for &f in &flip[..w] {
                    ok &= (0.0..=1.0).contains(&f);
                }
                if !ok {
                    for f in flip[..w].iter_mut() {
                        *f = diag.clamp_prob(*f, 0.0, 1.0);
                    }
                }
                let pw = if vg.out1 { &mut pw1 } else { &mut pw0 };
                for g in 0..w {
                    pw[g] += vg.wv * flip[g];
                }
            }
            let dst = &mut hi[..4 * G];
            let mut r0 = [0.0f64; G];
            let mut r1 = [0.0f64; G];
            if h.wsum0 > COEFF_EPS {
                for g in 0..w {
                    r0[g] = pw0[g] / h.wsum0;
                }
            }
            if h.wsum1 > COEFF_EPS {
                for g in 0..w {
                    r1[g] = pw1[g] / h.wsum1;
                }
            }
            let mut ok = true;
            for g in 0..w {
                ok &= (0.0..=1.0).contains(&r0[g]) && (0.0..=1.0).contains(&r1[g]);
            }
            if !ok {
                for g in 0..w {
                    r0[g] = diag.clamp_prob(r0[g], 0.0, 1.0);
                    r1[g] = diag.clamp_prob(r1[g], 0.0, 1.0);
                }
            }
            for g in 0..w {
                let e = eps_of(slot, g);
                let p01 = e + (1.0 - 2.0 * e) * r0[g];
                let p10 = e + (1.0 - 2.0 * e) * r1[g];
                dst[g] = p01;
                dst[G + g] = p10;
                dst[2 * G + g] = 1.0 - p01;
                dst[3 * G + g] = 1.0 - p10;
            }
        }

        (0..w)
            .map(|g| {
                self.outputs
                    .iter()
                    .map(|o| {
                        let sp = o.signal_prob;
                        let p01 = vals[o.slot as usize * 4 * G + g];
                        let p10 = vals[(o.slot as usize * 4 + 1) * G + g];
                        (1.0 - sp) * p01 + sp * p10
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, InputDistribution, SinglePass, SinglePassOptions};
    use relogic_netlist::Circuit;

    fn reconvergent() -> Circuit {
        // Reconvergent fanout: the uncorrelated engines agree with each
        // other (that is what the tape reproduces), even where they
        // deviate from exact.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.nand([a, b]);
        let g2 = c.nor([b, d]);
        let g3 = c.xor([g1, g2]);
        let g4 = c.and([g1, g3]);
        c.add_output("y", g3);
        c.add_output("z", g4);
        c
    }

    fn weights(c: &Circuit) -> Weights {
        Weights::compute(c, &InputDistribution::Uniform, Backend::Bdd)
    }

    #[test]
    fn grid_matches_per_point_single_pass() {
        let c = reconvergent();
        let w = weights(&c);
        let tape = SweepTape::try_new(&c, &w).unwrap();
        let engine = SinglePass::new(&c, &w, SinglePassOptions::without_correlations());
        let grid = crate::sweep::epsilon_grid(23, 0.0, 0.5);
        let curves = tape.try_run_grid(&grid, 1).unwrap();
        for (i, &e) in grid.iter().enumerate() {
            let r = engine.run(&GateEps::uniform(&c, e));
            for (k, &d) in r.per_output().iter().enumerate() {
                assert!(
                    (curves.delta[i][k] - d).abs() < 1e-12,
                    "ε={e} output {k}: {} vs {d}",
                    curves.delta[i][k]
                );
            }
        }
    }

    #[test]
    fn grid_is_thread_and_chunk_invariant() {
        let c = reconvergent();
        let w = weights(&c);
        let tape = SweepTape::try_new(&c, &w).unwrap();
        let grid = crate::sweep::epsilon_grid(19, 0.0, 0.4);
        let one = tape.try_run_grid(&grid, 1).unwrap();
        for threads in [2, 3, 8] {
            let multi = tape.try_run_grid(&grid, threads).unwrap();
            assert_eq!(one.delta, multi.delta, "{threads} threads");
        }
    }

    #[test]
    fn cancelled_grid_returns_typed_error_and_completed_grid_is_identical() {
        let c = reconvergent();
        let w = weights(&c);
        let tape = SweepTape::try_new(&c, &w).unwrap();
        let grid = crate::sweep::epsilon_grid(19, 0.0, 0.4);
        // Pre-fired token: typed cancellation, no partial curve.
        let fired = CancelToken::new();
        fired.cancel();
        for threads in [1, 4] {
            assert!(matches!(
                tape.try_run_grid_cancellable(&grid, threads, &fired),
                Err(RelogicError::Cancelled(_))
            ));
        }
        // Generous deadline: bit-identical to the undeadlined sweep at
        // every thread count.
        let plain = tape.try_run_grid(&grid, 1).unwrap();
        for threads in [1, 2, 8] {
            let token = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
            let under = tape
                .try_run_grid_cancellable(&grid, threads, &token)
                .unwrap();
            assert_eq!(plain.delta, under.delta, "{threads} threads");
        }
    }

    #[test]
    fn point_matches_single_pass_on_nonuniform_eps() {
        let c = reconvergent();
        let w = weights(&c);
        let tape = SweepTape::try_new(&c, &w).unwrap();
        let engine = SinglePass::new(&c, &w, SinglePassOptions::without_correlations());
        let mut eps = GateEps::uniform(&c, 0.05);
        // Perturb a couple of nodes, including a primary input.
        eps.set(c.inputs()[0], 0.2);
        eps.set(c.outputs()[0].node(), 0.31);
        let p = tape.try_run_point(&eps).unwrap();
        let r = engine.run(&eps);
        for (k, &d) in r.per_output().iter().enumerate() {
            assert!((p.per_output()[k] - d).abs() < 1e-12);
        }
        for id in c.node_ids() {
            assert!((p.node_delta(id) - r.node_delta(id)).abs() < 1e-12);
        }
    }

    #[test]
    fn construction_errors_are_typed() {
        let empty = Circuit::new("e");
        let c = reconvergent();
        let w = weights(&c);
        assert!(matches!(
            SweepTape::try_new(&empty, &w),
            Err(RelogicError::EmptyCircuit)
        ));
        let mut other = Circuit::new("o");
        other.add_input("a");
        assert!(matches!(
            SweepTape::try_new(&other, &w),
            Err(RelogicError::LengthMismatch { .. })
        ));
        let tape = SweepTape::try_new(&c, &w).unwrap();
        assert!(matches!(
            tape.try_run_grid(&[0.1, 1.5], 1),
            Err(RelogicError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            tape.try_run_grid(&[f64::NAN], 1),
            Err(RelogicError::InvalidEpsilon { .. })
        ));
    }

    #[test]
    fn shared_circuit_tape_gives_identical_curves() {
        let c = reconvergent();
        let w = weights(&c);
        let ct = CircuitTape::compile(&c);
        let a = SweepTape::try_new(&c, &w).unwrap();
        let b = SweepTape::try_with_tape(&c, &ct, &w).unwrap();
        let grid = crate::sweep::epsilon_grid(9, 0.0, 0.3);
        assert_eq!(
            a.try_run_grid(&grid, 1).unwrap().delta,
            b.try_run_grid(&grid, 1).unwrap().delta
        );
    }
}
