//! Weight vectors: the joint error-free input distribution of every gate.
//!
//! The paper, §4(i): *"The weight vector for a gate stores the probability
//! of occurrence of every combination of inputs at that gate … Since the
//! weight vector is just the joint signal probability distribution of the
//! inputs of a gate, it can be computed by random pattern simulation or
//! symbolic techniques based on BDDs. Weight vectors are independent of ε⃗
//! and change only if the structure of the logic circuit changes."*
//!
//! [`Weights::compute`] implements both backends; the result is reused
//! across every ε in a sweep, exactly as the paper prescribes.

use crate::{Backend, InputDistribution, RelogicError};
use relogic_bdd::{BddManager, CircuitBdds, VarOrder};
use relogic_netlist::{Circuit, NodeId};
use std::collections::HashMap;

/// Maximum gate arity the analytical engines accept (weight vectors have
/// `2^arity` entries and the propagation step enumerates `4^arity` pairs).
pub const MAX_ANALYSIS_ARITY: usize = 8;

/// Precomputed, ε-independent circuit statistics: per-gate weight vectors
/// and per-node signal probabilities.
#[derive(Clone, Debug)]
pub struct Weights {
    vectors: Vec<Vec<f64>>,
    signal_probs: Vec<f64>,
}

impl Weights {
    /// Computes weight vectors and signal probabilities for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if a gate's arity exceeds [`MAX_ANALYSIS_ARITY`] or the input
    /// distribution does not match the circuit.
    ///
    /// # Examples
    ///
    /// ```
    /// use relogic::{Backend, InputDistribution, Weights};
    /// use relogic_netlist::Circuit;
    ///
    /// let mut c = Circuit::new("t");
    /// let a = c.add_input("a");
    /// let b = c.add_input("b");
    /// let g = c.and([a, b]);
    /// c.add_output("y", g);
    ///
    /// let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
    /// assert_eq!(w.vector(g), &[0.25, 0.25, 0.25, 0.25]);
    /// assert!((w.signal_prob(g) - 0.25).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn compute(circuit: &Circuit, dist: &InputDistribution, backend: Backend) -> Self {
        match Weights::try_compute(circuit, dist, backend) {
            Ok(w) => w,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Weights::compute`]: validates gate arities and the input
    /// distribution before touching the backend.
    ///
    /// # Errors
    ///
    /// [`RelogicError::ArityExceeded`] if a gate's arity exceeds
    /// [`MAX_ANALYSIS_ARITY`], or [`RelogicError::DistributionMismatch`]
    /// if the input distribution does not match the circuit.
    pub fn try_compute(
        circuit: &Circuit,
        dist: &InputDistribution,
        backend: Backend,
    ) -> Result<Self, RelogicError> {
        for (id, node) in circuit.iter() {
            if node.arity() > MAX_ANALYSIS_ARITY {
                return Err(RelogicError::ArityExceeded {
                    node: id,
                    arity: node.arity(),
                    max: MAX_ANALYSIS_ARITY,
                });
            }
        }
        // Validate up front so the backends can use the infallible lookup.
        let _ = dist.try_position_probs(circuit)?;
        Ok(match backend {
            Backend::Bdd => Self::compute_bdd(circuit, dist),
            Backend::Simulation { patterns, seed } => {
                Self::compute_sim(circuit, dist, patterns, seed)
            }
        })
    }

    fn compute_bdd(circuit: &Circuit, dist: &InputDistribution) -> Self {
        let order = VarOrder::dfs(circuit);
        let mut manager = BddManager::new(order.len());
        let bdds = CircuitBdds::build(&mut manager, circuit, &order);
        let var_probs = order.permute_probs(&dist.position_probs(circuit), order.len(), 0.5);
        let mut memo: HashMap<relogic_bdd::BddRef, f64> = HashMap::new();

        let signal_probs: Vec<f64> = circuit
            .node_ids()
            .map(|id| manager.probability_memo(bdds.func(id), &var_probs, &mut memo))
            .collect();

        let mut vectors: Vec<Vec<f64>> = vec![Vec::new(); circuit.len()];
        for (id, node) in circuit.iter() {
            if !node.kind().is_gate() {
                continue;
            }
            let k = node.arity();
            let mut vec = vec![0.0f64; 1 << k];
            for (combo, slot) in vec.iter_mut().enumerate() {
                let mut conj = relogic_bdd::BddRef::TRUE;
                for (j, &f) in node.fanins().iter().enumerate() {
                    let lit = if combo >> j & 1 == 1 {
                        bdds.func(f)
                    } else {
                        manager.not(bdds.func(f))
                    };
                    conj = manager.and(conj, lit);
                    if conj.is_false() {
                        break;
                    }
                }
                *slot = manager.probability_memo(conj, &var_probs, &mut memo);
            }
            vectors[id.index()] = vec;
        }
        Weights {
            vectors,
            signal_probs,
        }
    }

    fn compute_sim(circuit: &Circuit, dist: &InputDistribution, patterns: u64, seed: u64) -> Self {
        let sampler = relogic_sim::InputSampler::independent(&dist.position_probs(circuit));
        let counts = relogic_sim::joint_input_counts_biased(circuit, &sampler, patterns, seed);
        let signal_probs =
            relogic_sim::signal_probabilities_biased(circuit, &sampler, patterns, seed);
        #[allow(clippy::cast_precision_loss)]
        let vectors = counts
            .into_iter()
            .map(|cs| {
                let total: u64 = cs.iter().sum();
                if total == 0 {
                    return Vec::new();
                }
                let tf = total as f64;
                cs.into_iter().map(|c| c as f64 / tf).collect()
            })
            .collect();
        Weights {
            vectors,
            signal_probs,
        }
    }

    /// The weight vector of gate `node` (`2^arity` probabilities summing to
    /// 1); empty for sources.
    #[must_use]
    pub fn vector(&self, node: NodeId) -> &[f64] {
        &self.vectors[node.index()]
    }

    /// Fault-free signal probability `Pr(node = 1)`.
    #[must_use]
    pub fn signal_prob(&self, node: NodeId) -> f64 {
        self.signal_probs[node.index()]
    }

    /// All signal probabilities, indexed by [`NodeId::index`].
    #[must_use]
    pub fn signal_probs(&self) -> &[f64] {
        &self.signal_probs
    }

    /// All weight vectors, indexed by [`NodeId::index`]; non-gate nodes
    /// hold an empty vector. Exposed for the persistent artifact store.
    #[must_use]
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.vectors
    }

    /// Rebuilds weights from deserialized arrays, validating what
    /// [`Weights::try_compute`] guarantees: one vector per node, every
    /// value finite, and each vector either empty (non-gate node) or a
    /// power of two no larger than `2^`[`MAX_ANALYSIS_ARITY`] entries.
    /// Checksummed payloads still route through here so a hash collision
    /// degrades into an error, never a panic downstream.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn from_parts(vectors: Vec<Vec<f64>>, signal_probs: Vec<f64>) -> Result<Self, String> {
        if vectors.len() != signal_probs.len() {
            return Err(format!(
                "{} vectors but {} signal probabilities",
                vectors.len(),
                signal_probs.len()
            ));
        }
        if signal_probs.iter().any(|p| !p.is_finite()) {
            return Err("non-finite signal probability".to_owned());
        }
        for (i, v) in vectors.iter().enumerate() {
            if !v.is_empty() && (!v.len().is_power_of_two() || v.len() > 1 << MAX_ANALYSIS_ARITY) {
                return Err(format!("vector {i} has invalid length {}", v.len()));
            }
            if v.iter().any(|x| !x.is_finite()) {
                return Err(format!("non-finite entry in vector {i}"));
            }
        }
        Ok(Weights {
            vectors,
            signal_probs,
        })
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.signal_probs.len()
    }

    /// Returns `true` if no nodes are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.signal_probs.is_empty()
    }

    /// Approximate heap footprint of this table in bytes (weight-vector
    /// payloads, per-vector headers, and the signal-probability array).
    ///
    /// Used by artifact caches to account byte budgets; intentionally a
    /// structural estimate rather than an allocator-exact figure.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        let vector_payload: usize = self.vectors.iter().map(|v| v.len() * 8).sum();
        let vector_headers = self.vectors.len() * std::mem::size_of::<Vec<f64>>();
        vector_payload + vector_headers + self.signal_probs.len() * 8
    }

    /// The heap footprint [`Weights::try_compute`] *would* produce for
    /// `circuit`, computable without running either backend (vector sizes
    /// are `2^arity`, a pure function of circuit structure).
    ///
    /// Lets a cache charge an entry for its weight table before the table
    /// is lazily materialized.
    #[must_use]
    pub fn projected_heap_bytes(circuit: &Circuit) -> usize {
        let mut payload = 0usize;
        for (_, node) in circuit.iter() {
            if node.kind().is_gate() {
                payload += (1usize << node.arity().min(MAX_ANALYSIS_ARITY)) * 8;
            }
        }
        payload + circuit.len() * (std::mem::size_of::<Vec<f64>>() + 8)
    }
}

/// Exact (BDD) or sampled joint value distribution of a set of nodes:
/// entry `combo` is `Pr(⋀_j node_j = bit_j(combo))` under the fault-free
/// circuit. Used for consolidating multi-output error probabilities.
///
/// # Panics
///
/// Panics if `nodes.len() > 12` (distribution size `2^n`), or under the
/// conditions of [`Weights::compute`].
#[must_use]
pub fn joint_value_distribution(
    circuit: &Circuit,
    nodes: &[NodeId],
    dist: &InputDistribution,
    backend: Backend,
) -> Vec<f64> {
    match try_joint_value_distribution(circuit, nodes, dist, backend) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`joint_value_distribution`].
///
/// # Errors
///
/// [`RelogicError::DistributionMismatch`] if `nodes` is larger than 12 (the
/// `2^n` distribution would blow up), names a node outside the circuit, or
/// the input distribution does not match the circuit.
pub fn try_joint_value_distribution(
    circuit: &Circuit,
    nodes: &[NodeId],
    dist: &InputDistribution,
    backend: Backend,
) -> Result<Vec<f64>, RelogicError> {
    if nodes.len() > 12 {
        return Err(RelogicError::DistributionMismatch {
            message: format!("joint distribution over {} nodes (max 12)", nodes.len()),
        });
    }
    if let Some(&bad) = nodes.iter().find(|n| n.index() >= circuit.len()) {
        return Err(RelogicError::DistributionMismatch {
            message: format!("node {bad} outside circuit of {} nodes", circuit.len()),
        });
    }
    let _ = dist.try_position_probs(circuit)?;
    Ok(joint_value_distribution_validated(
        circuit, nodes, dist, backend,
    ))
}

fn joint_value_distribution_validated(
    circuit: &Circuit,
    nodes: &[NodeId],
    dist: &InputDistribution,
    backend: Backend,
) -> Vec<f64> {
    match backend {
        Backend::Bdd => {
            let order = VarOrder::dfs(circuit);
            let mut manager = BddManager::new(order.len());
            let bdds = CircuitBdds::build(&mut manager, circuit, &order);
            let var_probs = order.permute_probs(&dist.position_probs(circuit), order.len(), 0.5);
            let mut memo: HashMap<relogic_bdd::BddRef, f64> = HashMap::new();
            (0..1usize << nodes.len())
                .map(|combo| {
                    let mut conj = relogic_bdd::BddRef::TRUE;
                    for (j, &nid) in nodes.iter().enumerate() {
                        let lit = if combo >> j & 1 == 1 {
                            bdds.func(nid)
                        } else {
                            manager.not(bdds.func(nid))
                        };
                        conj = manager.and(conj, lit);
                        if conj.is_false() {
                            break;
                        }
                    }
                    manager.probability_memo(conj, &var_probs, &mut memo)
                })
                .collect()
        }
        Backend::Simulation { patterns, seed } => {
            use rand::SeedableRng;
            let sampler = relogic_sim::InputSampler::independent(&dist.position_probs(circuit));
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut sim = relogic_sim::PackedSim::new(circuit);
            let blocks = patterns.div_ceil(64).max(1);
            let mut counts = vec![0u64; 1 << nodes.len()];
            for _ in 0..blocks {
                sampler.fill(&mut sim, &mut rng);
                sim.propagate(circuit);
                for lane in 0..64 {
                    let mut combo = 0usize;
                    for (j, &nid) in nodes.iter().enumerate() {
                        combo |= (((sim.node_word(nid) >> lane) & 1) as usize) << j;
                    }
                    counts[combo] += 1;
                }
            }
            #[allow(clippy::cast_precision_loss)]
            let total = (blocks * 64) as f64;
            #[allow(clippy::cast_precision_loss)]
            counts.into_iter().map(|c| c as f64 / total).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconvergent() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let o1 = c.or([g, x]);
        let o2 = c.xor([g, x]);
        c.add_output("y1", o1);
        c.add_output("y2", o2);
        c
    }

    #[test]
    fn bdd_weights_are_exact() {
        let c = reconvergent();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let g = NodeId::from_index(3);
        let o1 = NodeId::from_index(4);
        // AND of two fresh inputs: uniform 1/4 each.
        assert_eq!(w.vector(g), &[0.25, 0.25, 0.25, 0.25]);
        // OR gate sees (g, c) with P(g=1) = 1/4 independent of c.
        let v = w.vector(o1);
        assert!((v[0b00] - 0.375).abs() < 1e-12);
        assert!((v[0b01] - 0.125).abs() < 1e-12);
        assert!((v[0b10] - 0.375).abs() < 1e-12);
        assert!((v[0b11] - 0.125).abs() < 1e-12);
        assert!((w.signal_prob(g) - 0.25).abs() < 1e-12);
        assert!((w.signal_prob(o1) - (0.25 + 0.5 - 0.125)).abs() < 1e-12);
    }

    #[test]
    fn sim_weights_converge_to_bdd_weights() {
        let c = reconvergent();
        let exact = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let approx = Weights::compute(
            &c,
            &InputDistribution::Uniform,
            Backend::Simulation {
                patterns: 1 << 16,
                seed: 77,
            },
        );
        for (id, node) in c.iter() {
            if !node.kind().is_gate() {
                continue;
            }
            for (combo, (&e, &a)) in exact.vector(id).iter().zip(approx.vector(id)).enumerate() {
                assert!((e - a).abs() < 0.02, "{id} combo {combo}: {e} vs {a}");
            }
            assert!((exact.signal_prob(id) - approx.signal_prob(id)).abs() < 0.02);
        }
    }

    #[test]
    fn weights_capture_correlated_fanins() {
        // XOR(a, a): only combos 00 and 11 have mass.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.xor([a, a]);
        c.add_output("y", g);
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        assert_eq!(w.vector(g), &[0.5, 0.0, 0.0, 0.5]);
        assert_eq!(w.signal_prob(g), 0.0);
    }

    #[test]
    fn sim_backend_honours_nonuniform_inputs() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        let dist = InputDistribution::Independent(vec![0.9, 0.5]);
        let w = Weights::compute(
            &c,
            &dist,
            Backend::Simulation {
                patterns: 1 << 16,
                seed: 21,
            },
        );
        let v = w.vector(g);
        assert!((v[0b01] - 0.45).abs() < 0.01, "{v:?}");
        assert!((w.signal_prob(a) - 0.9).abs() < 0.01);
    }

    #[test]
    fn nonuniform_inputs_shift_weights() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        let dist = InputDistribution::Independent(vec![0.9, 0.5]);
        let w = Weights::compute(&c, &dist, Backend::Bdd);
        let v = w.vector(g);
        assert!((v[0b00] - 0.05).abs() < 1e-12);
        assert!((v[0b01] - 0.45).abs() < 1e-12);
        assert!((v[0b10] - 0.05).abs() < 1e-12);
        assert!((v[0b11] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn joint_value_distribution_of_outputs() {
        let c = reconvergent();
        let nodes = [NodeId::from_index(4), NodeId::from_index(5)];
        let exact = joint_value_distribution(&c, &nodes, &InputDistribution::Uniform, Backend::Bdd);
        assert!((exact.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let approx = joint_value_distribution(
            &c,
            &nodes,
            &InputDistribution::Uniform,
            Backend::Simulation {
                patterns: 1 << 15,
                seed: 3,
            },
        );
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 0.02);
        }
        // y1=0,y2=1 impossible? y1 = g|c, y2 = g^c: y2=1 means exactly one
        // of (g,c) is 1, which forces y1=1. So combo (y1=0, y2=1) has mass 0.
        assert!(exact[0b10] < 1e-12);
    }

    #[test]
    fn byte_projection_matches_computed_footprint() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        let h = c.or([g, a]);
        c.add_output("y", h);
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        assert_eq!(w.approx_heap_bytes(), Weights::projected_heap_bytes(&c));
        assert!(w.approx_heap_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "exceeding the analysis limit")]
    fn oversized_gate_rejected() {
        let mut c = Circuit::new("t");
        let ins: Vec<_> = (0..9).map(|i| c.add_input(format!("x{i}"))).collect();
        let g = c.and(ins);
        c.add_output("y", g);
        let _ = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
    }
}
