//! The exact observability backend against brute force.
//!
//! `ObservabilityMatrix` with [`Backend::Bdd`] routes every node through
//! the post-dominator sweep (dead / ports-only / region chain-rule / full
//! splice). These tests pit that decomposition against exhaustive
//! enumeration on random reconvergent circuits, and pin the thread-count
//! invariance the executor promises.

// Test-only code: the library's unwrap ban does not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::cast_precision_loss)]

use proptest::collection;
use proptest::prelude::*;
use relogic::{Backend, InputDistribution, ObservabilityMatrix};
use relogic_netlist::{Circuit, GateKind, NodeId};
use relogic_sim::flip_influence;

/// Recipe for one random gate: a kind selector plus two fanin selectors
/// (reduced modulo the number of already-built nodes).
#[derive(Clone, Debug)]
struct CircuitSeed {
    inputs: usize,
    gates: Vec<(u8, u32, u32)>,
    outputs: Vec<u32>,
}

fn arb_circuit() -> impl Strategy<Value = CircuitSeed> {
    (
        2usize..=10,
        collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..28),
        collection::vec(any::<u32>(), 1..5),
    )
        .prop_map(|(inputs, gates, outputs)| CircuitSeed {
            inputs,
            gates,
            outputs,
        })
}

fn build_circuit(seed: &CircuitSeed) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..seed.inputs {
        c.add_input(format!("x{i}"));
    }
    for &(kind_sel, a, b) in &seed.gates {
        let kinds = GateKind::LOGIC_KINDS;
        let kind = kinds[kind_sel as usize % kinds.len()];
        let n = u32::try_from(c.len()).unwrap();
        let fa = NodeId::from_index((a % n) as usize);
        let fb = NodeId::from_index((b % n) as usize);
        let fanins: Vec<NodeId> = if kind.accepts_arity(2) {
            vec![fa, fb]
        } else {
            vec![fa]
        };
        c.add_gate(kind, fanins).unwrap();
    }
    let n = u32::try_from(c.len()).unwrap();
    for (k, &sel) in seed.outputs.iter().enumerate() {
        c.add_output(format!("y{k}"), NodeId::from_index((sel % n) as usize));
    }
    c
}

/// Exhaustive any-output observability of `flip`: the fraction of input
/// assignments on which inverting the node changes at least one output.
fn exhaustive_any(c: &Circuit, flip: NodeId) -> f64 {
    let n_asg = 1usize << c.input_count();
    let mut hits = 0usize;
    for v in 0..n_asg {
        let bits: Vec<bool> = (0..c.input_count()).map(|j| v >> j & 1 != 0).collect();
        let mut vals = vec![false; c.len()];
        let mut flipped = vec![false; c.len()];
        for (id, node) in c.iter() {
            let (base, alt) = match node.kind() {
                GateKind::Input => {
                    let b = bits[c.input_position(id).unwrap()];
                    (b, b)
                }
                GateKind::Const(b) => (b, b),
                k => {
                    let fan: Vec<bool> = node.fanins().iter().map(|f| vals[f.index()]).collect();
                    let fan_alt: Vec<bool> =
                        node.fanins().iter().map(|f| flipped[f.index()]).collect();
                    (k.eval(&fan), k.eval(&fan_alt))
                }
            };
            vals[id.index()] = base;
            flipped[id.index()] = if id == flip { !alt } else { alt };
        }
        if c.outputs()
            .iter()
            .any(|o| vals[o.node().index()] != flipped[o.node().index()])
        {
            hits += 1;
        }
    }
    hits as f64 / n_asg as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-output columns match the exhaustive single-flip influence and
    /// the any column matches exhaustive any-output enumeration, for every
    /// node — so the region/stem classification can never mislabel one.
    #[test]
    fn bdd_matrix_matches_exhaustive(seed in arb_circuit()) {
        let c = build_circuit(&seed);
        let obs =
            ObservabilityMatrix::try_compute(&c, &InputDistribution::Uniform, Backend::Bdd)
                .unwrap();
        for id in c.node_ids() {
            let inf = flip_influence(&c, &[id]);
            for (k, &exact) in inf.iter().enumerate().take(c.output_count()) {
                prop_assert!(
                    (obs.at_output(id, k) - exact).abs() < 1e-12,
                    "node {id}, output {k}: bdd {} vs exhaustive {exact}",
                    obs.at_output(id, k)
                );
            }
            let any = exhaustive_any(&c, id);
            prop_assert!(
                (obs.any(id) - any).abs() < 1e-12,
                "node {id} any: bdd {} vs exhaustive {any}",
                obs.any(id)
            );
        }
    }

    /// The executor's determinism contract: the matrix is bit-identical
    /// for every worker thread count.
    #[test]
    fn thread_count_never_changes_results(seed in arb_circuit()) {
        let c = build_circuit(&seed);
        let one = ObservabilityMatrix::try_compute_threads(
            &c, &InputDistribution::Uniform, Backend::Bdd, 1,
        )
        .unwrap();
        let four = ObservabilityMatrix::try_compute_threads(
            &c, &InputDistribution::Uniform, Backend::Bdd, 4,
        )
        .unwrap();
        for id in c.node_ids() {
            for k in 0..c.output_count() {
                prop_assert_eq!(one.at_output(id, k).to_bits(), four.at_output(id, k).to_bits());
            }
            prop_assert_eq!(one.any(id).to_bits(), four.any(id).to_bits());
        }
    }
}
