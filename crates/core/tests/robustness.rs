//! Adversarial robustness tests.
//!
//! Malformed netlist text and extreme gate error probabilities must
//! surface typed errors — never panics — and every probability the
//! analysis reports must stay inside `[0, 1]`.

// Test-only code: the library's unwrap ban does not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use relogic::{
    Backend, GateEps, InputDistribution, RelogicError, SinglePass, SinglePassOptions, Weights,
};
use relogic_netlist::{bench, blif, verilog, Circuit, GateKind, NodeId};

/// A small reconvergent circuit (the §4.1 stress case): one stem fans out
/// to two paths that reconverge in an XOR-like structure.
const RECONVERGENT: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
s = NAND(a, b)
p = NAND(s, a)
q = NAND(s, b)
y = NAND(p, q)
";

fn reconvergent() -> Circuit {
    bench::parse(RECONVERGENT).unwrap()
}

fn analyze(c: &Circuit, eps: f64, strict: bool) -> Result<Vec<f64>, RelogicError> {
    let w = Weights::try_compute(c, &InputDistribution::Uniform, Backend::Bdd)?;
    let opts = SinglePassOptions {
        strict,
        ..SinglePassOptions::default()
    };
    let engine = SinglePass::try_new(c, &w, opts)?;
    let r = engine.try_run(&GateEps::try_uniform(c, eps)?)?;
    Ok(r.per_output().to_vec())
}

#[test]
fn extreme_eps_values_never_panic_and_stay_in_unit_interval() {
    let c = reconvergent();
    // Boundary and subnormal values are legal inputs; they must produce
    // probabilities in [0, 1], not panics or NaN.
    for eps in [0.0, f64::MIN_POSITIVE, 5e-324, 1e-12, 0.25, 0.5, 0.75, 1.0] {
        let deltas = analyze(&c, eps, false).unwrap();
        for &d in &deltas {
            assert!(d.is_finite() && (0.0..=1.0).contains(&d), "eps={eps}: {d}");
        }
    }
    // Non-finite and out-of-range ε are typed errors, not panics.
    for eps in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.1, 1.5] {
        assert!(
            matches!(
                analyze(&c, eps, false),
                Err(RelogicError::InvalidEpsilon { .. })
            ),
            "eps={eps} should be rejected"
        );
    }
}

#[test]
fn strict_mode_tightens_the_eps_bound_to_half() {
    let c = reconvergent();
    assert!(analyze(&c, 0.5, true).is_ok());
    assert!(matches!(
        analyze(&c, 0.5 + 1e-9, true),
        Err(RelogicError::InvalidEpsilon { .. })
    ));
    // The same value is accepted in lenient mode.
    assert!(analyze(&c, 0.5 + 1e-9, false).is_ok());
}

type ParseFn = fn(&str) -> Result<Circuit, relogic_netlist::NetlistError>;

#[test]
fn truncated_and_mutated_netlists_parse_without_panicking() {
    let sources: [(&str, ParseFn); 3] = [
        (RECONVERGENT, bench::parse),
        (
            ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
            blif::parse,
        ),
        (
            "module t (a, b, y);\n input a, b;\n output y;\n nand (y, a, b);\nendmodule\n",
            verilog::parse,
        ),
    ];
    for (text, parse) in sources {
        // Every prefix of a valid netlist (truncation mid-token included).
        for cut in 0..text.len() {
            let _ = parse(&text[..cut]);
        }
        // Every single-byte corruption.
        for i in 0..text.len() {
            let mut bytes = text.as_bytes().to_vec();
            bytes[i] = b'(';
            if let Ok(s) = std::str::from_utf8(&bytes) {
                let _ = parse(s);
            }
        }
    }
}

fn random_circuit(ops: &[(u8, u8, u8)], inputs: usize) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..inputs {
        c.add_input(format!("x{i}"));
    }
    for &(kind, a, b) in ops {
        let len = c.len();
        let fa = NodeId::from_index(a as usize % len);
        let fb = NodeId::from_index(b as usize % len);
        let kind = GateKind::LOGIC_KINDS[kind as usize % GateKind::LOGIC_KINDS.len()];
        match kind {
            GateKind::Buf | GateKind::Not => {
                c.add_gate(kind, [fa]).unwrap();
            }
            _ => {
                c.add_gate(kind, [fa, fb]).unwrap();
            }
        }
    }
    let last = NodeId::from_index(c.len() - 1);
    c.add_output("y", last);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary junk through every parser: the result may be Ok or Err,
    /// but the call must return.
    #[test]
    fn parsers_never_panic_on_arbitrary_text(
        bytes in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = bench::parse(&text);
        let _ = blif::parse(&text);
        let _ = verilog::parse(&text);
    }

    /// Line-structured junk drawn from the formats' own alphabet exercises
    /// the per-line parse paths more deeply than fully random bytes do.
    #[test]
    fn parsers_never_panic_on_liney_text(
        lines in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 0..20
        )
    ) {
        const CHARSET: &[u8] = b"ANDORBUFinputs.names01xy_ =(),#module;";
        let text: String = lines
            .iter()
            .map(|l| {
                let mut s: String = l
                    .iter()
                    .map(|&b| CHARSET[b as usize % CHARSET.len()] as char)
                    .collect();
                s.push('\n');
                s
            })
            .collect();
        let _ = bench::parse(&text);
        let _ = blif::parse(&text);
        let _ = verilog::parse(&text);
    }

    /// Random circuits with random ε: the analysis either returns a typed
    /// error or probabilities inside [0, 1]. Nothing panics, nothing is NaN.
    #[test]
    fn analysis_probabilities_stay_in_unit_interval(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..12),
        inputs in 2usize..5,
        eps in 0.0f64..=1.0,
    ) {
        let c = random_circuit(&ops, inputs);
        let deltas = analyze(&c, eps, false).unwrap();
        for &d in &deltas {
            prop_assert!(d.is_finite() && (0.0..=1.0).contains(&d), "eps={eps}: {d}");
        }
    }
}
