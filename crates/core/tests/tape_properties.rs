//! Property tests for the compiled-tape execution layer.
//!
//! Three contracts, each pitted against randomized circuits:
//!
//! 1. **Functional equivalence** — the instruction tape computes the same
//!    Boolean function as the graph simulator, checked by exhaustive
//!    enumeration of every input assignment (circuits are capped at 12
//!    inputs so 2^n enumeration stays cheap).
//! 2. **Monte Carlo bit-identity** — `estimate_tape` returns the same
//!    bits for every worker-thread count *and* every lane width: the
//!    position-based RNG makes the sample set a pure function of
//!    (seed, pattern index), not of the execution schedule.
//! 3. **Sweep equivalence** — the ε-grid tape kernel matches the
//!    per-point single-pass engine within 1e-12 at every grid point.

// Test-only code: the library's unwrap ban does not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::cast_precision_loss)]

use proptest::collection;
use proptest::prelude::*;
use relogic::{
    Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, SweepTape, Weights,
};
use relogic_netlist::{Circuit, GateKind, NodeId};
use relogic_sim::{
    estimate_tape, exhaustive_block_count, exhaustive_lane_mask, exhaustive_word, CircuitTape,
    MonteCarloConfig, PackedSim,
};

/// Recipe for one random gate: a kind selector plus two fanin selectors
/// (reduced modulo the number of already-built nodes).
#[derive(Clone, Debug)]
struct CircuitSeed {
    inputs: usize,
    gates: Vec<(u8, u32, u32)>,
    outputs: Vec<u32>,
}

fn arb_circuit() -> impl Strategy<Value = CircuitSeed> {
    (
        2usize..=12,
        collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..32),
        collection::vec(any::<u32>(), 1..5),
    )
        .prop_map(|(inputs, gates, outputs)| CircuitSeed {
            inputs,
            gates,
            outputs,
        })
}

fn build_circuit(seed: &CircuitSeed) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..seed.inputs {
        c.add_input(format!("x{i}"));
    }
    for &(kind_sel, a, b) in &seed.gates {
        let kinds = GateKind::LOGIC_KINDS;
        let kind = kinds[kind_sel as usize % kinds.len()];
        let n = u32::try_from(c.len()).unwrap();
        let fa = NodeId::from_index((a % n) as usize);
        let fb = NodeId::from_index((b % n) as usize);
        let fanins: Vec<NodeId> = if kind.accepts_arity(2) {
            vec![fa, fb]
        } else {
            vec![fa]
        };
        c.add_gate(kind, fanins).unwrap();
    }
    let n = u32::try_from(c.len()).unwrap();
    for (k, &sel) in seed.outputs.iter().enumerate() {
        c.add_output(format!("y{k}"), NodeId::from_index((sel % n) as usize));
    }
    c
}

/// Evaluates 64 packed assignments through the tape's own instruction
/// stream (slot order, slot-space fanins), independent of the graph.
fn tape_words(tape: &CircuitTape, block: u64) -> Vec<u64> {
    let mut words = vec![0u64; tape.n_slots()];
    for (position, &slot) in tape.input_slots().iter().enumerate() {
        words[slot as usize] = exhaustive_word(position, block);
    }
    for slot in 0..tape.n_slots() {
        let fold = |init: u64, f: fn(u64, u64) -> u64| {
            tape.fanins(slot)
                .iter()
                .fold(init, |acc, &x| f(acc, words[x as usize]))
        };
        words[slot] = match tape.kind(slot) {
            GateKind::Input => continue,
            GateKind::Const(b) => {
                if b {
                    u64::MAX
                } else {
                    0
                }
            }
            GateKind::Buf => fold(0, |a, b| a | b),
            GateKind::Not => !fold(0, |a, b| a | b),
            GateKind::And => fold(u64::MAX, |a, b| a & b),
            GateKind::Nand => !fold(u64::MAX, |a, b| a & b),
            GateKind::Or => fold(0, |a, b| a | b),
            GateKind::Nor => !fold(0, |a, b| a | b),
            GateKind::Xor => fold(0, |a, b| a ^ b),
            GateKind::Xnor => !fold(0, |a, b| a ^ b),
        };
    }
    words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive equivalence: for every input assignment, every node's
    /// value computed through the compiled tape equals the graph
    /// simulator's. Catches any slot-mapping, fanin-rewiring, or
    /// level-ordering bug in tape compilation.
    #[test]
    fn tape_matches_graph_on_every_input_assignment(seed in arb_circuit()) {
        let c = build_circuit(&seed);
        let tape = CircuitTape::compile(&c);
        let mut sim = PackedSim::new(&c);
        for block in 0..exhaustive_block_count(c.input_count()) {
            let mask = exhaustive_lane_mask(c.input_count());
            sim.exhaustive_inputs(block);
            sim.propagate(&c);
            let words = tape_words(&tape, block);
            for i in 0..c.len() {
                let graph = sim.node_word(NodeId::from_index(i)) & mask;
                let tape_w = words[tape.slot_of_node(i)] & mask;
                prop_assert_eq!(
                    graph, tape_w,
                    "node {} disagrees in block {}", i, block
                );
            }
        }
    }

    /// Monte Carlo estimates are a pure function of (seed, patterns):
    /// identical bits for every thread count and every lane width.
    #[test]
    fn mc_estimate_is_thread_and_lane_invariant(seed in arb_circuit()) {
        let c = build_circuit(&seed);
        let tape = CircuitTape::compile(&c);
        let eps = GateEps::try_uniform(&c, 0.05).unwrap();
        // 5000 patterns: a ragged final chunk, so partial-block masking
        // is exercised too.
        let mut reference = None;
        for threads in [1usize, 2, 8] {
            for lanes in [1usize, 4, 8] {
                let cfg = MonteCarloConfig {
                    patterns: 5000,
                    seed: 99,
                    threads,
                    ..MonteCarloConfig::default()
                };
                let r = estimate_tape(&c, &tape, eps.as_slice(), &cfg, lanes);
                match &reference {
                    None => reference = Some(r),
                    Some(base) => prop_assert_eq!(
                        base, &r,
                        "threads={} lanes={} diverged", threads, lanes
                    ),
                }
            }
        }
    }

    /// The single-traversal ε-grid kernel agrees with the per-point
    /// single-pass engine at every grid point and output.
    #[test]
    fn sweep_grid_matches_per_point_engine(seed in arb_circuit()) {
        let c = build_circuit(&seed);
        let weights = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let grid = relogic::sweep::epsilon_grid(9, 0.0, 0.4);
        let tape = SweepTape::try_new(&c, &weights).unwrap();
        let curves = tape.try_run_grid(&grid, 2).unwrap();
        let engine = SinglePass::new(&c, &weights, SinglePassOptions::without_correlations());
        for (i, &e) in grid.iter().enumerate() {
            let point = engine.run(&GateEps::try_uniform(&c, e).unwrap());
            for (k, &d) in point.per_output().iter().enumerate() {
                prop_assert!(
                    (curves.delta[i][k] - d).abs() <= 1e-12,
                    "eps={} output {}: grid {} vs per-point {}",
                    e, k, curves.delta[i][k], d
                );
            }
        }
    }
}
