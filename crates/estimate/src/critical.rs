//! Critical-ε exploration: deterministic bisection for the uniform gate
//! error rate at which output error δ crosses a threshold.
//!
//! Runs entirely on the compiled [`SweepTape`], whose point evaluation is
//! bit-identical across thread counts, so the bisection trace — and the
//! final bracket — is reproducible to the last bit on any machine. The
//! closed form δ(ε) is monotone non-decreasing in a uniform ε, which is
//! what makes bisection the right tool; the search still converges to a
//! crossing of the final bracket even where the tape's δ is only
//! approximately monotone.

use relogic::{CancelToken, GateEps, RelogicError, SweepTape};
use relogic_netlist::Circuit;

/// Default bisection depth. 60 halvings of `[0, ½]` put the bracket width
/// below the f64 ulp around any critical point, so the default always runs
/// to the fixed point where the midpoint stops moving.
pub const DEFAULT_BISECTION_STEPS: usize = 60;

/// Which summary of the per-output δ vector the threshold applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CriticalMetric {
    /// The worst (largest) per-output δ.
    Max,
    /// The arithmetic mean over all outputs.
    Mean,
}

impl CriticalMetric {
    /// Stable lower-case name used on the CLI and serve wire surfaces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CriticalMetric::Max => "max",
            CriticalMetric::Mean => "mean",
        }
    }

    /// Parses the wire name accepted by [`CriticalMetric::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "max" => Some(CriticalMetric::Max),
            "mean" => Some(CriticalMetric::Mean),
            _ => None,
        }
    }

    fn apply(self, per_output: &[f64]) -> f64 {
        match self {
            CriticalMetric::Max => per_output.iter().fold(0.0f64, |a, &d| a.max(d)),
            CriticalMetric::Mean => {
                let n = per_output.len().max(1);
                per_output.iter().sum::<f64>() / n as f64
            }
        }
    }
}

/// The outcome of a [`critical_eps`] search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CriticalEpsReport {
    /// The δ summary the threshold was applied to.
    pub metric: CriticalMetric,
    /// The δ threshold searched for.
    pub threshold: f64,
    /// Whether δ crosses the threshold anywhere in `ε ∈ [0, ½]`.
    pub crossed: bool,
    /// The smallest bracketed ε at which δ ≥ threshold (the bracket's
    /// upper edge), or `None` when δ never reaches the threshold.
    pub critical: Option<f64>,
    /// Final bracket lower edge: δ(`lo`) < threshold (unless the circuit
    /// crosses already at ε = 0).
    pub lo: f64,
    /// Final bracket upper edge: δ(`hi`) ≥ threshold when `crossed`.
    pub hi: f64,
    /// δ at the final `lo`.
    pub delta_lo: f64,
    /// δ at the final `hi`.
    pub delta_hi: f64,
    /// Bisection steps actually taken (0 when the endpoints already
    /// decide the answer).
    pub steps: usize,
}

/// Bisects `ε ∈ [0, ½]` for the smallest gate error rate at which the
/// tape's output error δ — summarized by `metric` — reaches `threshold`.
///
/// `max_steps = 0` selects [`DEFAULT_BISECTION_STEPS`]. A δ that never
/// reaches the threshold is a valid answer (`crossed = false`,
/// `critical = None`), not an error.
///
/// Deterministic: the evaluation sequence is a pure function of the
/// circuit, tape, metric, and threshold, and each tape point is
/// bit-identical across thread counts.
///
/// # Errors
///
/// [`RelogicError::NumericRange`] if `threshold` is not a finite value in
/// `(0, ½)`; any tape evaluation error is passed through.
pub fn critical_eps(
    circuit: &Circuit,
    tape: &SweepTape,
    metric: CriticalMetric,
    threshold: f64,
    max_steps: usize,
) -> Result<CriticalEpsReport, RelogicError> {
    let never = CancelToken::new();
    critical_eps_cancellable(circuit, tape, metric, threshold, max_steps, &never)
}

/// Like [`critical_eps`], checking `cancel` before every tape point
/// evaluation (each bisection step is one point). A search that completes
/// before the token fires returns a report bit-identical to an
/// uncancelled search.
///
/// # Errors
///
/// [`RelogicError::Cancelled`] once the token fires, otherwise as
/// [`critical_eps`].
pub fn critical_eps_cancellable(
    circuit: &Circuit,
    tape: &SweepTape,
    metric: CriticalMetric,
    threshold: f64,
    max_steps: usize,
    cancel: &CancelToken,
) -> Result<CriticalEpsReport, RelogicError> {
    if !threshold.is_finite() || threshold <= 0.0 || threshold >= 0.5 {
        return Err(RelogicError::NumericRange {
            context: "critical-eps threshold",
            value: threshold,
            lo: 0.0,
            hi: 0.5,
        });
    }
    let max_steps = if max_steps == 0 {
        DEFAULT_BISECTION_STEPS
    } else {
        max_steps
    };
    let eval = |e: f64| -> Result<f64, RelogicError> {
        cancel.check("critical_step")?;
        let point = tape.try_run_point(&GateEps::try_uniform(circuit, e)?)?;
        Ok(metric.apply(point.per_output()))
    };

    let (mut lo, mut hi) = (0.0f64, 0.5f64);
    let mut delta_lo = eval(lo)?;
    let mut delta_hi = eval(hi)?;
    let done = |crossed: bool, critical: Option<f64>, lo, hi, delta_lo, delta_hi, steps| {
        CriticalEpsReport {
            metric,
            threshold,
            crossed,
            critical,
            lo,
            hi,
            delta_lo,
            delta_hi,
            steps,
        }
    };
    if delta_hi < threshold {
        return Ok(done(false, None, lo, hi, delta_lo, delta_hi, 0));
    }
    if delta_lo >= threshold {
        return Ok(done(true, Some(0.0), lo, hi, delta_lo, delta_hi, 0));
    }

    let mut steps = 0usize;
    while steps < max_steps {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let delta_mid = eval(mid)?;
        if delta_mid >= threshold {
            hi = mid;
            delta_hi = delta_mid;
        } else {
            lo = mid;
            delta_lo = delta_mid;
        }
        steps += 1;
    }
    Ok(done(true, Some(hi), lo, hi, delta_lo, delta_hi, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic::{Backend, InputDistribution, Weights};

    fn xor_chain(len: usize) -> Circuit {
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let mut cur = c.xor([a, b]);
        for _ in 1..len {
            cur = c.xor([cur, b]);
        }
        c.add_output("y", cur);
        c
    }

    fn tape_for(c: &Circuit) -> SweepTape {
        let w = Weights::compute(c, &InputDistribution::Uniform, Backend::Bdd);
        SweepTape::try_new(c, &w).unwrap()
    }

    #[test]
    fn finds_the_analytic_crossing_of_a_xor_chain() {
        // A chain of k noisy XORs has δ(ε) = ½(1 − (1 − 2ε)^k): every
        // gate is fully observable. Invert for the exact critical ε.
        let k = 5;
        let c = xor_chain(k);
        let tape = tape_for(&c);
        let threshold = 0.2f64;
        let expected = 0.5 * (1.0 - (1.0 - 2.0 * threshold).powf(1.0 / k as f64));
        let report = critical_eps(&c, &tape, CriticalMetric::Max, threshold, 0).unwrap();
        assert!(report.crossed);
        let critical = report.critical.unwrap();
        assert!(
            (critical - expected).abs() < 1e-9,
            "critical {critical} vs analytic {expected}"
        );
        assert!(report.delta_hi >= threshold && report.delta_lo < threshold);
        assert!(report.hi - report.lo < 1e-9);
    }

    #[test]
    fn non_crossing_is_a_valid_answer() {
        // One output is a bare (noise-free) input, the other a noisy XOR:
        // the mean δ caps at ¼ even at ε = ½, so a 0.3 threshold is never
        // reached — a valid answer, not an error.
        let mut c = Circuit::new("mixed");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.xor([a, b]);
        c.add_output("clean", a);
        c.add_output("noisy", g);
        let tape = tape_for(&c);
        let report = critical_eps(&c, &tape, CriticalMetric::Mean, 0.3, 0).unwrap();
        assert!(!report.crossed);
        assert_eq!(report.critical, None);
        assert!(report.delta_hi < 0.3, "mean δ(½) = {}", report.delta_hi);
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn mean_and_max_agree_on_single_output() {
        let c = xor_chain(3);
        let tape = tape_for(&c);
        let a = critical_eps(&c, &tape, CriticalMetric::Max, 0.1, 0).unwrap();
        let b = critical_eps(&c, &tape, CriticalMetric::Mean, 0.1, 0).unwrap();
        assert_eq!(a.critical, b.critical);
    }

    #[test]
    fn bisection_is_bit_deterministic_across_repeats() {
        let c = xor_chain(4);
        let tape = tape_for(&c);
        let a = critical_eps(&c, &tape, CriticalMetric::Max, 0.15, 0).unwrap();
        let b = critical_eps(&c, &tape, CriticalMetric::Max, 0.15, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.critical.map(f64::to_bits), b.critical.map(f64::to_bits));
    }

    #[test]
    fn step_cap_bounds_the_work() {
        let c = xor_chain(4);
        let tape = tape_for(&c);
        let report = critical_eps(&c, &tape, CriticalMetric::Max, 0.15, 8).unwrap();
        assert_eq!(report.steps, 8);
        assert!(report.hi - report.lo <= 0.5 / 256.0 + 1e-15);
    }

    #[test]
    fn cancelled_search_returns_typed_error_and_completed_search_is_identical() {
        let c = xor_chain(4);
        let tape = tape_for(&c);
        let fired = CancelToken::new();
        fired.cancel();
        let err =
            critical_eps_cancellable(&c, &tape, CriticalMetric::Max, 0.15, 0, &fired).unwrap_err();
        assert!(matches!(err, RelogicError::Cancelled(_)), "{err}");
        let plain = critical_eps(&c, &tape, CriticalMetric::Max, 0.15, 0).unwrap();
        let generous = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
        let under =
            critical_eps_cancellable(&c, &tape, CriticalMetric::Max, 0.15, 0, &generous).unwrap();
        assert_eq!(plain, under);
        assert_eq!(
            plain.critical.map(f64::to_bits),
            under.critical.map(f64::to_bits)
        );
    }

    #[test]
    fn rejects_out_of_range_thresholds() {
        let c = xor_chain(2);
        let tape = tape_for(&c);
        for bad in [0.0, -0.1, 0.5, 0.7, f64::NAN] {
            let err = critical_eps(&c, &tape, CriticalMetric::Max, bad, 0).unwrap_err();
            assert!(matches!(err, RelogicError::NumericRange { .. }), "{bad}");
        }
    }
}
