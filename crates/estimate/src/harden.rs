//! Selective-TMR hardening optimizer.
//!
//! Ranks gates by estimator criticality `ε · ô_any` (signal-probability
//! skew breaks ties: a gate whose output is strongly biased costs TMR the
//! least masking headroom), then sweeps doubling protection prefixes
//! through [`relogic_gen::tmr_selected`] under an area budget, emitting
//! the non-dominated (area, mean δ) points as the reliability-per-area
//! Pareto front.
//!
//! # Reliability model: hardened voters
//!
//! Candidates are scored under the paper's single-gate-failure closed
//! form with *hardened voters*: a protected gate's single replica failure
//! is always outvoted 2-to-1 (the replicas carry the same logic value, so
//! majority masking is exact, not probabilistic), which zeroes that
//! gate's `ε · ô` term in the product. This is the standard TMR
//! assumption — and the only self-consistent one at gate level: a voter
//! built from gates at the *same* ε ends in an OR exactly as observable
//! as the gate it protects plus four partially-observable helpers, so
//! noisy-voter TMR is strictly counterproductive in the single-error
//! model. Area, by contrast, is charged honestly from the real
//! [`tmr_selected`] transform (replicas + voter gates included), so the
//! front trades true area against hardened-voter reliability.

use crate::PropagationEstimate;
use relogic::{CancelToken, GateEps, InputDistribution, RelogicError};
use relogic_gen::tmr_selected;
use relogic_netlist::{Circuit, NodeId};

/// One evaluated hardening candidate: a protection prefix and its cost
/// and reliability scores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParetoPoint {
    /// How many ranked gates this candidate protects (0 = baseline).
    pub protected: usize,
    /// Gate count of the transformed circuit (replicas + voters included).
    pub gates: usize,
    /// Gate-count ratio versus the unprotected circuit (baseline = 1.0).
    pub area_ratio: f64,
    /// Mean per-output error δ under the propagation estimate.
    pub mean_delta: f64,
    /// Worst per-output error δ under the propagation estimate.
    pub max_delta: f64,
}

/// The outcome of a [`harden`] sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct HardenReport {
    /// The unprotected circuit's scores (area ratio 1.0).
    pub baseline: ParetoPoint,
    /// Every TMR candidate evaluated within the area budget, in
    /// increasing prefix order. Does not include the baseline.
    pub evaluated: Vec<ParetoPoint>,
    /// Non-dominated points over baseline + evaluated: increasing area,
    /// strictly decreasing mean δ.
    pub front: Vec<ParetoPoint>,
    /// The gate protection order with each gate's criticality `ε · ô_any`;
    /// `evaluated[i]` protects the first `evaluated[i].protected` entries.
    pub ranking: Vec<(NodeId, f64)>,
}

fn score(est: &PropagationEstimate, eps: &GateEps) -> (f64, f64) {
    let deltas = est.closed_form(eps);
    let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
    let max = deltas.iter().fold(0.0f64, |a, &d| a.max(d));
    (mean, max)
}

/// Sweeps selective-TMR protection prefixes under `area_budget` and
/// returns the reliability-per-area Pareto front.
///
/// `eps` is the uniform gate error rate; protected gates are scored as
/// fully masked (hardened-voter TMR, see the module docs) while area is
/// charged from the real [`tmr_selected`] gate counts. `area_budget` is
/// the maximum allowed gate-count ratio versus the unprotected circuit
/// (≥ 1.0); `max_steps = 0` places no cap on the number of evaluated
/// prefixes. Deterministic: single-threaded, with a total protection
/// order.
///
/// # Errors
///
/// [`RelogicError::NumericRange`] if `area_budget` is not a finite value
/// ≥ 1.0; estimator errors ([`RelogicError::InvalidEpsilon`],
/// [`RelogicError::ArityExceeded`], distribution mismatches) pass through.
pub fn harden(
    circuit: &Circuit,
    dist: &InputDistribution,
    eps: f64,
    area_budget: f64,
    max_steps: usize,
) -> Result<HardenReport, RelogicError> {
    let never = CancelToken::new();
    harden_cancellable(circuit, dist, eps, area_budget, max_steps, &never)
}

/// Like [`harden`], checking `cancel` before the estimator pass and before
/// every protection-prefix evaluation (each prefix pays a full
/// [`tmr_selected`] transform plus a closed-form rescore). A sweep that
/// completes before the token fires returns a report identical to an
/// uncancelled sweep.
///
/// # Errors
///
/// [`RelogicError::Cancelled`] once the token fires, otherwise as
/// [`harden`].
pub fn harden_cancellable(
    circuit: &Circuit,
    dist: &InputDistribution,
    eps: f64,
    area_budget: f64,
    max_steps: usize,
    cancel: &CancelToken,
) -> Result<HardenReport, RelogicError> {
    if !area_budget.is_finite() || area_budget < 1.0 {
        return Err(RelogicError::NumericRange {
            context: "harden area budget",
            value: area_budget,
            lo: 1.0,
            hi: f64::INFINITY,
        });
    }
    cancel.check("harden_estimate")?;
    let est = PropagationEstimate::try_compute(circuit, dist)?;
    let gate_eps = GateEps::try_uniform(circuit, eps)?;
    let (mean_delta, max_delta) = score(&est, &gate_eps);
    let baseline = ParetoPoint {
        protected: 0,
        gates: circuit.gate_count(),
        area_ratio: 1.0,
        mean_delta,
        max_delta,
    };

    // Protection order: criticality desc, then signal-probability skew
    // |1 − 2p| desc (biased gates mask best), then node index for a total
    // deterministic order. Sources carry ε = 0 and are filtered out.
    let mut ranking: Vec<(NodeId, f64)> = circuit
        .iter()
        .filter(|(_, node)| node.kind().is_gate())
        .map(|(id, _)| (id, gate_eps.get(id) * est.any(id)))
        .collect();
    let skew = |id: NodeId| (1.0 - 2.0 * est.signal_probs()[id.index()]).abs();
    ranking.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                skew(b.0)
                    .partial_cmp(&skew(a.0))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.0.index().cmp(&b.0.index()))
    });

    let mut evaluated: Vec<ParetoPoint> = Vec::new();
    let mut k = 1usize;
    while k <= ranking.len() && (max_steps == 0 || evaluated.len() < max_steps) {
        cancel.check("harden_prefix")?;
        let protect: Vec<NodeId> = ranking[..k].iter().map(|&(id, _)| id).collect();
        let transformed = tmr_selected(circuit, &protect);
        let area_ratio = transformed.gate_count() as f64 / baseline.gates.max(1) as f64;
        if area_ratio > area_budget {
            break;
        }
        let mut masked = gate_eps.clone();
        for &id in &protect {
            masked.try_set(id, 0.0)?;
        }
        let (mean_delta, max_delta) = score(&est, &masked);
        evaluated.push(ParetoPoint {
            protected: k,
            gates: transformed.gate_count(),
            area_ratio,
            mean_delta,
            max_delta,
        });
        if k == ranking.len() {
            break;
        }
        k = (k * 2).min(ranking.len());
    }

    // Pareto front over baseline + candidates: walk by increasing area
    // (the evaluation order) and keep strict mean-δ improvements.
    let mut front = vec![baseline];
    for &p in &evaluated {
        let best = front.last().map_or(f64::INFINITY, |q| q.mean_delta);
        if p.mean_delta < best {
            front.push(p);
        }
    }

    Ok(HardenReport {
        baseline,
        evaluated,
        front,
        ranking,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 12-deep AND chain: every gate sits on the single output cone, so
    /// each protection prefix masks a nonzero `ε · ô` term and the front
    /// improves strictly until the area budget bites.
    fn and_chain() -> Circuit {
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let mut cur = c.and([a, b]);
        for i in 0..11 {
            let x = c.add_input(format!("x{i}"));
            cur = c.and([cur, x]);
        }
        c.add_output("y", cur);
        c
    }

    #[test]
    fn baseline_and_prefix_schedule() {
        let c = and_chain();
        let report = harden(&c, &InputDistribution::Uniform, 0.003, 8.0, 0).unwrap();
        assert_eq!(report.baseline.protected, 0);
        assert_eq!(report.baseline.gates, c.gate_count());
        assert_eq!(report.baseline.area_ratio, 1.0);
        let prefixes: Vec<usize> = report.evaluated.iter().map(|p| p.protected).collect();
        assert_eq!(prefixes, vec![1, 2, 4, 8, 12]);
        for w in report.evaluated.windows(2) {
            assert!(w[1].area_ratio > w[0].area_ratio);
        }
        // Selective TMR per gate adds 2 replicas + a 5-gate voter.
        assert_eq!(report.evaluated[0].gates, c.gate_count() + 7);
    }

    #[test]
    fn front_is_non_dominated_and_improves() {
        let c = and_chain();
        let report = harden(&c, &InputDistribution::Uniform, 0.003, 8.0, 0).unwrap();
        assert_eq!(report.front[0], report.baseline);
        assert!(
            report.front.len() > 1,
            "protection should beat the baseline somewhere on this chain"
        );
        for w in report.front.windows(2) {
            assert!(w[1].area_ratio > w[0].area_ratio);
            assert!(w[1].mean_delta < w[0].mean_delta);
        }
    }

    #[test]
    fn area_budget_caps_the_sweep() {
        let c = and_chain();
        let tight = harden(&c, &InputDistribution::Uniform, 0.003, 1.0, 0).unwrap();
        assert!(tight.evaluated.is_empty());
        assert_eq!(tight.front, vec![tight.baseline]);
        let loose = harden(&c, &InputDistribution::Uniform, 0.003, 3.0, 0).unwrap();
        assert!(!loose.evaluated.is_empty());
        assert!(loose.evaluated.iter().all(|p| p.area_ratio <= 3.0));
    }

    #[test]
    fn max_steps_caps_the_sweep() {
        let c = and_chain();
        let report = harden(&c, &InputDistribution::Uniform, 0.003, 8.0, 2).unwrap();
        assert_eq!(report.evaluated.len(), 2);
    }

    #[test]
    fn ranking_covers_exactly_the_gates() {
        let c = and_chain();
        let report = harden(&c, &InputDistribution::Uniform, 0.003, 2.0, 0).unwrap();
        assert_eq!(report.ranking.len(), c.gate_count());
        for w in report.ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn deterministic_across_repeats() {
        let c = and_chain();
        let a = harden(&c, &InputDistribution::Uniform, 0.01, 4.0, 0).unwrap();
        let b = harden(&c, &InputDistribution::Uniform, 0.01, 4.0, 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cancelled_sweep_returns_typed_error_and_completed_sweep_is_identical() {
        let c = and_chain();
        let fired = CancelToken::new();
        fired.cancel();
        let err =
            harden_cancellable(&c, &InputDistribution::Uniform, 0.01, 4.0, 0, &fired).unwrap_err();
        assert!(matches!(err, RelogicError::Cancelled(_)), "{err}");
        let plain = harden(&c, &InputDistribution::Uniform, 0.01, 4.0, 0).unwrap();
        let generous = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
        let under =
            harden_cancellable(&c, &InputDistribution::Uniform, 0.01, 4.0, 0, &generous).unwrap();
        assert_eq!(plain, under);
    }

    #[test]
    fn rejects_bad_area_budgets() {
        let c = and_chain();
        for bad in [0.5, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            let r = harden(&c, &InputDistribution::Uniform, 0.01, bad, 0);
            assert!(r.is_err(), "budget {bad} must be rejected");
        }
    }
}
