//! Tiered reliability estimation on top of the `relogic` analysis stack.
//!
//! The paper's exact observability analysis (and its BDD engine) is the
//! gold standard, but it can blow up on multiplier-class reconvergence;
//! Monte Carlo always works but pays per-pattern cost. This crate adds the
//! missing middle tier and the policy that arbitrates between all three:
//!
//! * [`PropagationEstimate`] — a propagation-probability SER estimator in
//!   the Asadi–Tahoori style: topological signal probabilities plus a
//!   reverse-topological per-output observability estimate, both under a
//!   fanin-independence assumption. Linear in circuit size, never blows
//!   up, approximate under reconvergent fanout.
//! * [`run_estimate`] / [`EstimatorPolicy`] — auto-escalation: try the
//!   exact tier under a BDD live-node budget, fall back to propagation on
//!   any exact failure (recording the fallback in
//!   [`relogic::Diagnostics`], never silently), and refine with tape
//!   Monte Carlo when the propagation answer saturates toward δ = ½ where
//!   the closed form degrades.
//! * [`harden`] — a selective-TMR optimizer driven by the estimator's
//!   criticality ranking, emitting a reliability-per-area Pareto front
//!   under an area budget.
//! * [`critical_eps`] — deterministic bisection for the gate error rate ε
//!   at which output error δ crosses a threshold, on the compiled
//!   [`relogic::SweepTape`].

#![warn(missing_docs)]

mod critical;
mod harden;
mod policy;
mod propagation;

pub use critical::{
    critical_eps, critical_eps_cancellable, CriticalEpsReport, CriticalMetric,
    DEFAULT_BISECTION_STEPS,
};
pub use harden::{harden, harden_cancellable, HardenReport, ParetoPoint};
pub use policy::{
    run_estimate, run_estimate_cancellable, EstimateReport, EstimatorPolicy, EstimatorTier,
    DEFAULT_BDD_NODE_BUDGET, DEFAULT_MC_DELTA_THRESHOLD,
};
pub use propagation::{
    PropagationEstimate, PROPAGATION_VS_MC_BOUND_EPS, PROPAGATION_VS_MC_MEAN_ABS_BOUND,
};
