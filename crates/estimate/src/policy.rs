//! The auto-escalating estimator policy.
//!
//! [`run_estimate`] arbitrates between three backends, in fixed order:
//!
//! 1. **Exact** — the caller's exact closure, handed the BDD live-node
//!    budget. Any failure (budget trip, arity limit, variable-space
//!    exhaustion …) records one estimator fallback in the report's
//!    [`Diagnostics`] and escalates; exact failures are never silent.
//! 2. **Propagation** — the linear propagation-probability estimator.
//! 3. **Monte Carlo** — when the propagation answer saturates toward the
//!    δ = ½ ceiling (where the independence closed form loses
//!    resolution), the answer is refined by the caller's MC closure.
//!
//! The tier that produced the answer — and why — is recorded in the
//! report; the diagnostics tier counters feed the serve daemon's
//! `stats`/`health` surfaces.

use relogic::{CancelToken, Diagnostics, RelogicError};

/// Default BDD live-node budget for the exact tier. Roomy enough for every
/// gen-suite circuit (c499's base build peaks well below it) while
/// aborting multiplier-class blow-ups within a couple of seconds.
pub const DEFAULT_BDD_NODE_BUDGET: usize = 2_000_000;

/// Default δ saturation threshold above which the propagation answer is
/// refined with Monte Carlo. Near δ = ½ the closed form's product of
/// `(1 − 2 ε ô)` factors has collapsed toward zero and carries little
/// resolution, so sampling is the better spend.
pub const DEFAULT_MC_DELTA_THRESHOLD: f64 = 0.35;

/// Which backend produced an estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EstimatorTier {
    /// Exact observability analysis (BDD backend) under the node budget.
    Exact,
    /// The propagation-probability estimator.
    Propagation,
    /// Tape Monte Carlo refinement.
    MonteCarlo,
}

impl EstimatorTier {
    /// Stable lower-case name used on every wire surface (CLI JSON, serve
    /// responses, stats counters).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EstimatorTier::Exact => "exact",
            EstimatorTier::Propagation => "propagation",
            EstimatorTier::MonteCarlo => "mc",
        }
    }
}

/// Escalation knobs for [`run_estimate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstimatorPolicy {
    /// Live-node budget handed to the exact tier. `0` skips the exact
    /// tier entirely (recorded as a fallback with that reason).
    pub bdd_node_budget: usize,
    /// Pattern budget for the Monte Carlo refinement tier.
    pub mc_patterns: u64,
    /// Base seed for the Monte Carlo refinement tier.
    pub mc_seed: u64,
    /// Worst per-output δ above which a propagation answer escalates to
    /// Monte Carlo.
    pub mc_delta_threshold: f64,
}

impl Default for EstimatorPolicy {
    fn default() -> Self {
        EstimatorPolicy {
            bdd_node_budget: DEFAULT_BDD_NODE_BUDGET,
            mc_patterns: 65_536,
            mc_seed: 1,
            mc_delta_threshold: DEFAULT_MC_DELTA_THRESHOLD,
        }
    }
}

/// The outcome of one [`run_estimate`] call.
#[derive(Clone, Debug)]
pub struct EstimateReport {
    /// The tier whose numbers are in [`EstimateReport::per_output`].
    pub tier: EstimatorTier,
    /// Human-readable explanation of why that tier answered.
    pub reason: String,
    /// Per-output error probabilities δ from the answering tier.
    pub per_output: Vec<f64>,
    /// The propagation tier's δ values, kept alongside a Monte Carlo
    /// refinement so callers can see the escalation gap. `None` when the
    /// exact tier answered.
    pub propagation: Option<Vec<f64>>,
    /// Tier counters (exact/propagation/mc + fallbacks) for this run,
    /// mergeable into a service-wide accumulator.
    pub diagnostics: Diagnostics,
}

/// Runs the escalation policy over three caller-supplied backends.
///
/// The closures keep this crate decoupled from how each tier is actually
/// materialized: the CLI hands in direct computations (with disk-cache
/// read-through), the serve daemon hands in artifact-cache accessors. Each
/// closure returns the per-output δ vector for the request's ε
/// configuration.
///
/// * `exact(budget)` — exact analysis bounded by `budget` live BDD nodes.
/// * `propagation()` — the propagation-probability estimate.
/// * `mc(patterns, seed)` — tape Monte Carlo.
///
/// # Errors
///
/// An exact-tier failure is policy (it escalates); a propagation or Monte
/// Carlo failure is a real error and is returned.
pub fn run_estimate<X, P, M>(
    policy: &EstimatorPolicy,
    exact: X,
    propagation: P,
    mc: M,
) -> Result<EstimateReport, RelogicError>
where
    X: FnOnce(usize) -> Result<Vec<f64>, RelogicError>,
    P: FnOnce() -> Result<Vec<f64>, RelogicError>,
    M: FnOnce(u64, u64) -> Result<Vec<f64>, RelogicError>,
{
    let never = CancelToken::new();
    run_estimate_cancellable(policy, &never, exact, propagation, mc)
}

/// Like [`run_estimate`], checking `cancel` before entering each tier.
///
/// Cancellation is *not* an escalation trigger: an exact tier that stops
/// on the token returns [`RelogicError::Cancelled`] outright instead of
/// falling back — the caller asked the whole request to stop, and running
/// a cheaper tier would only burn time past the deadline. Only genuine
/// exact-tier failures (budget trips, arity limits …) escalate.
///
/// # Errors
///
/// [`RelogicError::Cancelled`] once the token fires, otherwise as
/// [`run_estimate`].
pub fn run_estimate_cancellable<X, P, M>(
    policy: &EstimatorPolicy,
    cancel: &CancelToken,
    exact: X,
    propagation: P,
    mc: M,
) -> Result<EstimateReport, RelogicError>
where
    X: FnOnce(usize) -> Result<Vec<f64>, RelogicError>,
    P: FnOnce() -> Result<Vec<f64>, RelogicError>,
    M: FnOnce(u64, u64) -> Result<Vec<f64>, RelogicError>,
{
    let mut diagnostics = Diagnostics::new();

    cancel.check("estimate_exact_tier")?;
    let exact_failure = if policy.bdd_node_budget == 0 {
        "exact tier disabled (budget 0)".to_owned()
    } else {
        match exact(policy.bdd_node_budget) {
            Ok(per_output) => {
                diagnostics.record_tier_exact();
                return Ok(EstimateReport {
                    tier: EstimatorTier::Exact,
                    reason: format!(
                        "exact tier answered under the {}-node budget",
                        policy.bdd_node_budget
                    ),
                    per_output,
                    propagation: None,
                    diagnostics,
                });
            }
            Err(e @ RelogicError::Cancelled(_)) => return Err(e),
            Err(e) => format!("exact tier failed: {e}"),
        }
    };
    diagnostics.record_estimator_fallback();

    cancel.check("estimate_propagation_tier")?;
    let prop = propagation()?;
    let worst = prop.iter().fold(0.0f64, |a, &d| a.max(d));
    if worst >= policy.mc_delta_threshold {
        cancel.check("estimate_mc_tier")?;
        let refined = mc(policy.mc_patterns, policy.mc_seed)?;
        diagnostics.record_tier_mc();
        return Ok(EstimateReport {
            tier: EstimatorTier::MonteCarlo,
            reason: format!(
                "{exact_failure}; propagation δ {worst:.3} ≥ {:.3} saturation threshold, refined with {} MC patterns",
                policy.mc_delta_threshold, policy.mc_patterns
            ),
            per_output: refined,
            propagation: Some(prop),
            diagnostics,
        });
    }
    diagnostics.record_tier_propagation();
    Ok(EstimateReport {
        tier: EstimatorTier::Propagation,
        reason: format!(
            "{exact_failure}; propagation δ {worst:.3} under the {:.3} saturation threshold",
            policy.mc_delta_threshold
        ),
        per_output: prop.clone(),
        propagation: Some(prop),
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail(_: usize) -> Result<Vec<f64>, RelogicError> {
        Err(RelogicError::BddBudgetExceeded {
            live_nodes: 123,
            budget: 100,
        })
    }

    #[test]
    fn exact_success_short_circuits() {
        let report = run_estimate(
            &EstimatorPolicy::default(),
            |budget| {
                assert_eq!(budget, DEFAULT_BDD_NODE_BUDGET);
                Ok(vec![0.1])
            },
            || panic!("propagation must not run"),
            |_, _| panic!("mc must not run"),
        )
        .unwrap();
        assert_eq!(report.tier, EstimatorTier::Exact);
        assert_eq!(report.per_output, vec![0.1]);
        assert_eq!(report.diagnostics.tier_exact(), 1);
        assert_eq!(report.diagnostics.estimator_fallbacks(), 0);
        assert!(report.propagation.is_none());
    }

    #[test]
    fn exact_failure_falls_back_to_propagation_with_counter() {
        let report = run_estimate(
            &EstimatorPolicy::default(),
            fail,
            || Ok(vec![0.05, 0.2]),
            |_, _| panic!("below the threshold, mc must not run"),
        )
        .unwrap();
        assert_eq!(report.tier, EstimatorTier::Propagation);
        assert_eq!(report.diagnostics.estimator_fallbacks(), 1);
        assert_eq!(report.diagnostics.tier_propagation(), 1);
        assert!(
            report.reason.contains("live-node budget"),
            "{}",
            report.reason
        );
    }

    #[test]
    fn saturated_propagation_escalates_to_mc() {
        let policy = EstimatorPolicy {
            mc_patterns: 512,
            mc_seed: 9,
            ..Default::default()
        };
        let report = run_estimate(
            &policy,
            fail,
            || Ok(vec![0.1, 0.49]),
            |patterns, seed| {
                assert_eq!((patterns, seed), (512, 9));
                Ok(vec![0.12, 0.47])
            },
        )
        .unwrap();
        assert_eq!(report.tier, EstimatorTier::MonteCarlo);
        assert_eq!(report.per_output, vec![0.12, 0.47]);
        assert_eq!(report.propagation, Some(vec![0.1, 0.49]));
        assert_eq!(report.diagnostics.tier_mc(), 1);
        assert_eq!(report.diagnostics.estimator_fallbacks(), 1);
    }

    #[test]
    fn zero_budget_disables_the_exact_tier() {
        let policy = EstimatorPolicy {
            bdd_node_budget: 0,
            ..Default::default()
        };
        let report = run_estimate(
            &policy,
            |_| panic!("exact must not run with budget 0"),
            || Ok(vec![0.01]),
            |_, _| panic!("mc must not run"),
        )
        .unwrap();
        assert_eq!(report.tier, EstimatorTier::Propagation);
        assert!(report.reason.contains("disabled"));
        assert_eq!(report.diagnostics.estimator_fallbacks(), 1);
    }

    #[test]
    fn cancelled_exact_tier_does_not_fall_back() {
        // A cancelled exact tier must return the cancellation, not
        // escalate to the cheaper tiers.
        let err = run_estimate_cancellable(
            &EstimatorPolicy::default(),
            &CancelToken::new(),
            |_| {
                Err(RelogicError::Cancelled(relogic::Cancelled {
                    after: std::time::Duration::from_millis(7),
                    checked_at: "obs_node",
                }))
            },
            || panic!("cancelled exact tier must not fall back to propagation"),
            |_, _| panic!("cancelled exact tier must not fall back to mc"),
        )
        .unwrap_err();
        assert!(matches!(err, RelogicError::Cancelled(_)), "{err}");
    }

    #[test]
    fn pre_fired_token_stops_before_any_tier_runs() {
        let fired = CancelToken::new();
        fired.cancel();
        let err = run_estimate_cancellable(
            &EstimatorPolicy::default(),
            &fired,
            |_| panic!("exact must not run under a fired token"),
            || panic!("propagation must not run under a fired token"),
            |_, _| panic!("mc must not run under a fired token"),
        )
        .unwrap_err();
        match err {
            RelogicError::Cancelled(c) => assert_eq!(c.checked_at, "estimate_exact_tier"),
            other => panic!("expected Cancelled, got {other}"),
        }
    }

    #[test]
    fn propagation_failure_is_a_real_error() {
        let err = run_estimate(
            &EstimatorPolicy::default(),
            fail,
            || Err(RelogicError::EmptyCircuit),
            |_, _| Ok(vec![]),
        )
        .unwrap_err();
        assert_eq!(err, RelogicError::EmptyCircuit);
    }
}
