//! The propagation-probability SER estimator (PAPERS.md #1, Asadi–Tahoori
//! style).
//!
//! Two linear passes over the netlist, both assuming fanin independence:
//!
//! 1. **Signal probabilities**, forward topological: each gate's output
//!    probability is the exact sum over its (distinct) fanin assignments,
//!    weighted by the product of the fanins' probabilities.
//! 2. **Observability estimates**, reverse topological: the per-edge
//!    *sensitization probability* `s(v→g)` — the probability that flipping
//!    `v` flips gate `g`'s output, over the other fanins' assignments — is
//!    combined over `v`'s observers as
//!    `ô_k(v) = 1 − (1 − port_k(v)) · Π_g (1 − s(v→g) · ô_k(g))`.
//!
//! Both passes treat reconvergent signals as independent, which is exactly
//! the approximation the paper's exact method exists to avoid — but the
//! cost is `O(edges · outputs)` with no symbolic blow-up, which makes this
//! the fallback tier when the exact BDD build trips its node budget. The
//! output error δ uses the same closed form as
//! [`relogic::ObservabilityMatrix::closed_form`].

use relogic::{GateEps, InputDistribution, RelogicError, MAX_ANALYSIS_ARITY};
use relogic_netlist::{Circuit, GateKind, NodeId};

/// Gate error rate at which the propagation-vs-Monte-Carlo accuracy bound
/// ([`PROPAGATION_VS_MC_MEAN_ABS_BOUND`]) is pinned.
pub const PROPAGATION_VS_MC_BOUND_EPS: f64 = 0.02;

/// Pinned accuracy bound: on every gen-suite circuit, the mean absolute
/// per-output difference between the propagation estimate and a Monte
/// Carlo reference (2^16 patterns, seed 7) at ε =
/// [`PROPAGATION_VS_MC_BOUND_EPS`] stays under this value. Measured by the
/// `estimator_accuracy` bench — worst observed: c1908 at ~0.13, whose
/// reconvergent XOR trees are exactly where the independence assumption
/// overestimates observability; every other suite circuit stays under
/// 0.06 — and asserted by the oracle tests, the bench `--smoke` mode, and
/// CI.
pub const PROPAGATION_VS_MC_MEAN_ABS_BOUND: f64 = 0.15;

/// Signal probabilities and estimated observabilities for every node of a
/// circuit, computed by the propagation-probability estimator.
///
/// The estimate is ε-independent (like the exact
/// [`relogic::ObservabilityMatrix`]), so it is cacheable per circuit and
/// reusable across the whole ε sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct PropagationEstimate {
    signal_probs: Vec<f64>,
    per_output: Vec<Vec<f64>>, // [node][output]
    any_output: Vec<f64>,
}

/// Distinct fanin nodes of a gate, in first-appearance pin order, plus the
/// pin → distinct-index mapping. A gate reading one node on several pins
/// flips all of those pins together, so enumeration must be over distinct
/// *nodes*, not pins.
fn distinct_fanins(fanins: &[NodeId]) -> (Vec<NodeId>, Vec<usize>) {
    let mut nodes: Vec<NodeId> = Vec::with_capacity(fanins.len());
    let mut pin_of: Vec<usize> = Vec::with_capacity(fanins.len());
    for &f in fanins {
        match nodes.iter().position(|&n| n == f) {
            Some(i) => pin_of.push(i),
            None => {
                nodes.push(f);
                pin_of.push(nodes.len() - 1);
            }
        }
    }
    (nodes, pin_of)
}

/// Evaluates `kind` with each distinct fanin `i` set to bit `i` of
/// `combo`, honouring repeated pins.
fn eval_combo_distinct(kind: GateKind, pin_of: &[usize], combo: usize) -> bool {
    let mut pins = [false; MAX_ANALYSIS_ARITY];
    for (p, &d) in pin_of.iter().enumerate() {
        pins[p] = combo >> d & 1 != 0;
    }
    kind.eval(&pins[..pin_of.len()])
}

impl PropagationEstimate {
    /// Runs both propagation passes for `circuit` under `dist`.
    ///
    /// Deterministic and single-threaded: the result is a pure function of
    /// the circuit and distribution, bit-identical for every caller.
    ///
    /// # Errors
    ///
    /// [`RelogicError::DistributionMismatch`] if the distribution does not
    /// match the circuit, or [`RelogicError::ArityExceeded`] if a gate has
    /// more fanins than the analysis enumerates.
    pub fn try_compute(circuit: &Circuit, dist: &InputDistribution) -> Result<Self, RelogicError> {
        let input_probs = dist.try_position_probs(circuit)?;
        let n = circuit.len();
        let m = circuit.output_count();
        for (id, node) in circuit.iter() {
            if node.arity() > MAX_ANALYSIS_ARITY {
                return Err(RelogicError::ArityExceeded {
                    node: id,
                    arity: node.arity(),
                    max: MAX_ANALYSIS_ARITY,
                });
            }
        }

        // Pass 1: signal probabilities, forward topological order.
        let mut probs = vec![0.0f64; n];
        let mut next_input = 0usize;
        for (id, node) in circuit.iter() {
            probs[id.index()] = match node.kind() {
                GateKind::Input => {
                    let p = input_probs[next_input];
                    next_input += 1;
                    p
                }
                GateKind::Const(v) => f64::from(u8::from(v)),
                kind => {
                    let (nodes, pin_of) = distinct_fanins(node.fanins());
                    let mut p = 0.0;
                    for combo in 0..1usize << nodes.len() {
                        if !eval_combo_distinct(kind, &pin_of, combo) {
                            continue;
                        }
                        let mut w = 1.0;
                        for (d, &f) in nodes.iter().enumerate() {
                            let pf = probs[f.index()];
                            w *= if combo >> d & 1 != 0 { pf } else { 1.0 - pf };
                        }
                        p += w;
                    }
                    p.clamp(0.0, 1.0)
                }
            };
        }

        // Observation structure: distinct gate observers per node, plus
        // the output columns whose port reads the node directly. Each
        // observer edge carries its sensitization probability.
        let mut observers: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (id, node) in circuit.iter() {
            if !node.kind().is_gate() {
                continue;
            }
            let (nodes, pin_of) = distinct_fanins(node.fanins());
            for (d, &v) in nodes.iter().enumerate() {
                // s(v→g): over assignments of the other distinct fanins,
                // the probability that the two values of v disagree at g's
                // output. Enumerating full combos and masking bit d visits
                // each other-assignment exactly twice, so halve by fixing
                // bit d to 0.
                let mut s = 0.0;
                for combo in 0..1usize << nodes.len() {
                    if combo >> d & 1 != 0 {
                        continue;
                    }
                    let lo = eval_combo_distinct(node.kind(), &pin_of, combo);
                    let hi = eval_combo_distinct(node.kind(), &pin_of, combo | 1 << d);
                    if lo == hi {
                        continue;
                    }
                    let mut w = 1.0;
                    for (e, &f) in nodes.iter().enumerate() {
                        if e == d {
                            continue;
                        }
                        let pf = probs[f.index()];
                        w *= if combo >> e & 1 != 0 { pf } else { 1.0 - pf };
                    }
                    s += w;
                }
                observers[v.index()].push((u32::try_from(id.index()).unwrap_or(u32::MAX), s));
            }
        }
        let mut ports: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (k, out) in circuit.outputs().iter().enumerate() {
            ports[out.node().index()].push(u32::try_from(k).unwrap_or(u32::MAX));
        }

        // Pass 2: per-output and any-output observability estimates,
        // reverse topological order (every observer is visited first).
        let mut per_output: Vec<Vec<f64>> = vec![vec![0.0; m]; n];
        let mut any_output = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut miss_any = 1.0f64;
            let mut miss: Vec<f64> = vec![1.0; m];
            for &(g, s) in &observers[i] {
                let g = g as usize;
                miss_any *= 1.0 - s * any_output[g];
                for (k, slot) in miss.iter_mut().enumerate() {
                    *slot *= 1.0 - s * per_output[g][k];
                }
            }
            for &k in &ports[i] {
                miss[k as usize] = 0.0;
                miss_any = 0.0;
            }
            any_output[i] = (1.0 - miss_any).clamp(0.0, 1.0);
            for (k, slot) in miss.into_iter().enumerate() {
                per_output[i][k] = (1.0 - slot).clamp(0.0, 1.0);
            }
        }

        Ok(PropagationEstimate {
            signal_probs: probs,
            per_output,
            any_output,
        })
    }

    /// Estimated signal probability of every node, indexed by
    /// [`NodeId::index`].
    #[must_use]
    pub fn signal_probs(&self) -> &[f64] {
        &self.signal_probs
    }

    /// All per-output observability rows, indexed `[node][output]`;
    /// exposed for the persistent artifact store.
    #[must_use]
    pub fn per_output_rows(&self) -> &[Vec<f64>] {
        &self.per_output
    }

    /// All any-output observability estimates, indexed by
    /// [`NodeId::index`].
    #[must_use]
    pub fn any_output_values(&self) -> &[f64] {
        &self.any_output
    }

    /// Estimated observability of `node` at output `output_index`.
    #[must_use]
    pub fn at_output(&self, node: NodeId, output_index: usize) -> f64 {
        self.per_output[node.index()][output_index]
    }

    /// Estimated probability a flip at `node` changes at least one output.
    #[must_use]
    pub fn any(&self, node: NodeId) -> f64 {
        self.any_output[node.index()]
    }

    /// Number of outputs covered.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.per_output.first().map_or(0, Vec::len)
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.any_output.len()
    }

    /// Returns `true` if no nodes are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.any_output.is_empty()
    }

    /// The closed-form output error `δ_y = ½ (1 − Π_i (1 − 2 ε_i ô_i))`
    /// over the estimated observabilities.
    #[must_use]
    pub fn closed_form_output(&self, eps: &GateEps, output_index: usize) -> f64 {
        let mut prod = 1.0f64;
        for node in eps.noisy_nodes() {
            prod *= 1.0 - 2.0 * eps.get(node) * self.at_output(node, output_index);
        }
        0.5 * (1.0 - prod)
    }

    /// Closed-form output error for every output.
    #[must_use]
    pub fn closed_form(&self, eps: &GateEps) -> Vec<f64> {
        (0..self.output_count())
            .map(|k| self.closed_form_output(eps, k))
            .collect()
    }

    /// Per-node criticality `ε_i · ô_i` against the any-output
    /// observability estimate, sorted descending — the hardening
    /// optimizer's ranking signal.
    #[must_use]
    pub fn criticality(&self, eps: &GateEps) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = (0..self.len())
            .map(NodeId::from_index)
            .map(|id| (id, eps.get(id) * self.any(id)))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.index().cmp(&b.0.index()))
        });
        v
    }

    /// Rebuilds an estimate from deserialized arrays, validating the
    /// invariants [`PropagationEstimate::try_compute`] guarantees: equal
    /// node counts, uniform row width, and every value a finite
    /// probability. Checksummed store payloads still route through here so
    /// a hash collision degrades into an error, never a panic downstream.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn from_parts(
        signal_probs: Vec<f64>,
        per_output: Vec<Vec<f64>>,
        any_output: Vec<f64>,
    ) -> Result<Self, String> {
        if signal_probs.len() != any_output.len() || per_output.len() != any_output.len() {
            return Err(format!(
                "{} signal probs, {} rows, {} any-output entries",
                signal_probs.len(),
                per_output.len(),
                any_output.len()
            ));
        }
        let in_unit = |x: &f64| x.is_finite() && (0.0..=1.0).contains(x);
        if !signal_probs.iter().all(in_unit) {
            return Err("signal probability outside [0, 1]".to_owned());
        }
        if !any_output.iter().all(in_unit) {
            return Err("any-output observability outside [0, 1]".to_owned());
        }
        let width = per_output.first().map_or(0, Vec::len);
        for (i, row) in per_output.iter().enumerate() {
            if row.len() != width {
                return Err(format!("row {i} has width {} != {width}", row.len()));
            }
            if !row.iter().all(in_unit) {
                return Err(format!("observability outside [0, 1] in row {i}"));
            }
        }
        Ok(PropagationEstimate {
            signal_probs,
            per_output,
            any_output,
        })
    }

    /// Approximate heap footprint in bytes (row payloads + headers plus
    /// the two flat arrays). A structural estimate for cache accounting.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        let rows: usize = self.per_output.iter().map(|r| r.len() * 8).sum();
        rows + self.per_output.len() * std::mem::size_of::<Vec<f64>>()
            + self.signal_probs.len() * 8
            + self.any_output.len() * 8
    }

    /// The heap footprint [`PropagationEstimate::try_compute`] *would*
    /// produce for `circuit`, a pure function of circuit structure —
    /// lets a cache charge for the estimate before materializing it.
    #[must_use]
    pub fn projected_heap_bytes(circuit: &Circuit) -> usize {
        let n = circuit.len();
        n * (std::mem::size_of::<Vec<f64>>() + circuit.output_count() * 8) + 2 * n * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic::{Backend, ObservabilityMatrix};

    /// y = (a & b) | c — fanout-free, so independence is exact.
    fn aoi() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let y = c.or([g, x]);
        c.add_output("y", y);
        c
    }

    #[test]
    fn exact_on_fanout_free_circuits() {
        let c = aoi();
        let est = PropagationEstimate::try_compute(&c, &InputDistribution::Uniform).unwrap();
        let exact = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        for id in c.node_ids() {
            assert!(
                (est.at_output(id, 0) - exact.at_output(id, 0)).abs() < 1e-12,
                "{id}: {} vs {}",
                est.at_output(id, 0),
                exact.at_output(id, 0)
            );
            assert!((est.any(id) - exact.any(id)).abs() < 1e-12);
        }
        // Signal probabilities: AND = 1/4, OR = 1/4 + 1/2·3/4 = 0.625.
        assert!((est.signal_probs()[3] - 0.25).abs() < 1e-12);
        assert!((est.signal_probs()[4] - 0.625).abs() < 1e-12);
    }

    #[test]
    fn honours_input_distribution() {
        // obs(AND gate) = Pr(c = 0); bias c to 0.9 → obs = 0.1.
        let c = aoi();
        let dist = InputDistribution::Independent(vec![0.5, 0.5, 0.9]);
        let est = PropagationEstimate::try_compute(&c, &dist).unwrap();
        assert!((est.at_output(NodeId::from_index(3), 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn repeated_pins_flip_together() {
        // y = a XOR a is constantly 0 and a is unobservable; a naive
        // per-pin treatment would call a fully observable.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.xor([a, a]);
        c.add_output("y", g);
        let est = PropagationEstimate::try_compute(&c, &InputDistribution::Uniform).unwrap();
        assert_eq!(est.signal_probs()[g.index()], 0.0);
        assert_eq!(est.any(a), 0.0);
    }

    #[test]
    fn multi_output_ports_and_any_column() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.not(a);
        let h = c.and([g, b]);
        c.add_output("y1", g);
        c.add_output("y2", h);
        let est = PropagationEstimate::try_compute(&c, &InputDistribution::Uniform).unwrap();
        assert!((est.at_output(g, 0) - 1.0).abs() < 1e-12);
        assert!((est.at_output(g, 1) - 0.5).abs() < 1e-12);
        assert!((est.any(g) - 1.0).abs() < 1e-12);
        assert_eq!(est.output_count(), 2);
    }

    #[test]
    fn closed_form_matches_exact_matrix_wiring() {
        let c = aoi();
        let est = PropagationEstimate::try_compute(&c, &InputDistribution::Uniform).unwrap();
        let exact = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, 0.03);
        let a = est.closed_form(&eps);
        let b = exact.closed_form(&eps);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn from_parts_rejects_bad_shapes_and_values() {
        let est = PropagationEstimate::try_compute(&aoi(), &InputDistribution::Uniform).unwrap();
        let ok = PropagationEstimate::from_parts(
            est.signal_probs().to_vec(),
            est.per_output_rows().to_vec(),
            est.any_output_values().to_vec(),
        )
        .unwrap();
        assert_eq!(ok, est);
        assert!(PropagationEstimate::from_parts(vec![0.5], vec![], vec![]).is_err());
        assert!(PropagationEstimate::from_parts(vec![2.0], vec![vec![0.5]], vec![0.5]).is_err());
        assert!(
            PropagationEstimate::from_parts(vec![0.5], vec![vec![f64::NAN]], vec![0.5]).is_err()
        );
        assert!(PropagationEstimate::from_parts(
            vec![0.5, 0.5],
            vec![vec![0.5], vec![0.5, 0.5]],
            vec![0.5, 0.5]
        )
        .is_err());
    }

    #[test]
    fn projected_bytes_match_materialized_footprint() {
        let c = aoi();
        let est = PropagationEstimate::try_compute(&c, &InputDistribution::Uniform).unwrap();
        assert_eq!(
            PropagationEstimate::projected_heap_bytes(&c),
            est.approx_heap_bytes()
        );
    }
}
