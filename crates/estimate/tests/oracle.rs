//! Oracle tests for the estimation tier: the propagation estimator is
//! pinned against Monte Carlo on the whole gen suite and against the
//! exact BDD matrix where reconvergence is mild, and the escalation
//! policy is exercised end-to-end with real backends.

// Test-only code: the library's unwrap ban does not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use relogic::{Backend, GateEps, InputDistribution, ObservabilityMatrix, RelogicError};
use relogic_estimate::{
    run_estimate, EstimatorPolicy, EstimatorTier, PropagationEstimate, PROPAGATION_VS_MC_BOUND_EPS,
    PROPAGATION_VS_MC_MEAN_ABS_BOUND,
};
use relogic_gen::suite;
use relogic_netlist::Circuit;
use relogic_sim::MonteCarloConfig;

fn mc_deltas(circuit: &Circuit, eps: &GateEps, patterns: u64, seed: u64) -> Vec<f64> {
    let config = MonteCarloConfig {
        patterns,
        seed,
        ..MonteCarloConfig::default()
    };
    relogic_sim::try_estimate(circuit, eps.as_slice(), &config)
        .expect("suite circuits simulate")
        .per_output()
        .to_vec()
}

fn mean_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len().max(1);
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / n as f64
}

/// The pinned accuracy contract: at ε = `PROPAGATION_VS_MC_BOUND_EPS`,
/// the propagation closed form stays within
/// `PROPAGATION_VS_MC_MEAN_ABS_BOUND` (mean |δ̂ − δ_MC| over outputs) of a
/// 2^16-pattern Monte Carlo reference on every gen-suite circuit.
#[test]
fn propagation_within_pinned_bound_of_mc_on_gen_suite() {
    for entry in suite::entries() {
        let circuit = (entry.build)();
        let eps = GateEps::uniform(&circuit, PROPAGATION_VS_MC_BOUND_EPS);
        let est = PropagationEstimate::try_compute(&circuit, &InputDistribution::Uniform)
            .expect("suite circuits fit the estimator");
        let prop = est.closed_form(&eps);
        let mc = mc_deltas(&circuit, &eps, 1 << 16, 7);
        let err = mean_abs_diff(&prop, &mc);
        assert!(
            err < PROPAGATION_VS_MC_MEAN_ABS_BOUND,
            "{}: mean |prop − mc| = {err:.4} breaches the pinned bound {}",
            entry.name,
            PROPAGATION_VS_MC_MEAN_ABS_BOUND
        );
    }
}

/// Where reconvergent fanout is mild, the propagation estimate should
/// track the exact BDD closed form closely (same single-error model, the
/// only gap is the independence approximation).
#[test]
fn propagation_tracks_exact_bdd_on_small_suite_circuits() {
    for name in ["x2", "cu", "b9"] {
        let circuit = suite::build(name).expect("known suite name");
        let eps = GateEps::uniform(&circuit, PROPAGATION_VS_MC_BOUND_EPS);
        let est = PropagationEstimate::try_compute(&circuit, &InputDistribution::Uniform)
            .expect("estimator runs");
        let exact =
            ObservabilityMatrix::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
        let err = mean_abs_diff(&est.closed_form(&eps), &exact.closed_form(&eps));
        assert!(
            err < PROPAGATION_VS_MC_MEAN_ABS_BOUND,
            "{name}: mean |prop − exact| = {err:.4}"
        );
    }
}

fn policy_backends(
    circuit: &Circuit,
    eps: &GateEps,
    policy: &EstimatorPolicy,
) -> Result<relogic_estimate::EstimateReport, RelogicError> {
    run_estimate(
        policy,
        |budget| {
            ObservabilityMatrix::try_compute_budgeted(
                circuit,
                &InputDistribution::Uniform,
                1,
                budget,
            )
            .map(|m| m.closed_form(eps))
        },
        || {
            PropagationEstimate::try_compute(circuit, &InputDistribution::Uniform)
                .map(|est| est.closed_form(eps))
        },
        |patterns, seed| {
            let config = MonteCarloConfig {
                patterns,
                seed,
                ..MonteCarloConfig::default()
            };
            Ok(relogic_sim::try_estimate(circuit, eps.as_slice(), &config)?
                .per_output()
                .to_vec())
        },
    )
}

#[test]
fn exact_tier_answers_small_circuits_under_the_default_budget() {
    let circuit = suite::build("x2").expect("x2 exists");
    let eps = GateEps::uniform(&circuit, 0.02);
    let report = policy_backends(&circuit, &eps, &EstimatorPolicy::default()).unwrap();
    assert_eq!(report.tier, EstimatorTier::Exact);
    assert_eq!(report.diagnostics.tier_exact(), 1);
    assert_eq!(report.diagnostics.estimator_fallbacks(), 0);
    let exact = ObservabilityMatrix::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    assert_eq!(report.per_output, exact.closed_form(&eps));
}

#[test]
fn budget_trip_on_c499_falls_back_to_propagation() {
    let circuit = suite::build("c499").expect("c499 exists");
    let eps = GateEps::uniform(&circuit, 0.001);
    let policy = EstimatorPolicy {
        bdd_node_budget: 50,
        ..EstimatorPolicy::default()
    };
    let report = policy_backends(&circuit, &eps, &policy).unwrap();
    assert_eq!(report.tier, EstimatorTier::Propagation);
    assert_eq!(report.diagnostics.estimator_fallbacks(), 1);
    assert_eq!(report.diagnostics.tier_propagation(), 1);
    assert!(
        report.reason.contains("live-node budget"),
        "reason must say why the exact tier was abandoned: {}",
        report.reason
    );
}

#[test]
fn saturated_propagation_refines_with_mc() {
    // A deep XOR chain at high ε saturates δ toward ½, tripping the MC
    // refinement threshold.
    let mut circuit = Circuit::new("deep_xor");
    let a = circuit.add_input("a");
    let b = circuit.add_input("b");
    let mut cur = circuit.xor([a, b]);
    for _ in 0..9 {
        cur = circuit.xor([cur, b]);
    }
    circuit.add_output("y", cur);
    let eps = GateEps::uniform(&circuit, 0.4);
    let policy = EstimatorPolicy {
        bdd_node_budget: 0,
        mc_patterns: 1 << 14,
        mc_seed: 7,
        ..EstimatorPolicy::default()
    };
    let report = policy_backends(&circuit, &eps, &policy).unwrap();
    assert_eq!(report.tier, EstimatorTier::MonteCarlo);
    assert_eq!(report.diagnostics.tier_mc(), 1);
    let prop = report.propagation.as_ref().expect("propagation kept");
    assert!(prop[0] >= 0.35);
    assert!((report.per_output[0] - prop[0]).abs() < 0.05);
}

/// The estimator stack is bit-deterministic: the propagation pass is a
/// pure single-threaded function, and the budgeted exact tier keeps its
/// probe build single-threaded so the budget trips identically no matter
/// how many worker threads the final matrix build uses.
#[test]
fn estimates_are_bit_identical_across_thread_counts() {
    let circuit = suite::build("b9").expect("b9 exists");
    let eps = GateEps::uniform(&circuit, 0.02);
    let a = ObservabilityMatrix::try_compute_budgeted(
        &circuit,
        &InputDistribution::Uniform,
        1,
        5_000_000,
    )
    .unwrap()
    .closed_form(&eps);
    let b = ObservabilityMatrix::try_compute_budgeted(
        &circuit,
        &InputDistribution::Uniform,
        4,
        5_000_000,
    )
    .unwrap()
    .closed_form(&eps);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a), bits(&b));

    let p1 = PropagationEstimate::try_compute(&circuit, &InputDistribution::Uniform).unwrap();
    let p2 = PropagationEstimate::try_compute(&circuit, &InputDistribution::Uniform).unwrap();
    assert_eq!(bits(&p1.closed_form(&eps)), bits(&p2.closed_form(&eps)));
}

/// A tiny budget must trip deterministically — same error, same counts —
/// so escalation decisions are reproducible.
#[test]
fn budget_trips_are_deterministic() {
    let circuit = suite::build("c499").expect("c499 exists");
    let a = ObservabilityMatrix::try_compute_budgeted(&circuit, &InputDistribution::Uniform, 1, 50)
        .unwrap_err();
    let b = ObservabilityMatrix::try_compute_budgeted(&circuit, &InputDistribution::Uniform, 4, 50)
        .unwrap_err();
    assert_eq!(a, b);
    assert!(matches!(a, RelogicError::BddBudgetExceeded { .. }));
}
