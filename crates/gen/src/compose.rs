//! Circuit composition: embedding one circuit inside another.

use relogic_netlist::{Circuit, GateKind, NodeId};

/// Copies `src`'s logic into `dst`, binding `src`'s primary inputs (in
/// declaration order) to the given `dst` nodes. Returns the `dst` nodes
/// corresponding to `src`'s outputs, in declaration order.
///
/// Node names and output slots of `src` are *not* copied; the caller wires
/// the returned output nodes wherever it wants.
///
/// # Panics
///
/// Panics if `inputs.len() != src.input_count()`.
///
/// # Examples
///
/// ```
/// use relogic_gen::{embed, parity_tree};
/// use relogic_netlist::Circuit;
///
/// let mut big = Circuit::new("host");
/// let a = big.add_input("a");
/// let b = big.add_input("b");
/// let c = big.add_input("c");
/// let par = relogic_gen::parity_tree(3, 2);
/// let outs = embed(&mut big, &par, &[a, b, c]);
/// big.add_output("p", outs[0]);
/// assert_eq!(big.eval(&[true, true, false]), vec![false]);
/// ```
#[must_use]
pub fn embed(dst: &mut Circuit, src: &Circuit, inputs: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(
        inputs.len(),
        src.input_count(),
        "embedding needs {} bound inputs, got {}",
        src.input_count(),
        inputs.len()
    );
    let mut map: Vec<NodeId> = Vec::with_capacity(src.len());
    let mut next_input = 0usize;
    for (_, node) in src.iter() {
        let new_id = match node.kind() {
            GateKind::Input => {
                let bound = inputs[next_input];
                next_input += 1;
                bound
            }
            GateKind::Const(v) => dst.add_const(v),
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f.index()]).collect();
                dst.add_gate(kind, fanins).expect("embedded gate is valid")
            }
        };
        map.push(new_id);
    }
    src.outputs()
        .iter()
        .map(|o| map[o.node().index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ripple_carry_adder;

    #[test]
    fn embedded_adder_still_adds() {
        let mut host = Circuit::new("host");
        let ins: Vec<NodeId> = (0..9).map(|i| host.add_input(format!("x{i}"))).collect();
        let rca = ripple_carry_adder(4);
        let outs = embed(&mut host, &rca, &ins);
        for (i, &o) in outs.iter().enumerate() {
            host.add_output(format!("o{i}"), o);
        }
        // 7 + 9 + 1 = 17 -> sum 1 (LSB first 1000), cout 1
        let inputs = [
            true, true, true, false, // a = 7
            true, false, false, true, // b = 9
            true, // cin
        ];
        let out = host.eval(&inputs);
        assert_eq!(out, vec![true, false, false, false, true]);
    }

    #[test]
    fn embedding_twice_duplicates_logic() {
        let mut host = Circuit::new("host");
        let a = host.add_input("a");
        let b = host.add_input("b");
        let par = crate::parity_tree(2, 2);
        let o1 = embed(&mut host, &par, &[a, b]);
        let o2 = embed(&mut host, &par, &[a, b]);
        assert_ne!(o1[0], o2[0]);
        host.add_output("p1", o1[0]);
        host.add_output("p2", o2[0]);
        assert_eq!(host.eval(&[true, false]), vec![true, true]);
    }

    #[test]
    #[should_panic(expected = "embedding needs")]
    fn wrong_input_count_panics() {
        let mut host = Circuit::new("host");
        let a = host.add_input("a");
        let par = crate::parity_tree(3, 2);
        let _ = embed(&mut host, &par, &[a]);
    }
}
