//! Circuit generators, benchmark analogues, and synthesis transforms for
//! the `relogic` reliability-analysis suite.
//!
//! The DATE 2007 paper evaluates on ISCAS-85 / LGSynth'91 benchmark
//! netlists, which are not redistributable inside this repository. This
//! crate replaces them three ways:
//!
//! * [`generate`] — seeded random multi-level circuits with tunable size,
//!   depth, fanout, and XOR density.
//! * Structured blocks ([`ripple_carry_adder`], [`parity_tree`],
//!   [`mux_tree`], [`equality_comparator`], [`decoder`], [`sec_decoder`])
//!   with known functions, plus [`embed`] to compose them.
//! * [`suite`] — the ten Table 2 circuits as structural analogues, and the
//!   small example circuits of the paper's Figs. 1 and 2.
//!
//! Transforms ([`buffer_fanout`], [`duplicate_fanout`], [`balance`],
//! [`expand_xor_to_nand`]) produce function-preserving structural variants
//! for the paper's fanout/depth design-space study (Fig. 8).
//!
//! # Examples
//!
//! ```
//! use relogic_gen::suite;
//!
//! let b9 = suite::b9();
//! assert_eq!(b9.gate_count(), 210);
//! let low_fanout = relogic_gen::duplicate_fanout(&b9, 2);
//! assert!(low_fanout.gate_count() > b9.gate_count());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod compose;
mod random;
mod redundancy;
mod structured;
pub mod suite;
mod transform;

pub use compose::embed;
pub use random::{generate, RandomCircuitConfig};
pub use redundancy::{majority_voter, tmr_gates, tmr_outputs, tmr_selected};
pub use structured::{
    decoder, equality_comparator, mux_tree, parity_tree, ripple_carry_adder, sec_decoder,
};
pub use transform::{
    balance, buffer_fanout, duplicate_fanout, expand_xor_to_and_or, expand_xor_to_nand,
};
