//! Seeded random multi-level circuit generation.
//!
//! The DATE 2007 benchmark netlists (ISCAS-85 / LGSynth'91) are not
//! redistributable inside this repository, so the suite in [`crate::suite`]
//! replaces them with *structural analogues*: deterministic random circuits
//! whose gate count, depth, fanout and reconvergence density are tuned to
//! match the originals. This module is the tunable generator behind those
//! analogues.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relogic_netlist::{Circuit, GateKind, NodeId};

/// Configuration for [`generate`].
///
/// # Examples
///
/// ```
/// use relogic_gen::RandomCircuitConfig;
///
/// let c = relogic_gen::generate(&RandomCircuitConfig {
///     name: "demo".into(),
///     inputs: 8,
///     gates: 40,
///     outputs: 4,
///     seed: 1,
///     ..RandomCircuitConfig::default()
/// });
/// assert_eq!(c.gate_count(), 40);
/// assert_eq!(c.output_count(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct RandomCircuitConfig {
    /// Model name for the generated circuit.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of logic gates.
    pub gates: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// RNG seed; the same configuration always generates the same circuit.
    pub seed: u64,
    /// Maximum gate arity (2..=6 recommended; weight vectors grow as 2^k).
    pub max_arity: usize,
    /// Fraction of gates drawn from the XOR/XNOR family (raises
    /// reconvergence sensitivity, like the ISCAS parity circuits).
    pub xor_fraction: f64,
    /// Locality window: fanins are preferentially drawn from the most
    /// recent `locality` nodes. Small windows make deep, chain-like logic;
    /// large windows make shallow, wide logic.
    pub locality: usize,
    /// Fraction of fanin choices that ignore the locality window and pick
    /// any earlier node — the knob controlling long reconvergent paths.
    pub global_edge_fraction: f64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            name: "random".into(),
            inputs: 8,
            gates: 32,
            outputs: 4,
            seed: 0xC1DC_0DE5,
            max_arity: 3,
            xor_fraction: 0.15,
            locality: 24,
            global_edge_fraction: 0.2,
        }
    }
}

/// Generates a random multi-level combinational circuit.
///
/// Gates are appended in topological order with fanins drawn from a
/// locality-biased window, so the result has ISCAS-like depth and
/// reconvergence rather than the flat two-level shape naive generators
/// produce. Outputs are assigned preferentially to *sink* nodes (nodes with
/// no logic readers), so little logic is dead.
///
/// # Panics
///
/// Panics if the configuration is degenerate (no inputs, no gates, zero
/// arity, or more outputs than nodes).
#[must_use]
pub fn generate(config: &RandomCircuitConfig) -> Circuit {
    assert!(config.inputs > 0, "need at least one input");
    assert!(config.gates > 0, "need at least one gate");
    assert!(
        (2..=6).contains(&config.max_arity),
        "max_arity out of 2..=6"
    );
    assert!(
        config.outputs > 0 && config.outputs <= config.gates,
        "outputs must be in 1..=gates"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut c = Circuit::new(config.name.clone());
    for i in 0..config.inputs {
        c.add_input(format!("pi{i}"));
    }

    let pick_fanin = |rng: &mut SmallRng, len: usize| -> NodeId {
        let idx = if rng.gen_bool(config.global_edge_fraction.clamp(0.0, 1.0))
            || len <= config.locality
        {
            rng.gen_range(0..len)
        } else {
            rng.gen_range(len - config.locality..len)
        };
        NodeId::from_index(idx)
    };

    for _ in 0..config.gates {
        let len = c.len();
        let kind = random_kind(&mut rng, config.xor_fraction);
        let arity = match kind {
            GateKind::Not | GateKind::Buf => 1,
            _ => rng.gen_range(2..=config.max_arity),
        };
        let mut fanins = Vec::with_capacity(arity);
        for _ in 0..arity {
            fanins.push(pick_fanin(&mut rng, len));
        }
        c.add_gate(kind, fanins).expect("generated gate is valid");
    }

    // Prefer sink gates as outputs so the circuit has little dead logic.
    let fan = relogic_netlist::structure::FanoutMap::build(&c);
    let mut sinks: Vec<NodeId> = c
        .node_ids()
        .filter(|&id| c.node(id).kind().is_gate() && fan.logic_fanout(id) == 0)
        .collect();
    let mut chosen: Vec<NodeId> = Vec::with_capacity(config.outputs);
    while chosen.len() < config.outputs && !sinks.is_empty() {
        let i = rng.gen_range(0..sinks.len());
        chosen.push(sinks.swap_remove(i));
    }
    // Top up with random distinct gates if there were fewer sinks than
    // requested outputs.
    let gate_ids: Vec<NodeId> = c
        .node_ids()
        .filter(|&id| c.node(id).kind().is_gate())
        .collect();
    while chosen.len() < config.outputs {
        let id = gate_ids[rng.gen_range(0..gate_ids.len())];
        if !chosen.contains(&id) {
            chosen.push(id);
        }
    }
    chosen.sort_unstable();
    for (k, id) in chosen.into_iter().enumerate() {
        c.add_output(format!("po{k}"), id);
    }
    c
}

fn random_kind(rng: &mut SmallRng, xor_fraction: f64) -> GateKind {
    if rng.gen_bool(xor_fraction.clamp(0.0, 1.0)) {
        if rng.gen_bool(0.5) {
            GateKind::Xor
        } else {
            GateKind::Xnor
        }
    } else {
        match rng.gen_range(0..6) {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            3 => GateKind::Nor,
            4 => GateKind::Not,
            _ => {
                if rng.gen_bool(0.5) {
                    GateKind::And
                } else {
                    GateKind::Or
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic_netlist::structure::CircuitStats;

    fn config() -> RandomCircuitConfig {
        RandomCircuitConfig {
            inputs: 10,
            gates: 100,
            outputs: 8,
            seed: 42,
            ..RandomCircuitConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c1 = generate(&config());
        let c2 = generate(&config());
        assert_eq!(c1.len(), c2.len());
        for (a, b) in c1.iter().zip(c2.iter()) {
            assert_eq!(a.1.kind(), b.1.kind());
            assert_eq!(a.1.fanins(), b.1.fanins());
        }
        // Different seed ⇒ different structure (overwhelmingly likely).
        let c3 = generate(&RandomCircuitConfig {
            seed: 43,
            ..config()
        });
        let differs = c1
            .iter()
            .zip(c3.iter())
            .any(|(a, b)| a.1.kind() != b.1.kind() || a.1.fanins() != b.1.fanins());
        assert!(differs);
    }

    #[test]
    fn stats_match_request() {
        let c = generate(&config());
        let s = CircuitStats::of(&c);
        assert_eq!(s.inputs, 10);
        assert_eq!(s.gates, 100);
        assert_eq!(s.outputs, 8);
        assert!(
            s.depth > 2,
            "expected multi-level logic, got depth {}",
            s.depth
        );
        assert!(
            s.stems > 5,
            "expected reconvergent fanout, got {} stems",
            s.stems
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn outputs_prefer_sinks() {
        let c = generate(&config());
        let fan = relogic_netlist::structure::FanoutMap::build(&c);
        let dangling = fan.dangling_nodes();
        // All sinks should be observed if there were enough output slots.
        assert!(
            dangling.len() < 20,
            "too much dead logic: {} dangling nodes",
            dangling.len()
        );
    }

    #[test]
    fn locality_controls_depth() {
        let deep = generate(&RandomCircuitConfig {
            locality: 4,
            global_edge_fraction: 0.0,
            ..config()
        });
        let shallow = generate(&RandomCircuitConfig {
            locality: 1000,
            global_edge_fraction: 0.0,
            ..config()
        });
        assert!(
            CircuitStats::of(&deep).depth > CircuitStats::of(&shallow).depth,
            "small locality window should create deeper logic"
        );
    }

    #[test]
    fn evaluates_without_panicking() {
        let c = generate(&config());
        let inputs = vec![true; c.input_count()];
        let out = c.eval(&inputs);
        assert_eq!(out.len(), c.output_count());
    }

    #[test]
    #[should_panic(expected = "outputs must be in")]
    fn degenerate_config_rejected() {
        let _ = generate(&RandomCircuitConfig {
            outputs: 0,
            ..config()
        });
    }
}
