//! Classic redundancy-insertion schemes: triple modular redundancy at the
//! output and gate level.
//!
//! The paper positions its analysis as the tool that *directs* redundancy
//! insertion (§5.1: "introduce redundancy at selected gates, instead of
//! introducing redundancy at every gate"). These transforms provide the
//! redundancy side of that loop, in the tradition of von Neumann's
//! multiplexing/majority constructions (the paper's reference [3]): apply a
//! scheme, then quantify it with the `relogic` analysis or Monte Carlo.
//!
//! Note the classic threshold behaviour these enable you to observe: TMR
//! *improves* reliability when ε is small (double faults are rare) and
//! *degrades* it beyond the crossover where the extra noisy gates — voters
//! included — dominate.

use relogic_netlist::{Circuit, GateKind, NodeId};

/// Adds a 2-level AND-OR majority voter `maj(a, b, c)` to `circuit`.
///
/// # Examples
///
/// ```
/// use relogic_gen::majority_voter;
/// use relogic_netlist::Circuit;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let x = c.add_input("x");
/// let m = majority_voter(&mut c, a, b, x);
/// c.add_output("m", m);
/// assert_eq!(c.eval(&[true, true, false]), vec![true]);
/// assert_eq!(c.eval(&[false, true, false]), vec![false]);
/// ```
pub fn majority_voter(circuit: &mut Circuit, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
    let ab = circuit.and([a, b]);
    let ac = circuit.and([a, c]);
    let bc = circuit.and([b, c]);
    let t = circuit.or([ab, ac]);
    circuit.or([t, bc])
}

/// Output-level triple modular redundancy: the whole logic network is
/// instantiated three times (sharing the primary inputs) and each primary
/// output is produced by a majority voter over the three copies.
///
/// The result has `3·gates + 5·outputs` gates and computes the same
/// function.
#[must_use]
pub fn tmr_outputs(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(format!("{}_tmr", circuit.name()));
    let inputs: Vec<NodeId> = circuit
        .inputs()
        .iter()
        .map(|&i| {
            out.try_add_input(circuit.display_name(i))
                .expect("unique input names")
        })
        .collect();
    let mut replicas: Vec<Vec<NodeId>> = Vec::with_capacity(3);
    for _ in 0..3 {
        let mut map: Vec<NodeId> = Vec::with_capacity(circuit.len());
        let mut next_input = 0usize;
        for (_, node) in circuit.iter() {
            let new_id = match node.kind() {
                GateKind::Input => {
                    let id = inputs[next_input];
                    next_input += 1;
                    id
                }
                GateKind::Const(v) => out.add_const(v),
                kind => {
                    let fanins: Vec<NodeId> =
                        node.fanins().iter().map(|f| map[f.index()]).collect();
                    out.add_gate(kind, fanins).expect("valid gate")
                }
            };
            map.push(new_id);
        }
        replicas.push(map);
    }
    for o in circuit.outputs() {
        let i = o.node().index();
        let m = majority_voter(&mut out, replicas[0][i], replicas[1][i], replicas[2][i]);
        out.add_output(o.name(), m);
    }
    out
}

/// Gate-level triple modular redundancy: every gate is triplicated and
/// immediately followed by a majority voter; downstream gates read the
/// voted value. Much larger (`≈ 8×` the gates) but corrects errors locally
/// before they propagate.
#[must_use]
pub fn tmr_gates(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(format!("{}_gtmr", circuit.name()));
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.len());
    for (id, node) in circuit.iter() {
        let new_id = match node.kind() {
            GateKind::Input => out
                .try_add_input(circuit.display_name(id))
                .expect("unique input names"),
            GateKind::Const(v) => out.add_const(v),
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f.index()]).collect();
                let c1 = out.add_gate(kind, fanins.iter().copied()).expect("valid");
                let c2 = out.add_gate(kind, fanins.iter().copied()).expect("valid");
                let c3 = out.add_gate(kind, fanins).expect("valid");
                majority_voter(&mut out, c1, c2, c3)
            }
        };
        map.push(new_id);
    }
    for o in circuit.outputs() {
        out.add_output(o.name(), map[o.node().index()]);
    }
    out
}

/// Selective gate-level TMR: only the listed gates are triplicated and
/// voted; everything else is copied unchanged. Combine with
/// `relogic::applications::selective_hardening`-style rankings to protect
/// the most critical gates first (§5.1's "fine-grained insertion").
///
/// Node ids in `protect` refer to the *original* circuit; non-gate ids are
/// ignored.
#[must_use]
pub fn tmr_selected(circuit: &Circuit, protect: &[NodeId]) -> Circuit {
    let mut out = Circuit::new(format!("{}_stmr", circuit.name()));
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.len());
    for (id, node) in circuit.iter() {
        let new_id = match node.kind() {
            GateKind::Input => out
                .try_add_input(circuit.display_name(id))
                .expect("unique input names"),
            GateKind::Const(v) => out.add_const(v),
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f.index()]).collect();
                if protect.contains(&id) {
                    let c1 = out.add_gate(kind, fanins.iter().copied()).expect("valid");
                    let c2 = out.add_gate(kind, fanins.iter().copied()).expect("valid");
                    let c3 = out.add_gate(kind, fanins).expect("valid");
                    majority_voter(&mut out, c1, c2, c3)
                } else {
                    out.add_gate(kind, fanins).expect("valid")
                }
            }
        };
        map.push(new_id);
    }
    for o in circuit.outputs() {
        out.add_output(o.name(), map[o.node().index()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic_sim::exact_reliability;

    fn sample() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let g1 = c.nand([a, b]);
        let g2 = c.xor([g1, x]);
        c.add_output("y", g2);
        c
    }

    fn uniform_eps(c: &Circuit, e: f64) -> Vec<f64> {
        c.iter()
            .map(|(_, n)| if n.kind().is_gate() { e } else { 0.0 })
            .collect()
    }

    fn equivalent(a: &Circuit, b: &Circuit) -> bool {
        (0..1usize << a.input_count()).all(|v| {
            let bits: Vec<bool> = (0..a.input_count()).map(|j| v >> j & 1 != 0).collect();
            a.eval(&bits) == b.eval(&bits)
        })
    }

    #[test]
    fn majority_truth_table() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let m = majority_voter(&mut c, a, b, x);
        c.add_output("m", m);
        for v in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|j| v >> j & 1 != 0).collect();
            let expect = bits.iter().filter(|&&q| q).count() >= 2;
            assert_eq!(c.eval(&bits), vec![expect], "{v:03b}");
        }
    }

    #[test]
    fn tmr_variants_preserve_function() {
        let c = sample();
        assert!(equivalent(&c, &tmr_outputs(&c)));
        assert!(equivalent(&c, &tmr_gates(&c)));
        let some = vec![relogic_netlist::NodeId::from_index(3)];
        assert!(equivalent(&c, &tmr_selected(&c, &some)));
    }

    #[test]
    fn tmr_sizes() {
        let c = sample();
        assert_eq!(tmr_outputs(&c).gate_count(), 3 * c.gate_count() + 5);
        assert_eq!(tmr_gates(&c).gate_count(), 8 * c.gate_count());
        let none = tmr_selected(&c, &[]);
        assert_eq!(none.gate_count(), c.gate_count());
    }

    #[test]
    fn tmr_on_tiny_circuits_is_counterproductive() {
        // With voters as noisy as the logic, protecting a 2-gate circuit
        // only *adds* noisy gates at the output — the analysis must show
        // TMR losing here. (This is the §5.1 motivation for *selective*,
        // analysis-directed insertion instead of blanket redundancy.)
        let c = sample();
        let t = tmr_outputs(&c);
        let e = 0.005;
        let plain = exact_reliability(&c, &uniform_eps(&c, e)).per_output[0];
        let tmr = exact_reliability(&t, &uniform_eps(&t, e)).per_output[0];
        assert!(tmr > plain, "tmr {tmr} vs plain {plain}");
    }

    #[test]
    fn tmr_helps_when_logic_dominates_voters() {
        // A 12-gate XOR chain accumulates δ ≈ 12ε; triplicating it and
        // paying ~5 voter gates is a large net win at small ε.
        let mut c = Circuit::new("chain");
        let ins: Vec<_> = (0..13).map(|i| c.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = c.xor([acc, i]);
        }
        c.add_output("y", acc);
        let t = tmr_outputs(&c);
        let e = 0.003;
        let cfg = relogic_sim::MonteCarloConfig {
            patterns: 1 << 19,
            ..Default::default()
        };
        let plain = relogic_sim::estimate(&c, &uniform_eps(&c, e), &cfg).per_output()[0];
        let tmr = relogic_sim::estimate(&t, &uniform_eps(&t, e), &cfg).per_output()[0];
        assert!(
            tmr < 0.5 * plain,
            "at ε={e}: tmr {tmr} should be well under plain {plain}"
        );
    }

    #[test]
    fn selective_tmr_protects_weak_gates() {
        // One gate is 15× noisier than the rest; protecting just that gate
        // with TMR (noisy voters included) must beat the unprotected
        // circuit.
        let c = sample();
        let weak = relogic_netlist::NodeId::from_index(3); // the NAND
        let eps_of = |circ: &Circuit, weak_ids: &[relogic_netlist::NodeId]| -> Vec<f64> {
            circ.iter()
                .map(|(id, n)| {
                    if !n.kind().is_gate() {
                        0.0
                    } else if weak_ids.contains(&id) {
                        0.15
                    } else {
                        0.01
                    }
                })
                .collect()
        };
        let plain = exact_reliability(&c, &eps_of(&c, &[weak])).per_output[0];
        let sel = tmr_selected(&c, &[weak]);
        // In the selected circuit the three replicas of the weak gate are
        // nodes 3, 4, 5 (same construction order).
        let weak_copies = [
            relogic_netlist::NodeId::from_index(3),
            relogic_netlist::NodeId::from_index(4),
            relogic_netlist::NodeId::from_index(5),
        ];
        let sel_delta = exact_reliability(&sel, &eps_of(&sel, &weak_copies)).per_output[0];
        assert!(sel_delta < plain, "selective {sel_delta} vs plain {plain}");
    }
}
