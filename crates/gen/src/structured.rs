//! Structured circuit generators: arithmetic, parity, selection and
//! error-correction blocks with known functions and ISCAS-like structure.
//!
//! These are the building blocks of the benchmark analogues in
//! [`crate::suite`] and make handy, well-understood test subjects for the
//! reliability engines (e.g. a parity tree has observability exactly 1 at
//! every gate).

use relogic_netlist::{Circuit, NodeId};

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..` and `cout`.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Examples
///
/// ```
/// let c = relogic_gen::ripple_carry_adder(4);
/// assert_eq!(c.input_count(), 9);
/// assert_eq!(c.output_count(), 5);
/// // 3 + 5 = 8: a=0011, b=0101 (LSB first), cin=0
/// let out = c.eval(&[true, true, false, false, true, false, true, false, false]);
/// assert_eq!(out, vec![false, false, false, true, false]); // s=0001(=8 LSB first), cout=0
/// ```
#[must_use]
pub fn ripple_carry_adder(bits: usize) -> Circuit {
    assert!(bits > 0);
    let mut c = Circuit::new(format!("rca{bits}"));
    let a: Vec<NodeId> = (0..bits).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..bits).map(|i| c.add_input(format!("b{i}"))).collect();
    let mut carry = c.add_input("cin");
    let mut sums = Vec::with_capacity(bits);
    for i in 0..bits {
        let axb = c.xor([a[i], b[i]]);
        let sum = c.xor([axb, carry]);
        let and1 = c.and([a[i], b[i]]);
        let and2 = c.and([axb, carry]);
        carry = c.or([and1, and2]);
        sums.push(sum);
    }
    for (i, s) in sums.into_iter().enumerate() {
        c.add_output(format!("s{i}"), s);
    }
    c.add_output("cout", carry);
    c
}

/// A balanced parity (XOR) tree over `inputs` inputs with gates of the given
/// `arity`. Output `parity` is the odd parity of all inputs.
///
/// # Panics
///
/// Panics if `inputs == 0` or `arity < 2`.
#[must_use]
pub fn parity_tree(inputs: usize, arity: usize) -> Circuit {
    assert!(inputs > 0 && arity >= 2);
    let mut c = Circuit::new(format!("parity{inputs}"));
    let mut layer: Vec<NodeId> = (0..inputs).map(|i| c.add_input(format!("x{i}"))).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(arity));
        for chunk in layer.chunks(arity) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(c.xor(chunk.iter().copied()));
            }
        }
        layer = next;
    }
    c.add_output("parity", layer[0]);
    c
}

/// A `2^select`-to-1 multiplexer tree: inputs `d0..` (data) then `s0..`
/// (select, LSB first); output `y`.
///
/// # Panics
///
/// Panics if `select == 0` or `select > 6`.
#[must_use]
pub fn mux_tree(select: usize) -> Circuit {
    assert!((1..=6).contains(&select));
    let mut c = Circuit::new(format!("mux{}", 1 << select));
    let data: Vec<NodeId> = (0..1usize << select)
        .map(|i| c.add_input(format!("d{i}")))
        .collect();
    let sel: Vec<NodeId> = (0..select).map(|i| c.add_input(format!("s{i}"))).collect();
    let mut layer = data;
    for (level, &s) in sel.iter().enumerate() {
        let ns = c.not(s);
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            let t0 = c.and([ns, pair[0]]);
            let t1 = c.and([s, pair[1]]);
            next.push(c.or([t0, t1]));
        }
        debug_assert_eq!(next.len(), layer.len() >> 1, "level {level}");
        layer = next;
    }
    c.add_output("y", layer[0]);
    c
}

/// An `n`-bit equality comparator: output `eq` is 1 iff `a == b`.
///
/// # Panics
///
/// Panics if `bits == 0`.
#[must_use]
pub fn equality_comparator(bits: usize) -> Circuit {
    assert!(bits > 0);
    let mut c = Circuit::new(format!("eq{bits}"));
    let a: Vec<NodeId> = (0..bits).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..bits).map(|i| c.add_input(format!("b{i}"))).collect();
    let eqs: Vec<NodeId> = (0..bits).map(|i| c.xnor([a[i], b[i]])).collect();
    // AND-tree over the bit equalities.
    let mut layer = eqs;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for chunk in layer.chunks(2) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(c.and([chunk[0], chunk[1]]));
            }
        }
        layer = next;
    }
    c.add_output("eq", layer[0]);
    c
}

/// An `n`-to-`2^n` one-hot decoder with enable: inputs `a0..` and `en`;
/// outputs `y0..`.
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 6`.
#[must_use]
pub fn decoder(bits: usize) -> Circuit {
    assert!((1..=6).contains(&bits));
    let mut c = Circuit::new(format!("dec{bits}"));
    let a: Vec<NodeId> = (0..bits).map(|i| c.add_input(format!("a{i}"))).collect();
    let en = c.add_input("en");
    let na: Vec<NodeId> = a.iter().map(|&x| c.not(x)).collect();
    for v in 0..1usize << bits {
        let mut terms: Vec<NodeId> = (0..bits)
            .map(|j| if v >> j & 1 == 1 { a[j] } else { na[j] })
            .collect();
        terms.push(en);
        let y = c.and(terms);
        c.add_output(format!("y{v}"), y);
    }
    c
}

/// A Hamming-style single-error-correcting (SEC) decode lattice over
/// `data_bits` data inputs and `check_bits` check inputs — the structural
/// family of ISCAS-85 c499/c1355 ("32-bit single-error-correcting circuit").
///
/// The syndrome is recomputed from the received data and compared with the
/// received check bits; each data output is the received bit XOR-corrected
/// when the syndrome points at it. The result is XOR-dominated with heavy
/// reconvergent fanout (every data bit feeds several syndrome trees, and
/// every syndrome bit reaches every output), which is exactly what makes
/// c499/c1355 the hardest Table 2 circuits for the single-pass analysis.
///
/// # Panics
///
/// Panics if `check_bits < 2`, `check_bits > 6`, or `data_bits` exceeds the
/// `2^check_bits − check_bits − 1` bits the code can address.
#[must_use]
pub fn sec_decoder(data_bits: usize, check_bits: usize) -> Circuit {
    assert!((2..=6).contains(&check_bits));
    let capacity = (1usize << check_bits) - check_bits - 1;
    assert!(
        data_bits >= 1 && data_bits <= capacity,
        "{check_bits} check bits address at most {capacity} data bits"
    );
    let mut c = Circuit::new(format!("sec{data_bits}_{check_bits}"));
    let data: Vec<NodeId> = (0..data_bits)
        .map(|i| c.add_input(format!("d{i}")))
        .collect();
    let check: Vec<NodeId> = (0..check_bits)
        .map(|i| c.add_input(format!("p{i}")))
        .collect();

    // Assign each data bit a distinct non-power-of-two codeword position.
    let positions: Vec<usize> = (3..)
        .filter(|p: &usize| !p.is_power_of_two())
        .take(data_bits)
        .collect();

    // Recompute each parity from data bits whose position has that bit set,
    // then XOR with the received check bit to form the syndrome.
    let mut syndrome = Vec::with_capacity(check_bits);
    #[allow(clippy::needless_range_loop)]
    for j in 0..check_bits {
        let members: Vec<NodeId> = positions
            .iter()
            .zip(&data)
            .filter(|(p, _)| *p >> j & 1 == 1)
            .map(|(_, &d)| d)
            .collect();
        // Balanced XOR tree over the members.
        let mut layer = members;
        let recomputed = loop {
            if layer.len() == 1 {
                break layer[0];
            }
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(c.xor([chunk[0], chunk[1]]));
                }
            }
            layer = next;
        };
        let s = c.xor([recomputed, check[j]]);
        syndrome.push(s);
    }
    let nsyndrome: Vec<NodeId> = syndrome.iter().map(|&s| c.not(s)).collect();

    // Correct each data bit: flip it when the syndrome equals its position.
    for (i, (&pos, &d)) in positions.iter().zip(&data).enumerate() {
        let match_terms: Vec<NodeId> = (0..check_bits)
            .map(|j| {
                if pos >> j & 1 == 1 {
                    syndrome[j]
                } else {
                    nsyndrome[j]
                }
            })
            .collect();
        let hit = c.and(match_terms);
        let corrected = c.xor([d, hit]);
        c.add_output(format!("q{i}"), corrected);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of(v: usize, n: usize) -> Vec<bool> {
        (0..n).map(|j| v >> j & 1 != 0).collect()
    }

    #[test]
    fn adder_adds() {
        let c = ripple_carry_adder(4);
        for a in 0..16usize {
            for b in 0..16usize {
                for cin in 0..2usize {
                    let mut inputs = bits_of(a, 4);
                    inputs.extend(bits_of(b, 4));
                    inputs.push(cin == 1);
                    let out = c.eval(&inputs);
                    let sum = a + b + cin;
                    for (i, &o) in out.iter().take(4).enumerate() {
                        assert_eq!(o, sum >> i & 1 != 0, "{a}+{b}+{cin} bit {i}");
                    }
                    assert_eq!(out[4], sum >= 16, "{a}+{b}+{cin} carry");
                }
            }
        }
    }

    #[test]
    fn parity_tree_computes_parity() {
        for &(n, arity) in &[(5usize, 2usize), (8, 3), (16, 2)] {
            let c = parity_tree(n, arity);
            for trial in [0usize, 1, 3, (1 << n) - 1, 0b1010 % (1 << n)] {
                let inputs = bits_of(trial, n);
                let expect = trial.count_ones() % 2 == 1;
                assert_eq!(
                    c.eval(&inputs),
                    vec![expect],
                    "n={n} arity={arity} v={trial:b}"
                );
            }
        }
    }

    #[test]
    fn mux_selects() {
        let c = mux_tree(3);
        for sel in 0..8usize {
            for data in [0usize, 0xFF, 0xA5, 1 << sel] {
                let mut inputs = bits_of(data, 8);
                inputs.extend(bits_of(sel, 3));
                let expect = data >> sel & 1 != 0;
                assert_eq!(c.eval(&inputs), vec![expect], "sel={sel} data={data:08b}");
            }
        }
    }

    #[test]
    fn comparator_compares() {
        let c = equality_comparator(4);
        for a in 0..16usize {
            for b in [a, (a + 1) % 16, a ^ 0b1000] {
                let mut inputs = bits_of(a, 4);
                inputs.extend(bits_of(b, 4));
                assert_eq!(c.eval(&inputs), vec![a == b], "{a} vs {b}");
            }
        }
    }

    #[test]
    fn decoder_decodes() {
        let c = decoder(3);
        for v in 0..8usize {
            let mut inputs = bits_of(v, 3);
            inputs.push(true);
            let out = c.eval(&inputs);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, i == v, "v={v} line {i}");
            }
            // enable low: all outputs low
            let mut inputs = bits_of(v, 3);
            inputs.push(false);
            assert!(c.eval(&inputs).iter().all(|&o| !o));
        }
    }

    #[test]
    fn sec_decoder_corrects_single_data_errors() {
        let data_bits = 8;
        let check_bits = 4;
        let c = sec_decoder(data_bits, check_bits);
        let positions: Vec<usize> = (3..)
            .filter(|p: &usize| !p.is_power_of_two())
            .take(data_bits)
            .collect();
        let encode = |data: usize| -> Vec<bool> {
            // compute check bits matching the decoder's parity trees
            (0..check_bits)
                .map(|j| {
                    positions
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| *p >> j & 1 == 1)
                        .fold(false, |acc, (i, _)| acc ^ (data >> i & 1 != 0))
                })
                .collect()
        };
        for data in [0usize, 0b1011_0010, 0xFF, 0x01] {
            let checks = encode(data);
            // No error: outputs reproduce the data.
            let mut inputs = bits_of(data, data_bits);
            inputs.extend(&checks);
            let out = c.eval(&inputs);
            for (i, &o) in out.iter().enumerate().take(data_bits) {
                assert_eq!(o, data >> i & 1 != 0, "clean data {data:08b} bit {i}");
            }
            // Single data-bit error: corrected.
            for flip in 0..data_bits {
                let corrupted = data ^ (1 << flip);
                let mut inputs = bits_of(corrupted, data_bits);
                inputs.extend(&checks);
                let out = c.eval(&inputs);
                for (i, &o) in out.iter().enumerate().take(data_bits) {
                    assert_eq!(
                        o,
                        data >> i & 1 != 0,
                        "data {data:08b} flipped bit {flip}, output bit {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn sec_decoder_is_reconvergence_heavy() {
        let c = sec_decoder(16, 5);
        let stats = relogic_netlist::structure::CircuitStats::of(&c);
        assert!(
            stats.stems >= 16,
            "expected many stems, got {}",
            stats.stems
        );
        let hist: std::collections::HashMap<_, _> = stats.kind_histogram.iter().copied().collect();
        assert!(hist["xor"] > hist.get("and").copied().unwrap_or(0));
    }

    #[test]
    #[should_panic(expected = "address at most")]
    fn sec_capacity_enforced() {
        let _ = sec_decoder(30, 4);
    }
}
