//! The DATE 2007 benchmark analogue suite.
//!
//! The paper evaluates on ISCAS-85 / LGSynth'91 netlists (x2, cu, b9, c499,
//! c1355, c1908, c2670, frg2, c3540, i10), which are not redistributable
//! here. This module builds deterministic *structural analogues*: circuits
//! with matched input/output counts, comparable gate counts, and the same
//! structural character (XOR-dominated reconvergence for c499/c1355,
//! ALU-style arithmetic for c3540, wide shallow control logic for frg2,
//! large deep cones for i10). The reliability algorithms' accuracy and
//! runtime behaviour depend on exactly these structural properties, so the
//! analogues reproduce the paper's *trends*; absolute per-circuit error
//! values necessarily differ from the originals. See `DESIGN.md` §3.
//!
//! Every builder is deterministic: repeated calls return identical
//! circuits.

use crate::{
    embed, equality_comparator, expand_xor_to_and_or, expand_xor_to_nand, generate, mux_tree,
    parity_tree, ripple_carry_adder, RandomCircuitConfig,
};
use relogic_netlist::{Circuit, NodeId};

/// Metadata describing one suite circuit and its paper counterpart.
#[derive(Clone, Copy, Debug)]
pub struct SuiteEntry {
    /// Benchmark name as used in the paper's Table 2.
    pub name: &'static str,
    /// Gate count the paper reports for the original netlist.
    pub paper_gates: usize,
    /// What the analogue reproduces structurally.
    pub character: &'static str,
    /// Builder for the analogue circuit.
    pub build: fn() -> Circuit,
}

/// All ten Table 2 circuits, in the paper's row order.
#[must_use]
pub fn entries() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "x2",
            paper_gates: 56,
            character: "small mixed control logic",
            build: x2,
        },
        SuiteEntry {
            name: "cu",
            paper_gates: 59,
            character: "small control logic, moderate fanout",
            build: cu,
        },
        SuiteEntry {
            name: "b9",
            paper_gates: 210,
            character: "medium control logic",
            build: b9,
        },
        SuiteEntry {
            name: "c499",
            paper_gates: 650,
            character: "32-bit single-error-correcting XOR lattice",
            build: c499,
        },
        SuiteEntry {
            name: "c1355",
            paper_gates: 653,
            character: "c499 with XORs expanded to NAND cells",
            build: c1355,
        },
        SuiteEntry {
            name: "c1908",
            paper_gates: 699,
            character: "parity-rich control logic",
            build: c1908,
        },
        SuiteEntry {
            name: "c2670",
            paper_gates: 756,
            character: "wide comparator/priority logic, many inputs",
            build: c2670,
        },
        SuiteEntry {
            name: "frg2",
            paper_gates: 1024,
            character: "wide-fanin logic with many outputs",
            build: frg2,
        },
        SuiteEntry {
            name: "c3540",
            paper_gates: 1466,
            character: "ALU: adder, logic unit, mux trees, parity",
            build: c3540,
        },
        SuiteEntry {
            name: "i10",
            paper_gates: 2643,
            character: "large mixed logic with deep output cones",
            build: i10,
        },
    ]
}

/// Builds a suite circuit by paper name.
#[must_use]
pub fn build(name: &str) -> Option<Circuit> {
    entries()
        .into_iter()
        .find(|e| e.name == name)
        .map(|e| (e.build)())
}

/// Analogue of LGSynth `x2` (10 inputs, 7 outputs, 56 gates).
#[must_use]
pub fn x2() -> Circuit {
    generate(&RandomCircuitConfig {
        name: "x2_like".into(),
        inputs: 10,
        gates: 56,
        outputs: 7,
        seed: 0x0102,
        max_arity: 3,
        xor_fraction: 0.10,
        locality: 20,
        global_edge_fraction: 0.30,
    })
}

/// Analogue of LGSynth `cu` (14 inputs, 11 outputs, 59 gates).
#[must_use]
pub fn cu() -> Circuit {
    generate(&RandomCircuitConfig {
        name: "cu_like".into(),
        inputs: 14,
        gates: 59,
        outputs: 11,
        seed: 0x0CC0,
        max_arity: 3,
        xor_fraction: 0.08,
        locality: 24,
        global_edge_fraction: 0.30,
    })
}

/// Analogue of LGSynth `b9` (41 inputs, 21 outputs, 210 gates).
///
/// This is the paper's workhorse: Figs. 1(c), 5 and 8 all study b9.
#[must_use]
pub fn b9() -> Circuit {
    generate(&RandomCircuitConfig {
        name: "b9_like".into(),
        inputs: 41,
        gates: 210,
        outputs: 21,
        seed: 0x00B9,
        max_arity: 3,
        xor_fraction: 0.05,
        locality: 36,
        global_edge_fraction: 0.30,
    })
}

/// Shared core of the c499/c1355 analogues: a 32-bit single-error-
/// correcting decode lattice over 8 check bits, with an overall
/// double-error-detect parity gating the correction — all in 2-input
/// XOR/AND form, like the expanded ISCAS originals.
fn sec32() -> Circuit {
    let data_bits = 32usize;
    let check_bits = 8usize;
    let mut c = Circuit::new("c499_like");
    let data: Vec<NodeId> = (0..data_bits)
        .map(|i| c.add_input(format!("d{i}")))
        .collect();
    let check: Vec<NodeId> = (0..check_bits)
        .map(|i| c.add_input(format!("p{i}")))
        .collect();
    let en = c.add_input("en");

    // Codeword positions: distinct 8-bit values with 3 or 4 bits set,
    // sampled evenly across the whole range so every one of the 8 parity
    // trees has members (the smallest such values never set the high bits).
    let qualifying: Vec<usize> = (3..256)
        .filter(|p: &usize| {
            let ones = p.count_ones();
            ones == 4 || ones == 5
        })
        .collect();
    let positions: Vec<usize> = (0..data_bits)
        .map(|i| qualifying[i * qualifying.len() / data_bits])
        .collect();

    let xor_tree = |c: &mut Circuit, mut layer: Vec<NodeId>| -> NodeId {
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(c.xor([chunk[0], chunk[1]]));
                }
            }
            layer = next;
        }
        layer[0]
    };

    // Syndrome: recomputed parity XOR received check bit.
    let mut syndrome = Vec::with_capacity(check_bits);
    #[allow(clippy::needless_range_loop)]
    for j in 0..check_bits {
        let members: Vec<NodeId> = positions
            .iter()
            .zip(&data)
            .filter(|(p, _)| *p >> j & 1 == 1)
            .map(|(_, &d)| d)
            .collect();
        let recomputed = xor_tree(&mut c, members);
        syndrome.push(c.xor([recomputed, check[j]]));
    }
    let nsyndrome: Vec<NodeId> = syndrome.iter().map(|&s| c.not(s)).collect();

    // Overall parity across data and check bits: odd for single errors.
    let mut all: Vec<NodeId> = data.clone();
    all.extend(&check);
    let overall = xor_tree(&mut c, all);
    let correct_enable = c.and([overall, en]);

    // Shared two-level decode: 4 minterms per syndrome bit-pair, reused by
    // every output's match tree (this sharing is what creates the heavy
    // reconvergent fanout characteristic of the real c499).
    let pair_count = check_bits / 2;
    let mut minterms: Vec<[NodeId; 4]> = Vec::with_capacity(pair_count);
    for p in 0..pair_count {
        let (j0, j1) = (2 * p, 2 * p + 1);
        let mut row = [syndrome[0]; 4];
        for (v, slot) in row.iter_mut().enumerate() {
            let l0 = if v & 1 == 1 {
                syndrome[j0]
            } else {
                nsyndrome[j0]
            };
            let l1 = if v & 2 == 2 {
                syndrome[j1]
            } else {
                nsyndrome[j1]
            };
            *slot = c.and([l0, l1]);
        }
        minterms.push(row);
    }

    // Per-output correction: flip when the syndrome matches the position
    // and correction is enabled.
    for (i, (&pos, &d)) in positions.iter().zip(&data).enumerate() {
        let mut layer: Vec<NodeId> = (0..pair_count)
            .map(|p| minterms[p][pos >> (2 * p) & 3])
            .collect();
        layer.push(correct_enable);
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(c.and([chunk[0], chunk[1]]));
                }
            }
            layer = next;
        }
        let corrected = c.xor([d, layer[0]]);
        c.add_output(format!("q{i}"), corrected);
    }
    c
}

/// Analogue of ISCAS-85 `c499` (41 inputs, 32 outputs): XOR-dominated SEC
/// lattice with heavy reconvergent fanout — the paper's hardest accuracy
/// case (12.16% average error at ε = 0.05).
#[must_use]
pub fn c499() -> Circuit {
    // The paper's 650-gate c499 is the decomposed form of the SEC lattice;
    // expanding each XOR into its 3-gate AND-OR cell reproduces both the
    // size and the dense local reconvergence that makes it the hardest
    // accuracy case in Table 2.
    let mut c = expand_xor_to_and_or(&sec32());
    c.set_name("c499_like");
    c
}

/// Analogue of ISCAS-85 `c1355`: the same function as [`c499`] with every
/// XOR expanded into a 4-NAND cell, mirroring how the real c1355 relates to
/// the real c499.
#[must_use]
pub fn c1355() -> Circuit {
    let mut c = expand_xor_to_nand(&sec32());
    c.set_name("c1355_like");
    c
}

/// Analogue of ISCAS-85 `c1908` (33 inputs, 25 outputs): parity-rich
/// control logic.
#[must_use]
pub fn c1908() -> Circuit {
    generate(&RandomCircuitConfig {
        name: "c1908_like".into(),
        inputs: 33,
        gates: 699,
        outputs: 25,
        seed: 0x1908,
        max_arity: 3,
        xor_fraction: 0.30,
        locality: 60,
        global_edge_fraction: 0.20,
    })
}

/// Analogue of ISCAS-85 `c2670` (157 inputs, 64 outputs): wide logic with
/// comparator structure and many primary inputs.
#[must_use]
pub fn c2670() -> Circuit {
    let mut c = generate(&RandomCircuitConfig {
        name: "c2670_like".into(),
        inputs: 157,
        gates: 700,
        outputs: 60,
        seed: 0x2670,
        max_arity: 4,
        xor_fraction: 0.08,
        locality: 80,
        global_edge_fraction: 0.15,
    });
    // Graft comparator banks over input pairs, ISCAS c2670's signature.
    let ins: Vec<NodeId> = c.inputs().to_vec();
    for k in 0..4 {
        let cmp = equality_comparator(8);
        let slice: Vec<NodeId> = ins[k * 16..(k + 1) * 16].to_vec();
        let outs = embed(&mut c, &cmp, &slice);
        c.add_output(format!("cmp{k}"), outs[0]);
    }
    c
}

/// Analogue of LGSynth `frg2` (143 inputs, 139 outputs, 1024 gates): wide,
/// shallow, many-output control logic.
#[must_use]
pub fn frg2() -> Circuit {
    generate(&RandomCircuitConfig {
        name: "frg2_like".into(),
        inputs: 143,
        gates: 1024,
        outputs: 139,
        seed: 0xF462,
        max_arity: 5,
        xor_fraction: 0.03,
        locality: 110,
        global_edge_fraction: 0.15,
    })
}

/// Analogue of ISCAS-85 `c3540` (50 inputs, 22 outputs): an ALU slice — an
/// 8-bit adder, a bitwise logic unit, operand-select mux trees and result
/// parity, glued with random control.
#[must_use]
pub fn c3540() -> Circuit {
    let mut c = Circuit::new("c3540_like");
    let a: Vec<NodeId> = (0..8).map(|i| c.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..8).map(|i| c.add_input(format!("b{i}"))).collect();
    let op: Vec<NodeId> = (0..2).map(|i| c.add_input(format!("op{i}"))).collect();
    let cin = c.add_input("cin");
    let misc: Vec<NodeId> = (0..31).map(|i| c.add_input(format!("m{i}"))).collect();

    // Adder.
    let rca = ripple_carry_adder(8);
    let mut adder_in: Vec<NodeId> = a.clone();
    adder_in.extend(&b);
    adder_in.push(cin);
    let adder_out = embed(&mut c, &rca, &adder_in); // s0..s7, cout

    // Logic unit per bit: AND, OR, XOR.
    let ands: Vec<NodeId> = (0..8).map(|i| c.and([a[i], b[i]])).collect();
    let ors: Vec<NodeId> = (0..8).map(|i| c.or([a[i], b[i]])).collect();
    let xors: Vec<NodeId> = (0..8).map(|i| c.xor([a[i], b[i]])).collect();

    // Result mux per bit: op selects among sum/and/or/xor.
    let mux = mux_tree(2);
    let mut results = Vec::with_capacity(8);
    for i in 0..8 {
        let bound = vec![adder_out[i], ands[i], ors[i], xors[i], op[0], op[1]];
        let out = embed(&mut c, &mux, &bound);
        results.push(out[0]);
    }

    // Result parity and zero-detect.
    let par = parity_tree(8, 2);
    let parity = embed(&mut c, &par, &results)[0];
    let nresults: Vec<NodeId> = results.iter().map(|&r| c.not(r)).collect();
    let mut zlayer = nresults;
    while zlayer.len() > 1 {
        let mut next = Vec::with_capacity(zlayer.len().div_ceil(2));
        for chunk in zlayer.chunks(2) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(c.and([chunk[0], chunk[1]]));
            }
        }
        zlayer = next;
    }

    // Random control glue over misc inputs and the ALU results.
    let glue_src = generate(&RandomCircuitConfig {
        name: "glue".into(),
        inputs: 40,
        gates: 1180,
        outputs: 12,
        seed: 0x3540,
        max_arity: 3,
        xor_fraction: 0.18,
        locality: 70,
        global_edge_fraction: 0.2,
    });
    let mut glue_in: Vec<NodeId> = misc.clone();
    glue_in.extend(&results);
    glue_in.push(parity);
    let glue_out = embed(&mut c, &glue_src, &glue_in);

    for (i, &r) in results.iter().enumerate() {
        c.add_output(format!("r{i}"), r);
    }
    c.add_output("cout", adder_out[8]);
    c.add_output("parity", parity);
    for (i, &g) in glue_out.iter().enumerate() {
        c.add_output(format!("g{i}"), g);
    }
    c
}

/// Analogue of LGSynth `i10` (257 inputs, 224 outputs, 2643 gates): the
/// paper's largest circuit, with output cones of several hundred gates
/// (Fig. 6 studies two cones of 662 and 1034 gates).
#[must_use]
pub fn i10() -> Circuit {
    let mut c = generate(&RandomCircuitConfig {
        name: "i10_like".into(),
        inputs: 257,
        gates: 2500,
        outputs: 200,
        seed: 0x0010,
        max_arity: 3,
        xor_fraction: 0.12,
        locality: 90,
        global_edge_fraction: 0.25,
    });
    // Arithmetic islands raise cone depth and diversity.
    let ins: Vec<NodeId> = c.inputs().to_vec();
    let rca = ripple_carry_adder(8);
    let mut bound: Vec<NodeId> = ins[0..17].to_vec();
    let adder_out = embed(&mut c, &rca, &bound);
    for (i, &s) in adder_out.iter().enumerate().take(8) {
        c.add_output(format!("add{i}"), s);
    }
    let par = parity_tree(32, 2);
    bound = ins[17..49].to_vec();
    let p = embed(&mut c, &par, &bound)[0];
    c.add_output("par0", p);
    let par2 = parity_tree(32, 2);
    bound = ins[49..81].to_vec();
    let p2 = embed(&mut c, &par2, &bound)[0];
    c.add_output("par1", p2);
    for k in 0..2 {
        let cmp = equality_comparator(8);
        bound = ins[81 + k * 16..81 + (k + 1) * 16].to_vec();
        let e = embed(&mut c, &cmp, &bound)[0];
        c.add_output(format!("eq{k}"), e);
    }
    c
}

/// A small circuit with the qualitative features of the paper's Fig. 1(a):
/// gate `Gx` lies in the transitive fanin of `Gy` (so their observabilities
/// are nested, not independent), and `Gz` reconverges with the `Gx → Gy`
/// path so failures at `Gz` perturb the propagation of failures from `Gx`.
///
/// The named nodes are retrievable with [`Circuit::find`]: `"Gx"`, `"Gy"`,
/// `"Gz"`.
#[must_use]
pub fn fig1_example() -> Circuit {
    let mut c = Circuit::new("fig1a_like");
    let x1 = c.add_input("x1");
    let x2 = c.add_input("x2");
    let x3 = c.add_input("x3");
    let x4 = c.add_input("x4");
    let gz = c.nand([x3, x4]);
    let gx = c.xor([x1, x2]);
    let gy = c.and([gx, gz]);
    let g4 = c.or([gy, x3]); // x3 reconverges
    let y = c.xor([g4, x4]); // x4 reconverges
    c.set_node_name(gz, "Gz").expect("fresh name");
    c.set_node_name(gx, "Gx").expect("fresh name");
    c.set_node_name(gy, "Gy").expect("fresh name");
    c.add_output("y", y);
    c
}

/// The 6-gate circuit shape of the paper's Fig. 2 walkthrough: gate 2 is a
/// fanout stem whose branches reconverge at gate 6 via gates 4 and 5.
#[must_use]
pub fn fig2_example() -> Circuit {
    let mut c = Circuit::new("fig2_like");
    let x1 = c.add_input("x1");
    let x2 = c.add_input("x2");
    let x3 = c.add_input("x3");
    let g1 = c.and([x1, x2]);
    let g2 = c.or([g1, x3]); // fanout stem
    let g3 = c.not(x3);
    let g4 = c.nand([g2, x1]);
    let g5 = c.nor([g2, g3]);
    let g6 = c.xor([g4, g5]);
    for (id, name) in [
        (g1, "g1"),
        (g2, "g2"),
        (g3, "g3"),
        (g4, "g4"),
        (g5, "g5"),
        (g6, "g6"),
    ] {
        c.set_node_name(id, name).expect("fresh name");
    }
    c.add_output("y", g6);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic_netlist::structure::{output_cone_sizes, CircuitStats, FanoutMap};

    #[test]
    fn all_entries_build_and_validate() {
        for e in entries() {
            let c = (e.build)();
            assert!(c.validate().is_ok(), "{} invalid", e.name);
            assert!(c.gate_count() > 0, "{} empty", e.name);
        }
    }

    #[test]
    fn gate_counts_track_paper_sizes() {
        for e in entries() {
            let c = (e.build)();
            let gates = c.gate_count();
            #[allow(clippy::cast_precision_loss)]
            let ratio = gates as f64 / e.paper_gates as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: {gates} gates vs paper {} (ratio {ratio:.2})",
                e.name,
                e.paper_gates
            );
        }
    }

    #[test]
    fn builders_are_deterministic() {
        for e in entries() {
            let c1 = (e.build)();
            let c2 = (e.build)();
            assert_eq!(c1.len(), c2.len(), "{}", e.name);
            for (a, b) in c1.iter().zip(c2.iter()) {
                assert_eq!(a.1.kind(), b.1.kind(), "{}", e.name);
                assert_eq!(a.1.fanins(), b.1.fanins(), "{}", e.name);
            }
        }
    }

    #[test]
    fn build_by_name() {
        assert!(build("b9").is_some());
        assert!(build("c499").is_some());
        assert!(build("nope").is_none());
    }

    #[test]
    fn c499_is_parity_dominated_and_reconvergent() {
        let c = c499();
        let s = CircuitStats::of(&c);
        assert_eq!(s.inputs, 41);
        assert_eq!(s.outputs, 32);
        // Decomposed XOR cells: every cell fans its inputs to two gates, so
        // stems abound and no native XOR gates remain.
        let hist: std::collections::HashMap<_, _> = s.kind_histogram.iter().copied().collect();
        assert!(
            !hist.contains_key("xor"),
            "decomposition left XORs: {hist:?}"
        );
        assert!(
            s.stems > 150,
            "expected heavy reconvergence, {} stems",
            s.stems
        );
    }

    #[test]
    fn c1355_matches_c499_function() {
        let a = c499();
        let b = c1355();
        assert_eq!(a.input_count(), b.input_count());
        assert_eq!(a.output_count(), b.output_count());
        // Spot-check equivalence on random patterns.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            let bits: Vec<bool> = (0..a.input_count()).map(|_| rng.gen()).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits));
        }
        // NAND expansion removed all XORs.
        for (_, node) in b.iter() {
            assert!(!matches!(
                node.kind(),
                relogic_netlist::GateKind::Xor | relogic_netlist::GateKind::Xnor
            ));
        }
    }

    #[test]
    fn i10_has_deep_cones() {
        let c = i10();
        let cones = output_cone_sizes(&c);
        let max = cones.iter().copied().max().unwrap();
        assert!(
            max >= 400,
            "expected output cones of several hundred gates, max {max}"
        );
        assert!(c.output_count() >= 200);
    }

    #[test]
    fn b9_shape() {
        let c = b9();
        let s = CircuitStats::of(&c);
        assert_eq!((s.inputs, s.outputs, s.gates), (41, 21, 210));
        assert!(FanoutMap::build(&c).max_logic_fanout() >= 3);
    }

    #[test]
    fn fig1_example_has_nested_observability_structure() {
        let c = fig1_example();
        let gx = c.find("Gx").unwrap();
        let gy = c.find("Gy").unwrap();
        let cone = relogic_netlist::structure::transitive_fanin(&c, &[gy]);
        assert!(cone.contains(&gx), "Gx must lie in Gy's fanin cone");
        assert!(c.find("Gz").is_some());
    }

    #[test]
    fn fig2_example_reconverges_at_gate6() {
        let c = fig2_example();
        let g2 = c.find("g2").unwrap();
        let fan = FanoutMap::build(&c);
        assert!(fan.is_stem(g2));
        assert_eq!(c.gate_count(), 6);
    }

    #[test]
    fn suite_arity_within_analysis_limit() {
        for e in entries() {
            let c = (e.build)();
            for (_, node) in c.iter() {
                assert!(node.arity() <= 8, "{}: arity {}", e.name, node.arity());
            }
        }
    }
}

/// Two functionally equivalent implementations of one b9-sized function,
/// differing in synthesis strategy — the vehicle for the paper's Fig. 8
/// "redundancy-free design space exploration":
///
/// * **low-fanout** (returned first): every shared subexpression is
///   *duplicated* per use and built as a *balanced* tree — gate fanout ≤ 2
///   and few logic levels.
/// * **high-fanout** (returned second): subexpressions are *shared*
///   (fanout up to the number of uses) and built as *chains* — fewer gates
///   but more logic levels on every input-to-output path.
///
/// The functions are identical by construction: both instantiate the same
/// random specification of associative-operator trees, and associativity
/// makes chain and balanced forms equivalent.
#[must_use]
pub fn b9_variants() -> (Circuit, Circuit) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use relogic_netlist::GateKind;

    const INPUTS: usize = 41;
    const TEMPLATES: usize = 40;
    const OUTPUTS: usize = 21;

    #[derive(Clone)]
    struct TermSpec {
        kind: GateKind,
        literals: Vec<(usize, bool)>, // (input index, negated)
    }
    #[derive(Clone)]
    struct OutputSpec {
        kind: GateKind,
        terms: Vec<usize>,
    }

    // AND/OR only: control-logic masking keeps observabilities low, as in
    // the real b9 (XOR terms would push every output to saturation almost
    // immediately).
    let assoc = [GateKind::And, GateKind::Or];
    let mut rng = SmallRng::seed_from_u64(0x00B9_F1C8);
    let templates: Vec<TermSpec> = (0..TEMPLATES)
        .map(|_| {
            let nlits = rng.gen_range(3..=6);
            let mut used = Vec::new();
            let literals = (0..nlits)
                .map(|_| {
                    let mut i = rng.gen_range(0..INPUTS);
                    while used.contains(&i) {
                        i = rng.gen_range(0..INPUTS);
                    }
                    used.push(i);
                    (i, rng.gen_bool(0.4))
                })
                .collect();
            TermSpec {
                kind: assoc[rng.gen_range(0..assoc.len())],
                literals,
            }
        })
        .collect();
    let outputs: Vec<OutputSpec> = (0..OUTPUTS)
        .map(|_| {
            let nterms = rng.gen_range(3..=6);
            let mut terms = Vec::new();
            while terms.len() < nterms {
                let t = rng.gen_range(0..TEMPLATES);
                if !terms.contains(&t) {
                    terms.push(t);
                }
            }
            OutputSpec {
                kind: assoc[rng.gen_range(0..assoc.len())],
                terms,
            }
        })
        .collect();

    let chain = |c: &mut Circuit, kind: GateKind, nodes: &[NodeId]| -> NodeId {
        let mut acc = nodes[0];
        for &n in &nodes[1..] {
            acc = c.add_gate(kind, [acc, n]).expect("valid gate");
        }
        acc
    };
    let tree = |c: &mut Circuit, kind: GateKind, nodes: &[NodeId]| -> NodeId {
        let mut layer = nodes.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    next.push(c.add_gate(kind, [chunk[0], chunk[1]]).expect("valid gate"));
                }
            }
            layer = next;
        }
        layer[0]
    };

    // High-fanout, chain-form, shared implementation.
    let mut high = Circuit::new("b9_high_fanout");
    let hi_ins: Vec<NodeId> = (0..INPUTS)
        .map(|i| high.add_input(format!("x{i}")))
        .collect();
    // One shared inverter per input, built lazily.
    let mut hi_inv: Vec<Option<NodeId>> = vec![None; INPUTS];
    let mut hi_terms: Vec<NodeId> = Vec::with_capacity(TEMPLATES);
    for t in &templates {
        let lits: Vec<NodeId> = t
            .literals
            .iter()
            .map(|&(i, neg)| {
                if neg {
                    *hi_inv[i].get_or_insert_with(|| high.not(hi_ins[i]))
                } else {
                    hi_ins[i]
                }
            })
            .collect();
        hi_terms.push(chain(&mut high, t.kind, &lits));
    }
    for (k, o) in outputs.iter().enumerate() {
        let nodes: Vec<NodeId> = o.terms.iter().map(|&t| hi_terms[t]).collect();
        let y = chain(&mut high, o.kind, &nodes);
        high.add_output(format!("po{k}"), y);
    }

    // Low-fanout, balanced, duplicated implementation.
    let mut low = Circuit::new("b9_low_fanout");
    let lo_ins: Vec<NodeId> = (0..INPUTS)
        .map(|i| low.add_input(format!("x{i}")))
        .collect();
    for (k, o) in outputs.iter().enumerate() {
        let nodes: Vec<NodeId> = o
            .terms
            .iter()
            .map(|&t| {
                let spec = &templates[t];
                let lits: Vec<NodeId> = spec
                    .literals
                    .iter()
                    .map(|&(i, neg)| if neg { low.not(lo_ins[i]) } else { lo_ins[i] })
                    .collect();
                tree(&mut low, spec.kind, &lits)
            })
            .collect();
        let y = tree(&mut low, o.kind, &nodes);
        low.add_output(format!("po{k}"), y);
    }
    (low, high)
}

#[cfg(test)]
mod variant_tests {
    use super::*;
    use relogic_netlist::structure::{depth, FanoutMap};

    #[test]
    fn b9_variants_are_equivalent() {
        let (low, high) = b9_variants();
        assert_eq!(low.input_count(), high.input_count());
        assert_eq!(low.output_count(), high.output_count());
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        for _ in 0..128 {
            let bits: Vec<bool> = (0..low.input_count()).map(|_| rng.gen()).collect();
            assert_eq!(low.eval(&bits), high.eval(&bits));
        }
    }

    #[test]
    fn b9_variants_differ_in_fanout_and_depth() {
        let (low, high) = b9_variants();
        let gate_fanout_max = |c: &Circuit| -> usize {
            let fan = FanoutMap::build(c);
            c.node_ids()
                .filter(|&id| c.node(id).kind().is_gate())
                .map(|id| fan.logic_fanout(id))
                .max()
                .unwrap_or(0)
        };
        assert!(gate_fanout_max(&low) <= 2, "low variant fanout");
        assert!(gate_fanout_max(&high) >= 4, "high variant fanout");
        assert!(
            depth(&low) < depth(&high),
            "low {} vs high {} levels",
            depth(&low),
            depth(&high)
        );
        assert!(
            low.gate_count() > high.gate_count(),
            "duplication grows area"
        );
    }
}
