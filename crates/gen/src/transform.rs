//! Function-preserving structural transforms.
//!
//! The paper's §5.1 "redundancy-free design space exploration" compares two
//! synthesized versions of the same function that differ in maximum fanout
//! and logic depth (Fig. 8). These transforms produce such variants from
//! any circuit:
//!
//! * [`buffer_fanout`] — caps fanout by inserting buffer trees (adds
//!   levels, keeps one copy of every gate).
//! * [`duplicate_fanout`] — caps fanout by duplicating logic (keeps levels,
//!   grows area); primary inputs, which cannot be duplicated, get buffer
//!   trees.
//! * [`balance`] — flattens chains of associative same-kind gates into
//!   balanced trees, reducing logic depth.
//! * [`expand_xor_to_nand`] — rewrites XOR/XNOR into 4-NAND cells, turning
//!   a c499-style XOR lattice into its c1355-style NAND expansion.
//!
//! Every transform returns a new circuit computing the same outputs, which
//! the test suites verify exhaustively or symbolically.

use relogic_netlist::structure::FanoutMap;
use relogic_netlist::{Circuit, GateKind, NodeId};
use std::collections::VecDeque;

/// Returns `need` provider slots for `source`, inserting a buffer tree so
/// no node drives more than `max` slots.
fn expand_providers(c: &mut Circuit, source: NodeId, need: usize, max: usize) -> VecDeque<NodeId> {
    let mut out = VecDeque::with_capacity(need);
    if need <= max {
        for _ in 0..need {
            out.push_back(source);
        }
        return out;
    }
    // Split the demand across up to `max` buffers, recursively.
    let groups = max.min(need);
    let base = need / groups;
    let extra = need % groups;
    for g in 0..groups {
        let share = base + usize::from(g < extra);
        let b = c.buf(source);
        out.extend(expand_providers(c, b, share, max));
    }
    out
}

/// Number of provider slots each original node must supply: one per logic
/// fanin slot (times the reader's copy count) plus one per observing output.
fn consumer_counts(circuit: &Circuit, copies: &[usize]) -> Vec<usize> {
    let mut consumers = vec![0usize; circuit.len()];
    for (id, node) in circuit.iter() {
        for &f in node.fanins() {
            consumers[f.index()] += copies[id.index()];
        }
    }
    for o in circuit.outputs() {
        consumers[o.node().index()] += 1;
    }
    consumers
}

/// Caps every node's fanout at `max_fanout` by inserting balanced buffer
/// trees. The result computes the same function with extra (noisy, once
/// ε is assigned) buffer levels — the classic fanout-buffering trade-off.
///
/// # Panics
///
/// Panics if `max_fanout < 2`.
///
/// # Examples
///
/// ```
/// use relogic_netlist::{structure::FanoutMap, Circuit};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.not(a);
/// for i in 0..6 {
///     let h = c.buf(g);
///     c.add_output(format!("y{i}"), h);
/// }
/// let capped = relogic_gen::buffer_fanout(&c, 2);
/// assert!(FanoutMap::build(&capped).max_logic_fanout() <= 2);
/// ```
#[must_use]
pub fn buffer_fanout(circuit: &Circuit, max_fanout: usize) -> Circuit {
    assert!(max_fanout >= 2, "max_fanout must be at least 2");
    let copies = vec![1usize; circuit.len()];
    let consumers = consumer_counts(circuit, &copies);
    let mut out = Circuit::new(format!("{}_buf{max_fanout}", circuit.name()));
    let mut providers: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); circuit.len()];
    for (id, node) in circuit.iter() {
        let new_id = match node.kind() {
            GateKind::Input => out
                .try_add_input(circuit.display_name(id))
                .expect("unique input names"),
            GateKind::Const(v) => out.add_const(v),
            kind => {
                let fanins: Vec<NodeId> = node
                    .fanins()
                    .iter()
                    .map(|f| {
                        providers[f.index()]
                            .pop_front()
                            .expect("provider available")
                    })
                    .collect();
                out.add_gate(kind, fanins).expect("valid gate")
            }
        };
        providers[id.index()] =
            expand_providers(&mut out, new_id, consumers[id.index()], max_fanout);
    }
    for o in circuit.outputs() {
        let p = providers[o.node().index()]
            .pop_front()
            .expect("provider available for output");
        out.add_output(o.name(), p);
    }
    out
}

/// Caps every node's fanout at `max_fanout` by *duplicating gates* (logic
/// replication), preserving logic depth. Primary inputs and constants,
/// which cannot be replicated, receive buffer trees instead.
///
/// # Panics
///
/// Panics if `max_fanout < 2`.
#[must_use]
pub fn duplicate_fanout(circuit: &Circuit, max_fanout: usize) -> Circuit {
    assert!(max_fanout >= 2, "max_fanout must be at least 2");
    // Reverse pass: how many copies of each gate are needed so every copy
    // drives at most `max_fanout` slots.
    let n = circuit.len();
    let mut copies = vec![1usize; n];
    for i in (0..n).rev() {
        let id = NodeId::from_index(i);
        let node = circuit.node(id);
        if !node.kind().is_gate() {
            continue; // sources are buffered, not duplicated
        }
        let mut consumers = 0usize;
        for (rid, rnode) in circuit.iter().skip(i + 1) {
            let mult = rnode.fanins().iter().filter(|&&f| f == id).count();
            consumers += mult * copies[rid.index()];
        }
        consumers += circuit.outputs().iter().filter(|o| o.node() == id).count();
        copies[i] = consumers.div_ceil(max_fanout).max(1);
    }
    let consumers = consumer_counts(circuit, &copies);

    let mut out = Circuit::new(format!("{}_dup{max_fanout}", circuit.name()));
    let mut providers: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); n];
    for (id, node) in circuit.iter() {
        let i = id.index();
        match node.kind() {
            GateKind::Input => {
                let new_id = out
                    .try_add_input(circuit.display_name(id))
                    .expect("unique input names");
                providers[i] = expand_providers(&mut out, new_id, consumers[i], max_fanout);
            }
            GateKind::Const(v) => {
                let new_id = out.add_const(v);
                providers[i] = expand_providers(&mut out, new_id, consumers[i], max_fanout);
            }
            kind => {
                let mut slots = VecDeque::with_capacity(consumers[i]);
                let mut remaining = consumers[i];
                for _ in 0..copies[i] {
                    let fanins: Vec<NodeId> = node
                        .fanins()
                        .iter()
                        .map(|f| {
                            providers[f.index()]
                                .pop_front()
                                .expect("provider available")
                        })
                        .collect();
                    let copy = out.add_gate(kind, fanins).expect("valid gate");
                    let serve = remaining.min(max_fanout);
                    remaining -= serve;
                    for _ in 0..serve {
                        slots.push_back(copy);
                    }
                }
                providers[i] = slots;
            }
        }
    }
    for o in circuit.outputs() {
        let p = providers[o.node().index()]
            .pop_front()
            .expect("provider available for output");
        out.add_output(o.name(), p);
    }
    out
}

/// Flattens chains of same-kind associative gates (AND/OR/XOR) whose
/// intermediate nodes have fanout 1 into balanced binary trees, reducing
/// logic depth without changing the function.
#[must_use]
pub fn balance(circuit: &Circuit) -> Circuit {
    let fanout = FanoutMap::build(circuit);
    let absorbable = |id: NodeId, kind: GateKind| -> bool {
        let node = circuit.node(id);
        node.kind() == kind
            && matches!(kind, GateKind::And | GateKind::Or | GateKind::Xor)
            && fanout.logic_fanout(id) == 1
            && fanout.output_observers(id) == 0
    };
    // Which nodes get absorbed into a consumer's balanced tree.
    let mut absorbed = vec![false; circuit.len()];
    for (_id, node) in circuit.iter() {
        if !node.kind().is_gate() {
            continue;
        }
        for &f in node.fanins() {
            if absorbable(f, node.kind()) {
                absorbed[f.index()] = true;
            }
        }
    }

    fn collect_leaves(
        circuit: &Circuit,
        id: NodeId,
        kind: GateKind,
        absorbed: &[bool],
        leaves: &mut Vec<NodeId>,
    ) {
        for &f in circuit.node(id).fanins() {
            if absorbed[f.index()] && circuit.node(f).kind() == kind {
                collect_leaves(circuit, f, kind, absorbed, leaves);
            } else {
                leaves.push(f);
            }
        }
    }

    let mut out = Circuit::new(format!("{}_bal", circuit.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; circuit.len()];
    for (id, node) in circuit.iter() {
        if absorbed[id.index()] {
            continue;
        }
        let new_id = match node.kind() {
            GateKind::Input => out
                .try_add_input(circuit.display_name(id))
                .expect("unique input names"),
            GateKind::Const(v) => out.add_const(v),
            kind @ (GateKind::And | GateKind::Or | GateKind::Xor) => {
                let mut leaves = Vec::new();
                collect_leaves(circuit, id, kind, &absorbed, &mut leaves);
                let mut layer: Vec<NodeId> = leaves
                    .iter()
                    .map(|f| map[f.index()].expect("fanin already emitted"))
                    .collect();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for chunk in layer.chunks(2) {
                        if chunk.len() == 1 {
                            next.push(chunk[0]);
                        } else {
                            next.push(out.add_gate(kind, [chunk[0], chunk[1]]).expect("valid"));
                        }
                    }
                    layer = next;
                }
                // A single leaf means the gate was an identity (arity 1);
                // map it straight to the leaf.
                layer[0]
            }
            kind => {
                let fanins: Vec<NodeId> = node
                    .fanins()
                    .iter()
                    .map(|f| map[f.index()].expect("fanin already emitted"))
                    .collect();
                out.add_gate(kind, fanins).expect("valid gate")
            }
        };
        map[id.index()] = Some(new_id);
    }
    for o in circuit.outputs() {
        out.add_output(
            o.name(),
            map[o.node().index()].expect("output node emitted"),
        );
    }
    out
}

/// Rewrites every XOR into the classic 4-NAND cell (and XNOR into 4-NAND
/// plus an inverter); wider parity gates are first decomposed into 2-input
/// chains. This is how ISCAS-85 c1355 relates to c499.
#[must_use]
pub fn expand_xor_to_nand(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(format!("{}_nand", circuit.name()));
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.len());
    let xor2 = |c: &mut Circuit, a: NodeId, b: NodeId| -> NodeId {
        let x = c.nand([a, b]);
        let y = c.nand([a, x]);
        let z = c.nand([b, x]);
        c.nand([y, z])
    };
    for (id, node) in circuit.iter() {
        let new_id = match node.kind() {
            GateKind::Input => out
                .try_add_input(circuit.display_name(id))
                .expect("unique input names"),
            GateKind::Const(v) => out.add_const(v),
            GateKind::Xor | GateKind::Xnor => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f.index()]).collect();
                let mut acc = fanins[0];
                for &next in &fanins[1..] {
                    acc = xor2(&mut out, acc, next);
                }
                if node.kind() == GateKind::Xnor {
                    out.not(acc)
                } else if node.arity() == 1 {
                    out.buf(acc)
                } else {
                    acc
                }
            }
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f.index()]).collect();
                out.add_gate(kind, fanins).expect("valid gate")
            }
        };
        map.push(new_id);
    }
    for o in circuit.outputs() {
        out.add_output(o.name(), map[o.node().index()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic_netlist::structure::{depth, CircuitStats};

    fn exhaustive_equivalent(a: &Circuit, b: &Circuit) -> bool {
        assert_eq!(a.input_count(), b.input_count());
        assert_eq!(a.output_count(), b.output_count());
        assert!(a.input_count() <= 16);
        for v in 0..1usize << a.input_count() {
            let bits: Vec<bool> = (0..a.input_count()).map(|j| v >> j & 1 != 0).collect();
            if a.eval(&bits) != b.eval(&bits) {
                return false;
            }
        }
        true
    }

    fn sample() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("x");
        let s = c.nand([a, b]); // heavy fanout stem
        let g1 = c.and([s, x]);
        let g2 = c.or([s, x]);
        let g3 = c.xor([s, g1]);
        let g4 = c.xor([g3, g2]);
        c.add_output("y1", g4);
        c.add_output("y2", s);
        c
    }

    #[test]
    fn buffer_fanout_caps_and_preserves() {
        let c = sample();
        let capped = buffer_fanout(&c, 2);
        assert!(FanoutMap::build(&capped).max_logic_fanout() <= 2);
        assert!(exhaustive_equivalent(&c, &capped));
        assert!(capped.validate().is_ok());
    }

    #[test]
    fn duplicate_fanout_caps_and_preserves() {
        let c = sample();
        let capped = duplicate_fanout(&c, 2);
        assert!(FanoutMap::build(&capped).max_logic_fanout() <= 2);
        assert!(exhaustive_equivalent(&c, &capped));
        // Duplication must not increase depth (buffering of PIs aside).
        assert!(depth(&capped) <= depth(&c) + 1);
    }

    #[test]
    fn duplicate_replicates_logic() {
        let c = sample();
        let capped = duplicate_fanout(&c, 2);
        // The stem had fanout 4 (3 gates + 1 output): expect extra NANDs.
        let hist: std::collections::HashMap<_, _> = CircuitStats::of(&capped)
            .kind_histogram
            .iter()
            .copied()
            .collect();
        assert!(hist["nand"] >= 2, "stem should be duplicated");
    }

    #[test]
    fn balance_reduces_depth_of_chains() {
        let mut c = Circuit::new("chain");
        let ins: Vec<_> = (0..8).map(|i| c.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = c.and([acc, i]);
        }
        c.add_output("y", acc);
        let balanced = balance(&c);
        assert!(exhaustive_equivalent(&c, &balanced));
        assert_eq!(depth(&c), 7);
        assert_eq!(depth(&balanced), 3);
    }

    #[test]
    fn balance_respects_fanout_and_outputs() {
        // The middle of the chain is observed: it cannot be absorbed.
        let mut c = Circuit::new("chain");
        let ins: Vec<_> = (0..4).map(|i| c.add_input(format!("x{i}"))).collect();
        let g1 = c.or([ins[0], ins[1]]);
        let g2 = c.or([g1, ins[2]]);
        let g3 = c.or([g2, ins[3]]);
        c.add_output("mid", g2);
        c.add_output("y", g3);
        let balanced = balance(&c);
        assert!(exhaustive_equivalent(&c, &balanced));
    }

    #[test]
    fn balance_handles_xor_chains() {
        let mut c = Circuit::new("chain");
        let ins: Vec<_> = (0..6).map(|i| c.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = c.xor([acc, i]);
        }
        c.add_output("y", acc);
        let balanced = balance(&c);
        assert!(exhaustive_equivalent(&c, &balanced));
        assert!(depth(&balanced) < depth(&c));
    }

    #[test]
    fn xor_expansion_is_equivalent_and_nand_only() {
        let c = sample();
        let expanded = expand_xor_to_nand(&c);
        assert!(exhaustive_equivalent(&c, &expanded));
        for (_, node) in expanded.iter() {
            assert!(
                !matches!(node.kind(), GateKind::Xor | GateKind::Xnor),
                "xor survived expansion"
            );
        }
    }

    #[test]
    fn xor_expansion_handles_wide_and_xnor() {
        let mut c = Circuit::new("t");
        let ins: Vec<_> = (0..4).map(|i| c.add_input(format!("x{i}"))).collect();
        let g1 = c.xor(ins.clone());
        let g2 = c.xnor([ins[0], ins[3]]);
        c.add_output("y1", g1);
        c.add_output("y2", g2);
        let expanded = expand_xor_to_nand(&c);
        assert!(exhaustive_equivalent(&c, &expanded));
    }

    #[test]
    fn transforms_compose() {
        let c = sample();
        let v = balance(&duplicate_fanout(&c, 2));
        assert!(exhaustive_equivalent(&c, &v));
        let w = buffer_fanout(&expand_xor_to_nand(&c), 3);
        assert!(exhaustive_equivalent(&c, &w));
    }
}

/// Rewrites every XOR into the 3-gate AND-OR cell
/// `x ⊕ y = (x NAND y) AND (x OR y)` (XNOR gains an inverter); wider
/// parity gates are decomposed into 2-input chains first.
///
/// Each cell's fanins feed two gates that reconverge one level later, so
/// this expansion injects the dense local reconvergence that makes the
/// decomposed ISCAS parity circuits (the paper's c499 row) hard for
/// independence-assuming analyses.
#[must_use]
pub fn expand_xor_to_and_or(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(format!("{}_aoi", circuit.name()));
    let mut map: Vec<NodeId> = Vec::with_capacity(circuit.len());
    let xor2 = |c: &mut Circuit, a: NodeId, b: NodeId| -> NodeId {
        let nand = c.nand([a, b]);
        let or = c.or([a, b]);
        c.and([nand, or])
    };
    for (id, node) in circuit.iter() {
        let new_id = match node.kind() {
            GateKind::Input => out
                .try_add_input(circuit.display_name(id))
                .expect("unique input names"),
            GateKind::Const(v) => out.add_const(v),
            GateKind::Xor | GateKind::Xnor => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f.index()]).collect();
                let mut acc = fanins[0];
                for &next in &fanins[1..] {
                    acc = xor2(&mut out, acc, next);
                }
                if node.kind() == GateKind::Xnor {
                    out.not(acc)
                } else if node.arity() == 1 {
                    out.buf(acc)
                } else {
                    acc
                }
            }
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f.index()]).collect();
                out.add_gate(kind, fanins).expect("valid gate")
            }
        };
        map.push(new_id);
    }
    for o in circuit.outputs() {
        out.add_output(o.name(), map[o.node().index()]);
    }
    out
}

#[cfg(test)]
mod aoi_tests {
    use super::*;

    #[test]
    fn and_or_expansion_is_equivalent() {
        let mut c = Circuit::new("t");
        let ins: Vec<_> = (0..4).map(|i| c.add_input(format!("x{i}"))).collect();
        let g1 = c.xor(ins.clone());
        let g2 = c.xnor([ins[0], ins[2]]);
        let g3 = c.and([g1, g2]);
        c.add_output("y1", g3);
        c.add_output("y2", g1);
        let expanded = expand_xor_to_and_or(&c);
        for v in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|j| v >> j & 1 != 0).collect();
            assert_eq!(c.eval(&bits), expanded.eval(&bits), "v={v:04b}");
        }
        for (_, node) in expanded.iter() {
            assert!(!matches!(node.kind(), GateKind::Xor | GateKind::Xnor));
        }
    }

    #[test]
    fn and_or_expansion_creates_local_stems() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.xor([a, b]);
        c.add_output("y", g);
        let expanded = expand_xor_to_and_or(&c);
        let fan = FanoutMap::build(&expanded);
        assert!(fan.is_stem(relogic_netlist::NodeId::from_index(0)));
        assert_eq!(expanded.gate_count(), 3);
    }
}
