//! Property test: selective TMR never hurts in its design regime.
//!
//! `tmr_selected(protect)` exists to shield *weak* gates (high ε) with
//! redundancy built from *reliable* hardware (low ε) — the §5.1
//! asymmetric-reliability scenario that motivates analysis-directed
//! insertion. In that regime the transform must never decrease any
//! per-output reliability: the voter masks single-replica failures
//! (double failures cost ~3ε² ≪ ε) and the added voter gates carry the
//! cheap ε. The oracle is Monte Carlo with a fixed seed; the tolerance is
//! a multiple of both runs' standard errors, so the assertion only fires
//! on a real regression, not sampling noise.
//!
//! The blanket-TMR counterexample (voters as noisy as the logic, where
//! redundancy *adds* error) is covered by the unit tests in
//! `src/redundancy.rs`; this property pins the regime the `harden`
//! optimizer actually uses.

// Test-only code: the library's unwrap ban does not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use relogic_gen::tmr_selected;
use relogic_netlist::{Circuit, GateKind, NodeId};
use relogic_sim::{estimate, MonteCarloConfig};

/// Gate error rate of the weak (protected) gates.
const EPS_WEAK: f64 = 0.2;
/// Gate error rate of everything else, including replicas' voters.
const EPS_GOOD: f64 = 0.002;

fn random_circuit(ops: &[(u8, u8, u8)], inputs: usize, outputs: usize) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..inputs {
        c.add_input(format!("x{i}"));
    }
    for &(kind, a, b) in ops {
        let len = c.len();
        let fa = NodeId::from_index(a as usize % len);
        let fb = NodeId::from_index(b as usize % len);
        let kind = GateKind::LOGIC_KINDS[kind as usize % GateKind::LOGIC_KINDS.len()];
        if kind.accepts_arity(2) {
            c.add_gate(kind, [fa, fb]).unwrap();
        } else {
            c.add_gate(kind, [fa]).unwrap();
        }
    }
    let n = c.len();
    for k in 0..outputs {
        // Spread outputs over the latest nodes so most gates stay live.
        c.add_output(format!("y{k}"), NodeId::from_index(n - 1 - k % n.min(3)));
    }
    c
}

/// Picks every `stride`-th gate as the protected set.
fn protect_set(c: &Circuit, stride: usize) -> Vec<NodeId> {
    c.iter()
        .filter(|(_, n)| n.kind().is_gate())
        .map(|(id, _)| id)
        .step_by(stride.max(1))
        .collect()
}

/// Per-node ε for the base circuit: weak where protected, good elsewhere.
fn base_eps(c: &Circuit, protect: &[NodeId]) -> Vec<f64> {
    c.iter()
        .map(|(id, n)| {
            if !n.kind().is_gate() {
                0.0
            } else if protect.contains(&id) {
                EPS_WEAK
            } else {
                EPS_GOOD
            }
        })
        .collect()
}

/// Per-node ε for the transformed circuit, reconstructed by replaying
/// `tmr_selected`'s deterministic construction order: each original node
/// in iteration order, protected gates expanding to three replicas (which
/// keep the weak ε — redundancy does not fix the device, it masks it)
/// followed by the voter's gates at the good ε.
fn tmr_eps(c: &Circuit, t: &Circuit, protect: &[NodeId]) -> Vec<f64> {
    let protected_gates = protect
        .iter()
        .filter(|id| c.node(**id).kind().is_gate())
        .count();
    assert!(protected_gates > 0, "caller guarantees a non-empty set");
    let grown = t.gate_count() - c.gate_count();
    assert_eq!(grown % protected_gates, 0, "uniform per-gate voter cost");
    let voter_gates = grown / protected_gates - 2;
    let mut eps = Vec::with_capacity(t.len());
    for (id, node) in c.iter() {
        if !node.kind().is_gate() {
            eps.push(0.0);
        } else if protect.contains(&id) {
            eps.extend([EPS_WEAK; 3]);
            eps.extend(std::iter::repeat_n(EPS_GOOD, voter_gates));
        } else {
            eps.push(EPS_GOOD);
        }
    }
    assert_eq!(eps.len(), t.len(), "replay must cover the whole transform");
    eps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn protecting_weak_gates_never_decreases_reliability(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 2..14),
        inputs in 2usize..6,
        outputs in 1usize..3,
        stride in 1usize..4,
    ) {
        let c = random_circuit(&ops, inputs, outputs);
        let protect = protect_set(&c, stride);
        prop_assume!(!protect.is_empty());
        let t = tmr_selected(&c, &protect);

        let cfg = MonteCarloConfig {
            patterns: 1 << 15,
            seed: 42,
            ..MonteCarloConfig::default()
        };
        let plain = estimate(&c, &base_eps(&c, &protect), &cfg);
        let tmr = estimate(&t, &tmr_eps(&c, &t, &protect), &cfg);

        for k in 0..c.output_count() {
            let margin = 4.0 * (plain.std_error(k) + tmr.std_error(k)) + 1e-9;
            prop_assert!(
                tmr.per_output()[k] <= plain.per_output()[k] + margin,
                "output {k}: protected delta {} vs plain {} (margin {margin})",
                tmr.per_output()[k],
                plain.per_output()[k],
            );
        }
    }
}
