//! The [`Circuit`] container: an append-only, topologically ordered
//! gate-level netlist.
//!
//! Nodes can only reference fanins that already exist, so a `Circuit` is
//! *topologically sorted by construction* and can never contain a
//! combinational cycle. Analyses exploit this: iterating nodes in id order
//! always visits fanins before fanouts.

use crate::{GateKind, NetlistError, NodeId, OutputId};
use std::collections::HashMap;
use std::fmt;

/// A single node: a primary input, constant, or logic gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    kind: GateKind,
    fanins: Vec<NodeId>,
}

impl Node {
    /// The Boolean function this node computes.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The node's fanins, in positional order.
    #[must_use]
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }

    /// Number of fanins.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.fanins.len()
    }
}

/// A primary-output slot: a name observing a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Output {
    name: String,
    node: NodeId,
}

impl Output {
    /// The output's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node this output observes.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }
}

/// An append-only gate-level combinational netlist.
///
/// # Examples
///
/// Build a 2-input multiplexer `y = (s & a) | (!s & b)` and evaluate it:
///
/// ```
/// use relogic_netlist::Circuit;
///
/// let mut c = Circuit::new("mux2");
/// let s = c.add_input("s");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let ns = c.not(s);
/// let t0 = c.and([s, a]);
/// let t1 = c.and([ns, b]);
/// let y = c.or([t0, t1]);
/// c.add_output("y", y);
///
/// assert_eq!(c.eval(&[true, true, false]), vec![true]); // s=1 selects a
/// assert_eq!(c.eval(&[false, true, false]), vec![false]); // s=0 selects b
/// ```
#[derive(Clone, Default)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<Output>,
    node_names: Vec<Option<String>>,
    by_name: HashMap<String, NodeId>,
}

impl Circuit {
    /// Creates an empty circuit with the given model name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            ..Circuit::default()
        }
    }

    /// The model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the model.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a primary input with the given name.
    ///
    /// # Panics
    ///
    /// Panics if the name is already bound; use [`Circuit::try_add_input`]
    /// to handle that case gracefully (parsers do).
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.try_add_input(name).expect("duplicate input name")
    }

    /// Adds a primary input, failing if the name is already bound.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if `name` is taken.
    pub fn try_add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let id = self.push_node(GateKind::Input, Vec::new());
        self.inputs.push(id);
        self.bind_name(id, name.into())?;
        Ok(id)
    }

    /// Adds a constant source node.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        self.push_node(GateKind::Const(value), Vec::new())
    }

    /// Adds a gate of the given kind, validating arity and fanin existence.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Arity`] if the fanin count is not acceptable
    /// for `kind`, and [`NetlistError::DanglingFanin`] if a fanin id does not
    /// exist yet (fanins must be created before the gates that read them).
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        fanins: impl IntoIterator<Item = NodeId>,
    ) -> Result<NodeId, NetlistError> {
        let fanins: Vec<NodeId> = fanins.into_iter().collect();
        if kind.is_source() && !fanins.is_empty() || !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::Arity {
                kind,
                arity: fanins.len(),
            });
        }
        if kind.is_source() {
            return Err(NetlistError::Arity { kind, arity: 0 });
        }
        let next = NodeId::from_index(self.nodes.len());
        for &f in &fanins {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingFanin {
                    gate: next,
                    fanin: f,
                });
            }
        }
        Ok(self.push_node(kind, fanins))
    }

    /// Declares `node` as a primary output named `name`.
    ///
    /// Output names are not required to be unique against node names, but
    /// duplicate output names are rejected by [`Circuit::validate`].
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) -> OutputId {
        assert!(
            node.index() < self.nodes.len(),
            "output references nonexistent node {node:?}"
        );
        let id = OutputId::from_index(self.outputs.len());
        self.outputs.push(Output {
            name: name.into(),
            node,
        });
        id
    }

    /// Re-points output slot `output` at a different node.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn set_output_node(&mut self, output: OutputId, node: NodeId) {
        assert!(node.index() < self.nodes.len());
        self.outputs[output.index()].node = node;
    }

    /// Binds `name` to `node` (for netlist interchange and debugging).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is bound to a
    /// different node.
    pub fn set_node_name(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
    ) -> Result<(), NetlistError> {
        self.bind_name(node, name.into())
    }

    fn bind_name(&mut self, node: NodeId, name: String) -> Result<(), NetlistError> {
        match self.by_name.get(&name) {
            Some(&existing) if existing != node => Err(NetlistError::DuplicateName { name }),
            _ => {
                self.by_name.insert(name.clone(), node);
                self.node_names[node.index()] = Some(name);
                Ok(())
            }
        }
    }

    fn push_node(&mut self, kind: GateKind, fanins: Vec<NodeId>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node { kind, fanins });
        self.node_names.push(None);
        id
    }

    // Convenience gate constructors. These panic on arity violations, which
    // cannot occur when the argument lists are non-empty literals; parsers
    // and generic code should use `add_gate`.

    /// Adds an AND gate. Panics if `fanins` is empty.
    pub fn and(&mut self, fanins: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.add_gate(GateKind::And, fanins).expect("invalid and")
    }

    /// Adds a NAND gate. Panics if `fanins` is empty.
    pub fn nand(&mut self, fanins: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.add_gate(GateKind::Nand, fanins).expect("invalid nand")
    }

    /// Adds an OR gate. Panics if `fanins` is empty.
    pub fn or(&mut self, fanins: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.add_gate(GateKind::Or, fanins).expect("invalid or")
    }

    /// Adds a NOR gate. Panics if `fanins` is empty.
    pub fn nor(&mut self, fanins: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.add_gate(GateKind::Nor, fanins).expect("invalid nor")
    }

    /// Adds an XOR (odd parity) gate. Panics if `fanins` is empty.
    pub fn xor(&mut self, fanins: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.add_gate(GateKind::Xor, fanins).expect("invalid xor")
    }

    /// Adds an XNOR (even parity) gate. Panics if `fanins` is empty.
    pub fn xnor(&mut self, fanins: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.add_gate(GateKind::Xnor, fanins).expect("invalid xnor")
    }

    /// Adds an inverter.
    pub fn not(&mut self, fanin: NodeId) -> NodeId {
        self.add_gate(GateKind::Not, [fanin]).expect("invalid not")
    }

    /// Adds a buffer.
    pub fn buf(&mut self, fanin: NodeId) -> NodeId {
        self.add_gate(GateKind::Buf, [fanin]).expect("invalid buf")
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Total number of nodes (inputs + constants + gates).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the circuit has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of logic gates (nodes that are neither inputs nor constants).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_gate()).count()
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this circuit.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over all node ids in topological (construction) order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + DoubleEndedIterator + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Primary inputs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Primary output slots in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The output slot behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this circuit.
    #[must_use]
    pub fn output(&self, id: OutputId) -> &Output {
        &self.outputs[id.index()]
    }

    /// Iterates over all output ids in declaration order.
    pub fn output_ids(&self) -> impl ExactSizeIterator<Item = OutputId> + DoubleEndedIterator + '_ {
        (0..self.outputs.len()).map(OutputId::from_index)
    }

    /// The name bound to `node`, if any.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.node_names[node.index()].as_deref()
    }

    /// Looks up a node by bound name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// A display name for `node`: the bound name if present, else `n<i>`.
    #[must_use]
    pub fn display_name(&self, node: NodeId) -> String {
        self.node_name(node)
            .map_or_else(|| node.to_string(), str::to_owned)
    }

    /// Position of `node` in the primary-input list, if it is an input.
    #[must_use]
    pub fn input_position(&self, node: NodeId) -> Option<usize> {
        self.inputs.iter().position(|&i| i == node)
    }

    // ------------------------------------------------------------------
    // Validation and evaluation
    // ------------------------------------------------------------------

    /// Checks structural invariants not already enforced by construction:
    /// every output observes an existing node and output names are unique.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut seen = HashMap::new();
        for out in &self.outputs {
            if out.node.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingFanin {
                    gate: out.node,
                    fanin: out.node,
                });
            }
            if seen.insert(out.name.clone(), out.node).is_some() {
                return Err(NetlistError::DuplicateName {
                    name: out.name.clone(),
                });
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for &f in &node.fanins {
                if f.index() >= i {
                    return Err(NetlistError::Cycle {
                        node: NodeId::from_index(i),
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates every node for one input assignment; element `i` of the
    /// result is the value of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len() != self.input_count()`.
    #[must_use]
    pub fn eval_all(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "expected {} input values",
            self.inputs.len()
        );
        let mut values = vec![false; self.nodes.len()];
        let mut next_input = 0;
        let mut scratch = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node.kind {
                GateKind::Input => {
                    let v = input_values[next_input];
                    next_input += 1;
                    v
                }
                GateKind::Const(v) => v,
                kind => {
                    scratch.clear();
                    scratch.extend(node.fanins.iter().map(|f| values[f.index()]));
                    kind.eval(&scratch)
                }
            };
        }
        values
    }

    /// Evaluates the circuit for one input assignment, returning one value
    /// per primary output (in declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len() != self.input_count()`.
    #[must_use]
    pub fn eval(&self, input_values: &[bool]) -> Vec<bool> {
        let values = self.eval_all(input_values);
        self.outputs
            .iter()
            .map(|o| values[o.node.index()])
            .collect()
    }
}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Circuit")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .field("inputs", &self.inputs.len())
            .field("gates", &self.gate_count())
            .field("outputs", &self.outputs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux() -> Circuit {
        let mut c = Circuit::new("mux2");
        let s = c.add_input("s");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let ns = c.not(s);
        let t0 = c.and([s, a]);
        let t1 = c.and([ns, b]);
        let y = c.or([t0, t1]);
        c.add_output("y", y);
        c
    }

    #[test]
    fn construction_and_access() {
        let c = mux();
        assert_eq!(c.len(), 7);
        assert_eq!(c.input_count(), 3);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.output_count(), 1);
        assert_eq!(c.find("a"), Some(NodeId::from_index(1)));
        assert_eq!(c.node_name(NodeId::from_index(1)), Some("a"));
        assert_eq!(c.display_name(NodeId::from_index(4)), "n4");
        assert_eq!(c.input_position(NodeId::from_index(2)), Some(2));
        assert_eq!(c.input_position(NodeId::from_index(4)), None);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn eval_mux_truth_table() {
        let c = mux();
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let expect = if s { a } else { b };
                    assert_eq!(c.eval(&[s, a, b]), vec![expect], "s={s} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn duplicate_input_name_rejected() {
        let mut c = Circuit::new("t");
        c.add_input("x");
        assert!(matches!(
            c.try_add_input("x"),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn arity_violations_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        assert!(matches!(
            c.add_gate(GateKind::Not, [a, a]),
            Err(NetlistError::Arity { .. })
        ));
        assert!(matches!(
            c.add_gate(GateKind::And, []),
            Err(NetlistError::Arity { .. })
        ));
        assert!(matches!(
            c.add_gate(GateKind::Input, []),
            Err(NetlistError::Arity { .. })
        ));
    }

    #[test]
    fn dangling_fanin_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let ghost = NodeId::from_index(10);
        assert!(matches!(
            c.add_gate(GateKind::And, [a, ghost]),
            Err(NetlistError::DanglingFanin { .. })
        ));
    }

    #[test]
    fn outputs_can_share_and_repoint() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        let o1 = c.add_output("y1", g);
        let _o2 = c.add_output("y2", g);
        assert_eq!(c.eval(&[true, true]), vec![true, true]);
        c.set_output_node(o1, a);
        assert_eq!(c.eval(&[false, true]), vec![false, false]);
        assert_eq!(c.output(o1).name(), "y1");
    }

    #[test]
    fn duplicate_output_names_fail_validation() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        c.add_output("y", a);
        c.add_output("y", a);
        assert!(matches!(
            c.validate(),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn const_sources_evaluate() {
        let mut c = Circuit::new("t");
        let one = c.add_const(true);
        let zero = c.add_const(false);
        let g = c.and([one, zero]);
        c.add_output("y", g);
        c.add_output("k1", one);
        assert_eq!(c.eval(&[]), vec![false, true]);
    }

    #[test]
    fn eval_all_exposes_internal_nodes() {
        let c = mux();
        let vals = c.eval_all(&[true, true, false]);
        assert_eq!(vals.len(), 7);
        assert!(!vals[3]); // ns = !s
        assert!(vals[4]); // s & a
        assert!(!vals[5]); // ns & b
    }

    #[test]
    fn debug_is_nonempty_and_informative() {
        let c = mux();
        let s = format!("{c:?}");
        assert!(s.contains("mux2"));
        assert!(s.contains("gates"));
    }

    #[test]
    fn circuit_is_send_sync_clone() {
        fn assert_traits<T: Send + Sync + Clone>() {}
        assert_traits::<Circuit>();
    }
}
