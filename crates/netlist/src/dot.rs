//! Graphviz DOT export for visual inspection of netlists.

use crate::{Circuit, GateKind};
use std::fmt::Write as _;

/// Renders `circuit` as a Graphviz `digraph`.
///
/// Inputs are drawn as triangles, constants as diamonds, gates as boxes
/// labelled with their kind, and output slots as double circles. The output
/// is deterministic, so snapshots of it are stable in tests.
///
/// # Examples
///
/// ```
/// use relogic_netlist::{dot, Circuit};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.not(a);
/// c.add_output("y", g);
/// let text = dot::to_dot(&c);
/// assert!(text.contains("digraph"));
/// assert!(text.contains("not"));
/// ```
#[must_use]
pub fn to_dot(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", circuit.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (id, node) in circuit.iter() {
        let label = circuit.display_name(id);
        let (shape, text) = match node.kind() {
            GateKind::Input => ("triangle", label.clone()),
            GateKind::Const(v) => ("diamond", format!("{}", u8::from(v))),
            kind => ("box", format!("{label}\\n{kind}")),
        };
        let _ = writeln!(out, "  n{} [shape={shape}, label=\"{text}\"];", id.index());
    }
    for (id, node) in circuit.iter() {
        for &f in node.fanins() {
            let _ = writeln!(out, "  n{} -> n{};", f.index(), id.index());
        }
    }
    for (k, o) in circuit.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  out{k} [shape=doublecircle, label=\"{}\"];",
            o.name()
        );
        let _ = writeln!(out, "  n{} -> out{k};", o.node().index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        let text = to_dot(&c);
        assert!(text.starts_with("digraph \"t\""));
        assert!(text.contains("n0 -> n2"));
        assert!(text.contains("n1 -> n2"));
        assert!(text.contains("n2 -> out0"));
        assert!(text.contains("doublecircle"));
        assert!(text.contains("triangle"));
    }

    #[test]
    fn dot_renders_constants() {
        let mut c = Circuit::new("t");
        let k = c.add_const(true);
        c.add_output("y", k);
        assert!(to_dot(&c).contains("diamond"));
    }
}
