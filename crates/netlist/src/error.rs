//! Error types for netlist construction, validation, and parsing.

use crate::{GateKind, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, or parsing a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A combinational cycle was found through the given node.
    Cycle {
        /// A node known to lie on the cycle.
        node: NodeId,
    },
    /// A gate was created with a fanin count its kind does not accept.
    Arity {
        /// The offending gate kind.
        kind: GateKind,
        /// The fanin count that was supplied.
        arity: usize,
    },
    /// A gate references a node id that does not exist in the circuit.
    DanglingFanin {
        /// The referencing gate.
        gate: NodeId,
        /// The missing fanin id.
        fanin: NodeId,
    },
    /// Two distinct nodes were given the same name.
    DuplicateName {
        /// The contested name.
        name: String,
    },
    /// A textual format referenced a signal that was never defined.
    UndefinedSignal {
        /// The undefined signal name.
        name: String,
    },
    /// A signal was assigned (driven) more than once in a textual format.
    MultipleDrivers {
        /// The multiply-driven signal name.
        name: String,
    },
    /// A syntax error in a textual format.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// The netlist uses a construct this library does not support
    /// (e.g. sequential elements in the `.bench` format).
    Unsupported {
        /// Description of the unsupported construct.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Cycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            NetlistError::Arity { kind, arity } => {
                write!(f, "gate kind `{kind}` cannot take {arity} fanins")
            }
            NetlistError::DanglingFanin { gate, fanin } => {
                write!(f, "gate {gate} references nonexistent fanin {fanin}")
            }
            NetlistError::DuplicateName { name } => {
                write!(f, "name `{name}` is bound to more than one node")
            }
            NetlistError::UndefinedSignal { name } => {
                write!(f, "signal `{name}` is used but never defined")
            }
            NetlistError::MultipleDrivers { name } => {
                write!(f, "signal `{name}` is driven more than once")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetlistError::Unsupported { message } => {
                write!(f, "unsupported construct: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = NetlistError::Parse {
            line: 3,
            message: "expected `=`".into(),
        };
        assert_eq!(e.to_string(), "parse error on line 3: expected `=`");
        let e = NetlistError::Arity {
            kind: GateKind::Not,
            arity: 2,
        };
        assert!(e.to_string().contains("not"));
        assert!(e.to_string().contains('2'));
        let e = NetlistError::Cycle {
            node: NodeId::from_index(5),
        };
        assert!(e.to_string().contains("n5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
