//! ISCAS-85 `.bench` format parser and writer.
//!
//! The format is a flat gate list:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! INPUT(G2)
//! OUTPUT(G5)
//! G4 = NAND(G1, G2)
//! G5 = NOT(G4)
//! ```
//!
//! Only the combinational subset is accepted; a `DFF` gate yields
//! [`NetlistError::Unsupported`]. Signals may be used before they are
//! defined. A signal that is declared `OUTPUT` maps to an output slot
//! observing the node of the same name.

use super::{instantiate, Def, DefBody};
use crate::{Circuit, GateKind, NetlistError};
use std::collections::HashMap;

/// Parses `.bench` text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::Unsupported`] for sequential elements,
/// [`NetlistError::UndefinedSignal`] / [`NetlistError::MultipleDrivers`] for
/// inconsistent signal usage, and duplicate-name errors where applicable.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), relogic_netlist::NetlistError> {
/// let text = "\
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = AND(a, b)
/// ";
/// let c = relogic_netlist::bench::parse(text)?;
/// assert_eq!(c.eval(&[true, true]), vec![true]);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let mut circuit = Circuit::new("bench");
    let mut defs: HashMap<String, Def> = HashMap::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut order: Vec<String> = Vec::new();
    let mut declared_inputs: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(name) = directive(stripped, "INPUT") {
            let name = name.map_err(|message| NetlistError::Parse { line, message })?;
            declared_inputs.push(name.to_owned());
            circuit.try_add_input(name)?;
            continue;
        }
        if let Some(name) = directive(stripped, "OUTPUT") {
            let name = name.map_err(|message| NetlistError::Parse { line, message })?;
            outputs.push((name.to_owned(), line));
            continue;
        }
        // Gate line: `name = KIND(arg, arg, ...)`
        let (lhs, rhs) = stripped
            .split_once('=')
            .ok_or_else(|| NetlistError::Parse {
                line,
                message: "expected `INPUT(..)`, `OUTPUT(..)`, or `name = KIND(..)`".into(),
            })?;
        let name = lhs.trim();
        if name.is_empty() {
            return Err(NetlistError::Parse {
                line,
                message: "missing signal name before `=`".into(),
            });
        }
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
            line,
            message: "expected `KIND(args)` after `=`".into(),
        })?;
        if !rhs.ends_with(')') {
            return Err(NetlistError::Parse {
                line,
                message: "missing closing `)`".into(),
            });
        }
        let kind_name = rhs[..open].trim();
        let args_text = &rhs[open + 1..rhs.len() - 1];
        if kind_name.eq_ignore_ascii_case("dff") || kind_name.eq_ignore_ascii_case("dffsr") {
            return Err(NetlistError::Unsupported {
                message: format!("sequential element `{kind_name}` on line {line}"),
            });
        }
        let kind = GateKind::parse_name(kind_name).ok_or_else(|| NetlistError::Parse {
            line,
            message: format!("unknown gate kind `{kind_name}`"),
        })?;
        let fanins: Vec<String> = args_text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        if !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::Arity {
                kind,
                arity: fanins.len(),
            });
        }
        if defs.contains_key(name) || declared_inputs.iter().any(|i| i == name) {
            return Err(NetlistError::MultipleDrivers {
                name: name.to_owned(),
            });
        }
        defs.insert(
            name.to_owned(),
            Def {
                body: DefBody::Gate(kind),
                fanins,
                line,
            },
        );
        order.push(name.to_owned());
    }

    let resolved = instantiate(&mut circuit, &defs, &order)?;
    for (name, _line) in outputs {
        let node = resolved
            .get(&name)
            .copied()
            .or_else(|| circuit.find(&name))
            .ok_or(NetlistError::UndefinedSignal { name: name.clone() })?;
        circuit.add_output(name, node);
    }
    circuit.validate()?;
    Ok(circuit)
}

fn directive<'a>(line: &'a str, keyword: &str) -> Option<Result<&'a str, String>> {
    let rest = line
        .strip_prefix(keyword)
        .or_else(|| line.strip_prefix(&keyword.to_ascii_lowercase()))?;
    let rest = rest.trim_start();
    let inner = match rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        Some(inner) => inner.trim(),
        None => return Some(Err(format!("malformed `{keyword}(...)` directive"))),
    };
    if inner.is_empty() {
        return Some(Err(format!("empty `{keyword}(...)` directive")));
    }
    Some(Ok(inner))
}

/// Serializes a circuit to `.bench` text.
///
/// Unnamed nodes receive synthetic `N<i>` names. Constants, which the
/// format lacks, are emitted as `VDD`/`GND` gates understood by this
/// library's own parser (round-trips are lossless for circuits produced by
/// [`parse`]).
#[must_use]
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    let names = super::unique_node_names(circuit);
    let name_of = |id: crate::NodeId| -> String { names[id.index()].clone() };
    for &i in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", name_of(i)));
    }
    // The format identifies outputs by signal name, so an output slot whose
    // name differs from its node's (or that shares a node with another
    // slot) gets a BUFF alias; alias names are de-conflicted as needed.
    let mut taken: std::collections::HashSet<String> = names.iter().cloned().collect();
    let mut aliases: Vec<(String, String)> = Vec::new();
    let mut used_nodes: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut output_lines = String::new();
    for o in circuit.outputs() {
        let node_name = name_of(o.node());
        if o.name() == node_name && used_nodes.insert(o.node().index()) {
            output_lines.push_str(&format!("OUTPUT({node_name})\n"));
        } else {
            let mut alias = o.name().to_owned();
            while !taken.insert(alias.clone()) {
                alias.push('_');
            }
            output_lines.push_str(&format!("OUTPUT({alias})\n"));
            aliases.push((alias, node_name));
        }
    }
    out.push_str(&output_lines);
    for (id, node) in circuit.iter() {
        match node.kind() {
            GateKind::Input => {}
            GateKind::Const(v) => {
                out.push_str(&format!(
                    "{} = {}()\n",
                    name_of(id),
                    if v { "VDD" } else { "GND" }
                ));
            }
            kind => {
                let args: Vec<String> = node.fanins().iter().map(|&f| name_of(f)).collect();
                out.push_str(&format!(
                    "{} = {}({})\n",
                    name_of(id),
                    kind.name().to_ascii_uppercase(),
                    args.join(", ")
                ));
            }
        }
    }
    for (alias, target) in aliases {
        out.push_str(&format!("{alias} = BUFF({target})\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
# a tiny circuit
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
t1 = NAND(a, b)
y = XOR(t1, c)
z = NOT(t1)
";

    #[test]
    fn parse_small_circuit() {
        let c = parse(SMALL).unwrap();
        assert_eq!(c.input_count(), 3);
        assert_eq!(c.output_count(), 2);
        assert_eq!(c.gate_count(), 3);
        // y = !(a&b) ^ c ; z = a&b
        assert_eq!(c.eval(&[true, true, false]), vec![false, true]);
        assert_eq!(c.eval(&[false, true, false]), vec![true, false]);
    }

    #[test]
    fn forward_references_allowed() {
        let text = "\
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = BUFF(a)
";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[true]), vec![false]);
    }

    #[test]
    fn output_can_be_an_input() {
        let text = "\
INPUT(a)
OUTPUT(a)
";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[true]), vec![true]);
    }

    #[test]
    fn dff_is_unsupported() {
        let text = "INPUT(a)\nq = DFF(a)\n";
        assert!(matches!(parse(text), Err(NetlistError::Unsupported { .. })));
    }

    #[test]
    fn unknown_kind_is_a_parse_error() {
        let err = parse("INPUT(a)\ny = FROB(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn redefinition_rejected() {
        let text = "\
INPUT(a)
y = NOT(a)
y = BUFF(a)
";
        assert!(matches!(
            parse(text),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn undefined_output_rejected() {
        let text = "INPUT(a)\nOUTPUT(ghost)\n";
        assert!(matches!(
            parse(text),
            Err(NetlistError::UndefinedSignal { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let text = "\
INPUT(a)
p = AND(q, a)
q = NOT(p)
OUTPUT(p)
";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let err = parse("INPUT(a)\nwhat is this\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
        let err = parse("INPUT a\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_preserves_function() {
        let c = parse(SMALL).unwrap();
        let text = write(&c);
        let c2 = parse(&text).unwrap();
        assert_eq!(c2.input_count(), c.input_count());
        assert_eq!(c2.output_count(), c.output_count());
        for pattern in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|j| pattern >> j & 1 != 0).collect();
            assert_eq!(c.eval(&bits), c2.eval(&bits), "pattern {pattern:03b}");
        }
    }

    #[test]
    fn constants_roundtrip() {
        let mut c = Circuit::new("t");
        let one = c.add_const(true);
        let a = c.add_input("a");
        let g = c.and([one, a]);
        c.add_output("y", g);
        let text = write(&c);
        let c2 = parse(&text).unwrap();
        assert_eq!(c2.eval(&[true]), vec![true]);
        assert_eq!(c2.eval(&[false]), vec![false]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hi\n\nINPUT(a)  # trailing\nOUTPUT(a)\n";
        let c = parse(text).unwrap();
        assert_eq!(c.input_count(), 1);
    }
}
