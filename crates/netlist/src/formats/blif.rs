//! Berkeley Logic Interchange Format (BLIF) parser and writer, restricted to
//! the combinational `.names` subset.
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.names` with
//! single-output covers (on-set or off-set rows, `-` don't-cares), line
//! continuations with `\`, comments with `#`, `.end`. Sequential and
//! hierarchical constructs (`.latch`, `.subckt`, `.gate`) are rejected with
//! [`NetlistError::Unsupported`].
//!
//! Covers are expanded into AND/OR/NOT networks, so a parsed BLIF circuit is
//! an ordinary [`Circuit`] the reliability engines can analyze directly.

use super::{instantiate, Def, DefBody};
use crate::{Circuit, GateKind, NetlistError};
use std::collections::HashMap;

/// Parses BLIF text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed input,
/// [`NetlistError::Unsupported`] for sequential/hierarchical constructs, and
/// signal-consistency errors as documented on [`NetlistError`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), relogic_netlist::NetlistError> {
/// let text = "\
/// .model xor2
/// .inputs a b
/// .outputs y
/// .names a b y
/// 01 1
/// 10 1
/// .end
/// ";
/// let c = relogic_netlist::blif::parse(text)?;
/// assert_eq!(c.name(), "xor2");
/// assert_eq!(c.eval(&[true, false]), vec![true]);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let no_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let (content, continued) = match no_comment.trim_end().strip_suffix('\\') {
            Some(head) => (head.trim_end().to_owned(), true),
            None => (no_comment.trim_end().to_owned(), false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content.trim_start());
                if continued {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line, content));
                } else if !content.trim().is_empty() {
                    logical.push((line, content));
                }
            }
        }
    }
    if let Some((line, acc)) = pending {
        logical.push((line, acc));
    }

    let mut circuit = Circuit::new("blif");
    let mut defs: HashMap<String, Def> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut input_names: Vec<String> = Vec::new();

    let mut i = 0usize;
    while i < logical.len() {
        let (line, content) = (&logical[i].0, logical[i].1.trim());
        let line = *line;
        let mut tokens = content.split_whitespace();
        let head = tokens.next().unwrap_or("");
        match head {
            ".model" => {
                if let Some(name) = tokens.next() {
                    circuit.set_name(name);
                }
                i += 1;
            }
            ".inputs" => {
                for name in tokens {
                    input_names.push(name.to_owned());
                    circuit.try_add_input(name)?;
                }
                i += 1;
            }
            ".outputs" => {
                outputs.extend(tokens.map(str::to_owned));
                i += 1;
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_owned).collect();
                let Some((output, cover_inputs)) = signals.split_last() else {
                    return Err(NetlistError::Parse {
                        line,
                        message: "`.names` requires at least an output signal".into(),
                    });
                };
                // Collect cover rows until the next dot-directive.
                let mut cubes: Vec<Vec<u8>> = Vec::new();
                let mut on_value: Option<bool> = None;
                let mut j = i + 1;
                while j < logical.len() && !logical[j].1.trim_start().starts_with('.') {
                    let (row_line, row) = (logical[j].0, logical[j].1.trim());
                    let mut parts = row.split_whitespace();
                    let (cube, value) = if cover_inputs.is_empty() {
                        ("", parts.next().unwrap_or(""))
                    } else {
                        (parts.next().unwrap_or(""), parts.next().unwrap_or(""))
                    };
                    if parts.next().is_some() {
                        return Err(NetlistError::Parse {
                            line: row_line,
                            message: "too many fields in cover row".into(),
                        });
                    }
                    let v = match value {
                        "1" => true,
                        "0" => false,
                        other => {
                            return Err(NetlistError::Parse {
                                line: row_line,
                                message: format!("invalid cover output `{other}`"),
                            })
                        }
                    };
                    match on_value {
                        None => on_value = Some(v),
                        Some(prev) if prev != v => {
                            return Err(NetlistError::Parse {
                                line: row_line,
                                message: "cover mixes on-set and off-set rows".into(),
                            })
                        }
                        _ => {}
                    }
                    cubes.push(cube.as_bytes().to_vec());
                    j += 1;
                }
                if defs.contains_key(output) || input_names.iter().any(|n| n == output) {
                    return Err(NetlistError::MultipleDrivers {
                        name: output.clone(),
                    });
                }
                defs.insert(
                    output.clone(),
                    Def {
                        body: DefBody::Sop {
                            cubes,
                            on_value: on_value.unwrap_or(true),
                        },
                        fanins: cover_inputs.to_vec(),
                        line,
                    },
                );
                order.push(output.clone());
                i = j;
            }
            ".end" => {
                i += 1;
            }
            ".latch" | ".subckt" | ".gate" | ".mlatch" => {
                return Err(NetlistError::Unsupported {
                    message: format!("`{head}` on line {line}"),
                })
            }
            other if other.starts_with('.') => {
                // Ignore benign unknown directives (.default_input_arrival etc).
                i += 1;
            }
            _ => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unexpected content `{content}`"),
                })
            }
        }
    }

    let resolved = instantiate(&mut circuit, &defs, &order)?;
    for name in outputs {
        let node = resolved
            .get(&name)
            .copied()
            .or_else(|| circuit.find(&name))
            .ok_or(NetlistError::UndefinedSignal { name: name.clone() })?;
        circuit.add_output(name, node);
    }
    circuit.validate()?;
    Ok(circuit)
}

/// Serializes a circuit as BLIF.
///
/// Every gate becomes one `.names` cover; XOR/XNOR gates are expanded to
/// parity covers, so writing is `O(2^arity)` per parity gate (cheap for the
/// arities this library produces).
#[must_use]
pub fn write(circuit: &Circuit) -> String {
    use std::fmt::Write as _;
    let names = super::unique_node_names(circuit);
    let name_of = |id: crate::NodeId| -> String { names[id.index()].clone() };
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", circuit.name());
    let inputs: Vec<String> = circuit.inputs().iter().map(|&i| name_of(i)).collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    // Output slots may alias internal names; emit dedicated buffers when the
    // output name differs from the node name.
    let mut aliases: Vec<(String, String)> = Vec::new();
    let mut out_names: Vec<String> = Vec::new();
    for o in circuit.outputs() {
        let node_name = name_of(o.node());
        if o.name() == node_name {
            out_names.push(node_name);
        } else {
            out_names.push(o.name().to_owned());
            aliases.push((o.name().to_owned(), node_name));
        }
    }
    let _ = writeln!(out, ".outputs {}", out_names.join(" "));
    for (id, node) in circuit.iter() {
        let kind = node.kind();
        if kind == GateKind::Input {
            continue;
        }
        let args: Vec<String> = node.fanins().iter().map(|&f| name_of(f)).collect();
        let _ = writeln!(
            out,
            ".names {}{}{}",
            args.join(" "),
            if args.is_empty() { "" } else { " " },
            name_of(id)
        );
        let arity = node.arity();
        match kind {
            GateKind::Input => unreachable!(),
            GateKind::Const(true) => {
                let _ = writeln!(out, "1");
            }
            GateKind::Const(false) => {} // empty cover = constant 0
            GateKind::Buf => {
                let _ = writeln!(out, "1 1");
            }
            GateKind::Not => {
                let _ = writeln!(out, "0 1");
            }
            GateKind::And => {
                let _ = writeln!(out, "{} 1", "1".repeat(arity));
            }
            GateKind::Nand => {
                let _ = writeln!(out, "{} 0", "1".repeat(arity));
            }
            GateKind::Or => {
                let _ = writeln!(out, "{} 0", "0".repeat(arity));
            }
            GateKind::Nor => {
                let _ = writeln!(out, "{} 1", "0".repeat(arity));
            }
            GateKind::Xor | GateKind::Xnor => {
                for combo in 0..1usize << arity {
                    if kind.eval_combo(combo, arity) {
                        let cube: String = (0..arity)
                            .map(|j| if combo >> j & 1 != 0 { '1' } else { '0' })
                            .collect();
                        let _ = writeln!(out, "{cube} 1");
                    }
                }
            }
        }
    }
    for (alias, target) in aliases {
        let _ = writeln!(out, ".names {target} {alias}");
        let _ = writeln!(out, "1 1");
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAJ: &str = "\
.model maj3
.inputs a b c
.outputs y
.names a b c y
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parse_majority() {
        let c = parse(MAJ).unwrap();
        assert_eq!(c.name(), "maj3");
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|j| p >> j & 1 != 0).collect();
            let maj = bits.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(c.eval(&bits), vec![maj], "pattern {p:03b}");
        }
    }

    #[test]
    fn offset_cover() {
        let text = "\
.model nand2
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[true, true]), vec![false]);
        assert_eq!(c.eval(&[false, true]), vec![true]);
    }

    #[test]
    fn constant_covers() {
        let text = "\
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[false]), vec![true, false]);
    }

    #[test]
    fn continuation_lines() {
        let text = ".model t\n.inputs a \\\n  b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let c = parse(text).unwrap();
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.eval(&[true, true]), vec![true]);
    }

    #[test]
    fn latch_unsupported() {
        let text = ".model t\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Unsupported { .. })));
    }

    #[test]
    fn mixed_cover_rejected() {
        let text = ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("mixes"));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let text = ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n";
        assert!(matches!(
            parse(text),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn forward_reference_between_covers() {
        let text = "\
.model t
.inputs a
.outputs y
.names m y
0 1
.names a m
1 1
.end
";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[true]), vec![false]);
    }

    #[test]
    fn roundtrip_small_circuit() {
        let mut c = Circuit::new("rt");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.xor([a, b]);
        let n = c.nand([a, x]);
        c.set_node_name(x, "x").unwrap();
        c.set_node_name(n, "n").unwrap();
        c.add_output("n", n);
        c.add_output("also_x", x);
        let text = write(&c);
        let c2 = parse(&text).unwrap();
        for p in 0..4u32 {
            let bits: Vec<bool> = (0..2).map(|j| p >> j & 1 != 0).collect();
            assert_eq!(c.eval(&bits), c2.eval(&bits), "pattern {p:02b}");
        }
    }

    #[test]
    fn unknown_directives_ignored() {
        let text = ".model t\n.inputs a\n.outputs a\n.default_input_arrival 0 0\n.end\n";
        let c = parse(text).unwrap();
        assert_eq!(c.input_count(), 1);
    }
}
