//! Textual netlist interchange formats.
//!
//! Two classic EDA formats are supported, both restricted to the
//! combinational subset this library models:
//!
//! * [`bench`] — the ISCAS-85 / ISCAS-89 `.bench` gate-list format.
//! * [`blif`] — the Berkeley Logic Interchange Format (`.names` covers).
//! * [`verilog`] — structural gate-level Verilog (primitive instantiations).
//!
//! Both parsers accept signals referenced before their definition (common in
//! distributed benchmark files) by collecting definitions first and then
//! instantiating them in dependency order with cycle detection.

pub mod bench;
pub mod blif;
pub mod verilog;

use crate::{Circuit, GateKind, NetlistError, NodeId};
use std::collections::HashMap;

/// A parsed-but-not-yet-instantiated signal definition.
#[derive(Debug)]
pub(crate) enum DefBody {
    /// A plain gate of the given kind.
    Gate(GateKind),
    /// A BLIF single-output cover: each cube is one row of input literals
    /// (`0`, `1`, `-` per position). `on_value` is the constant output column
    /// (all rows of a BLIF cover must agree).
    Sop { cubes: Vec<Vec<u8>>, on_value: bool },
}

#[derive(Debug)]
pub(crate) struct Def {
    pub body: DefBody,
    pub fanins: Vec<String>,
    pub line: usize,
}

/// Instantiates `defs` into `circuit` in dependency order.
///
/// `inputs` must already exist in the circuit. Returns the id bound to each
/// definition name. Detects cycles and undefined signals.
pub(crate) fn instantiate(
    circuit: &mut Circuit,
    defs: &HashMap<String, Def>,
    order_hint: &[String],
) -> Result<HashMap<String, NodeId>, NetlistError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: HashMap<&str, Mark> = defs.keys().map(|k| (k.as_str(), Mark::White)).collect();
    let mut resolved: HashMap<String, NodeId> = HashMap::new();

    // Pre-seed with names already bound in the circuit (primary inputs).
    for id in circuit.node_ids().collect::<Vec<_>>() {
        if let Some(name) = circuit.node_name(id) {
            resolved.insert(name.to_owned(), id);
        }
    }

    // Iterative DFS: stack holds (name, is_resume). Fresh entries mark the
    // node Grey; resume entries re-scan after a child resolved.
    for root in order_hint {
        if resolved.contains_key(root) {
            continue;
        }
        let mut stack: Vec<(&str, bool)> = vec![(root.as_str(), false)];
        while let Some((name, is_resume)) = stack.pop() {
            if resolved.contains_key(name) {
                continue;
            }
            let def = defs
                .get(name)
                .ok_or_else(|| NetlistError::UndefinedSignal {
                    name: name.to_owned(),
                })?;
            if !is_resume {
                match marks[name] {
                    Mark::Black => continue,
                    Mark::Grey => {
                        return Err(NetlistError::Parse {
                            line: def.line,
                            message: format!("combinational cycle through `{name}`"),
                        })
                    }
                    Mark::White => {}
                }
                *marks.get_mut(name).unwrap() = Mark::Grey;
            }
            // Find the first still-unresolved fanin, if any.
            let mut pushed_child = false;
            for f in &def.fanins {
                if !resolved.contains_key(f.as_str()) {
                    if !defs.contains_key(f.as_str()) {
                        return Err(NetlistError::UndefinedSignal { name: f.clone() });
                    }
                    if marks[f.as_str()] == Mark::Grey {
                        return Err(NetlistError::Parse {
                            line: def.line,
                            message: format!("combinational cycle through `{f}`"),
                        });
                    }
                    stack.push((name, true));
                    stack.push((f.as_str(), false));
                    pushed_child = true;
                    break;
                }
            }
            if pushed_child {
                continue;
            }
            // All fanins resolved: build this definition.
            let fanin_ids: Vec<NodeId> = def.fanins.iter().map(|f| resolved[f]).collect();
            let id = build_def(circuit, &def.body, &fanin_ids, def.line)?;
            circuit.set_node_name(id, name)?;
            resolved.insert(name.to_owned(), id);
            *marks.get_mut(name).unwrap() = Mark::Black;
        }
    }
    Ok(resolved)
}

/// Unique textual names for every node, for the writers:
///
/// * bound names are kept;
/// * an unnamed node observed by exactly one output slot adopts that
///   slot's name (so writers need no alias gate for it);
/// * remaining unnamed nodes get synthetic `n<i>`-style names,
///   de-conflicted against every other name (BLIF off-set expansion can
///   leave interior nodes unnamed while a sibling holds the `n<i>` name
///   they would otherwise get).
pub(crate) fn unique_node_names(circuit: &Circuit) -> Vec<String> {
    let mut taken: std::collections::HashSet<String> = circuit
        .node_ids()
        .filter_map(|id| circuit.node_name(id).map(str::to_owned))
        .collect();

    // Output-slot adoption candidates: unnamed nodes observed exactly once.
    let mut observer: HashMap<usize, &str> = HashMap::new();
    let mut observer_count: HashMap<usize, usize> = HashMap::new();
    for o in circuit.outputs() {
        let i = o.node().index();
        *observer_count.entry(i).or_insert(0) += 1;
        observer.insert(i, o.name());
    }
    let mut adopted: HashMap<usize, String> = HashMap::new();
    for (&i, &slot_name) in &observer {
        if observer_count[&i] == 1
            && circuit.node_name(NodeId::from_index(i)).is_none()
            && !taken.contains(slot_name)
        {
            taken.insert(slot_name.to_owned());
            adopted.insert(i, slot_name.to_owned());
        }
    }

    circuit
        .node_ids()
        .map(|id| {
            if let Some(name) = circuit.node_name(id) {
                return name.to_owned();
            }
            if let Some(name) = adopted.get(&id.index()) {
                return name.clone();
            }
            let mut candidate = format!("n{}", id.index());
            while !taken.insert(candidate.clone()) {
                candidate.push('_');
            }
            candidate
        })
        .collect()
}

fn build_def(
    circuit: &mut Circuit,
    body: &DefBody,
    fanins: &[NodeId],
    line: usize,
) -> Result<NodeId, NetlistError> {
    match body {
        DefBody::Gate(GateKind::Const(v)) => Ok(circuit.add_const(*v)),
        DefBody::Gate(kind) => circuit.add_gate(*kind, fanins.iter().copied()),
        DefBody::Sop { cubes, on_value } => build_sop(circuit, cubes, *on_value, fanins, line),
    }
}

/// Builds a sum-of-products network for a BLIF cover.
///
/// Each cube becomes an AND of (possibly inverted) fanin literals; cubes are
/// OR-ed together; an off-set cover (`on_value == false`) is inverted.
fn build_sop(
    circuit: &mut Circuit,
    cubes: &[Vec<u8>],
    on_value: bool,
    fanins: &[NodeId],
    line: usize,
) -> Result<NodeId, NetlistError> {
    if cubes.is_empty() {
        // No rows: the function is constant 0 when rows would have set 1,
        // i.e. constant !on_value... by BLIF convention an empty cover is
        // constant 0 (and `.names x` with a single `1` row is constant 1).
        return Ok(circuit.add_const(!on_value));
    }
    let mut cube_nodes: Vec<NodeId> = Vec::with_capacity(cubes.len());
    for cube in cubes {
        if cube.len() != fanins.len() {
            return Err(NetlistError::Parse {
                line,
                message: format!(
                    "cube width {} does not match {} cover inputs",
                    cube.len(),
                    fanins.len()
                ),
            });
        }
        let mut literals: Vec<NodeId> = Vec::new();
        for (j, &c) in cube.iter().enumerate() {
            match c {
                b'1' => literals.push(fanins[j]),
                b'0' => literals.push(circuit.not(fanins[j])),
                b'-' => {}
                other => {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!("invalid cube character `{}`", other as char),
                    })
                }
            }
        }
        let cube_node = match literals.len() {
            0 => circuit.add_const(true),
            1 => literals[0],
            _ => circuit.and(literals),
        };
        cube_nodes.push(cube_node);
    }
    let or_node = if cube_nodes.len() == 1 {
        cube_nodes[0]
    } else {
        circuit.or(cube_nodes)
    };
    Ok(if on_value {
        // A cover node may already have a name if it aliases a literal; wrap
        // in a buffer only when needed so names stay unique.
        if circuit.node_name(or_node).is_some() {
            circuit.buf(or_node)
        } else {
            or_node
        }
    } else {
        circuit.not(or_node)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_resolves_forward_references() {
        let mut c = Circuit::new("t");
        c.add_input("a");
        c.add_input("b");
        let mut defs = HashMap::new();
        defs.insert(
            "y".to_owned(),
            Def {
                body: DefBody::Gate(GateKind::And),
                fanins: vec!["m".into(), "a".into()],
                line: 1,
            },
        );
        defs.insert(
            "m".to_owned(),
            Def {
                body: DefBody::Gate(GateKind::Not),
                fanins: vec!["b".into()],
                line: 2,
            },
        );
        let order = vec!["y".to_owned(), "m".to_owned()];
        let resolved = instantiate(&mut c, &defs, &order).unwrap();
        assert!(resolved.contains_key("y"));
        c.add_output("y", resolved["y"]);
        assert_eq!(c.eval(&[true, false]), vec![true]);
    }

    #[test]
    fn instantiate_detects_cycles() {
        let mut c = Circuit::new("t");
        c.add_input("a");
        let mut defs = HashMap::new();
        defs.insert(
            "p".to_owned(),
            Def {
                body: DefBody::Gate(GateKind::And),
                fanins: vec!["q".into(), "a".into()],
                line: 1,
            },
        );
        defs.insert(
            "q".to_owned(),
            Def {
                body: DefBody::Gate(GateKind::Not),
                fanins: vec!["p".into()],
                line: 2,
            },
        );
        let order = vec!["p".to_owned()];
        let err = instantiate(&mut c, &defs, &order).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn instantiate_detects_undefined_signals() {
        let mut c = Circuit::new("t");
        let mut defs = HashMap::new();
        defs.insert(
            "y".to_owned(),
            Def {
                body: DefBody::Gate(GateKind::Buf),
                fanins: vec!["ghost".into()],
                line: 1,
            },
        );
        let order = vec!["y".to_owned()];
        let err = instantiate(&mut c, &defs, &order).unwrap_err();
        assert!(matches!(err, NetlistError::UndefinedSignal { .. }));
    }

    #[test]
    fn sop_cover_semantics() {
        // XOR as on-set cover: rows 01 and 10.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = build_sop(&mut c, &[b"01".to_vec(), b"10".to_vec()], true, &[a, b], 1).unwrap();
        c.add_output("y", y);
        assert_eq!(c.eval(&[false, false]), vec![false]);
        assert_eq!(c.eval(&[false, true]), vec![true]);
        assert_eq!(c.eval(&[true, false]), vec![true]);
        assert_eq!(c.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn sop_offset_cover_inverts() {
        // NAND via off-set: row 11 -> 0.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = build_sop(&mut c, &[b"11".to_vec()], false, &[a, b], 1).unwrap();
        c.add_output("y", y);
        assert_eq!(c.eval(&[true, true]), vec![false]);
        assert_eq!(c.eval(&[true, false]), vec![true]);
    }

    #[test]
    fn sop_dont_cares_skip_literals() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let y = build_sop(&mut c, &[b"1-".to_vec()], true, &[a, b], 1).unwrap();
        c.add_output("y", y);
        assert_eq!(c.eval(&[true, false]), vec![true]);
        assert_eq!(c.eval(&[true, true]), vec![true]);
        assert_eq!(c.eval(&[false, true]), vec![false]);
    }

    #[test]
    fn sop_bad_cube_width_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let err = build_sop(&mut c, &[b"10".to_vec()], true, &[a], 7).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 7, .. }));
    }
}
