//! Structural (gate-level) Verilog parser and writer.
//!
//! Supports the subset used by gate-level benchmark distributions:
//!
//! ```verilog
//! // line and /* block */ comments
//! module c17 (N1, N2, N3, N6, N7, N22, N23);
//!   input N1, N2, N3, N6, N7;
//!   output N22, N23;
//!   wire N10, N11;
//!   nand NAND2_1 (N10, N1, N3);   // first port is the output
//!   nand (N11, N3, N6);           // instance names are optional
//!   assign N23 = N11;             // simple wire aliases
//! endmodule
//! ```
//!
//! Gate primitives: `and`, `nand`, `or`, `nor`, `xor`, `xnor`, `not`,
//! `buf`. Vectors, parameters, behavioural constructs, and hierarchies are
//! rejected with [`NetlistError::Unsupported`].

use super::{instantiate, Def, DefBody};
use crate::{Circuit, GateKind, NetlistError};
use std::collections::HashMap;

/// Parses structural Verilog into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed input,
/// [`NetlistError::Unsupported`] for constructs outside the structural
/// subset, and signal-consistency errors as documented on
/// [`NetlistError`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), relogic_netlist::NetlistError> {
/// let text = "\
/// module half_adder (a, b, s, c);
///   input a, b;
///   output s, c;
///   xor (s, a, b);
///   and (c, a, b);
/// endmodule
/// ";
/// let circuit = relogic_netlist::verilog::parse(text)?;
/// assert_eq!(circuit.name(), "half_adder");
/// assert_eq!(circuit.eval(&[true, true]), vec![false, true]);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let statements = split_statements(text)?;
    let mut circuit = Circuit::new("verilog");
    let mut defs: HashMap<String, Def> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut declared_inputs: Vec<String> = Vec::new();
    let mut in_module = false;
    let mut module_seen = false;

    for (line, stmt) in statements {
        let tokens = tokenize(&stmt);
        if tokens.is_empty() {
            continue;
        }
        match tokens[0].as_str() {
            "module" => {
                if module_seen {
                    return Err(NetlistError::Unsupported {
                        message: format!("multiple modules (line {line})"),
                    });
                }
                module_seen = true;
                in_module = true;
                if let Some(name) = tokens.get(1) {
                    circuit.set_name(name.clone());
                }
                // The header port list is ignored; declarations are
                // authoritative.
            }
            "endmodule" => {
                in_module = false;
            }
            "input" | "output" | "wire" => {
                if !in_module {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!("`{}` outside a module", tokens[0]),
                    });
                }
                if tokens.iter().any(|t| t == "[") {
                    return Err(NetlistError::Unsupported {
                        message: format!("vector declaration on line {line}"),
                    });
                }
                for name in tokens[1..].iter().filter(|t| is_identifier(t)) {
                    match tokens[0].as_str() {
                        "input" => {
                            declared_inputs.push(name.clone());
                            circuit.try_add_input(name.clone())?;
                        }
                        "output" => outputs.push(name.clone()),
                        _ => {} // wires need no declaration in our model
                    }
                }
            }
            "assign" => {
                // assign lhs = rhs;
                if tokens.len() != 4 || tokens[2] != "=" {
                    return Err(NetlistError::Unsupported {
                        message: format!("only `assign wire = wire;` is supported (line {line})"),
                    });
                }
                let (lhs, rhs) = (tokens[1].clone(), tokens[3].clone());
                if defs.contains_key(&lhs) || declared_inputs.contains(&lhs) {
                    return Err(NetlistError::MultipleDrivers { name: lhs });
                }
                defs.insert(
                    lhs.clone(),
                    Def {
                        body: DefBody::Gate(GateKind::Buf),
                        fanins: vec![rhs],
                        line,
                    },
                );
                order.push(lhs);
            }
            prim => {
                let Some(kind) = parse_primitive(prim) else {
                    return Err(NetlistError::Unsupported {
                        message: format!("construct `{prim}` on line {line}"),
                    });
                };
                // [instance-name] ( out, in... )
                let open =
                    tokens
                        .iter()
                        .position(|t| t == "(")
                        .ok_or_else(|| NetlistError::Parse {
                            line,
                            message: "expected `(` in gate instantiation".into(),
                        })?;
                if *tokens.last().expect("nonempty") != ")" {
                    return Err(NetlistError::Parse {
                        line,
                        message: "expected `)` at end of gate instantiation".into(),
                    });
                }
                let ports: Vec<String> = tokens[open + 1..tokens.len() - 1]
                    .iter()
                    .filter(|t| *t != ",")
                    .cloned()
                    .collect();
                let Some((out, fanins)) = ports.split_first() else {
                    return Err(NetlistError::Parse {
                        line,
                        message: "gate instantiation needs at least an output port".into(),
                    });
                };
                if !kind.accepts_arity(fanins.len()) {
                    return Err(NetlistError::Arity {
                        kind,
                        arity: fanins.len(),
                    });
                }
                if defs.contains_key(out) || declared_inputs.contains(out) {
                    return Err(NetlistError::MultipleDrivers { name: out.clone() });
                }
                defs.insert(
                    out.clone(),
                    Def {
                        body: DefBody::Gate(kind),
                        fanins: fanins.to_vec(),
                        line,
                    },
                );
                order.push(out.clone());
            }
        }
    }
    if !module_seen {
        return Err(NetlistError::Parse {
            line: 1,
            message: "no `module` found".into(),
        });
    }

    let resolved = instantiate(&mut circuit, &defs, &order)?;
    for name in outputs {
        let node = resolved
            .get(&name)
            .copied()
            .or_else(|| circuit.find(&name))
            .ok_or(NetlistError::UndefinedSignal { name: name.clone() })?;
        circuit.add_output(name, node);
    }
    circuit.validate()?;
    Ok(circuit)
}

fn is_identifier(token: &str) -> bool {
    token
        .chars()
        .all(|c| c.is_alphanumeric() || c == '_' || c == '$')
        && !token.is_empty()
}

fn parse_primitive(word: &str) -> Option<GateKind> {
    Some(match word {
        "and" => GateKind::And,
        "nand" => GateKind::Nand,
        "or" => GateKind::Or,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "not" => GateKind::Not,
        "buf" => GateKind::Buf,
        _ => return None,
    })
}

/// Strips comments and splits on `;`, tracking line numbers.
fn split_statements(text: &str) -> Result<Vec<(usize, String)>, NetlistError> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut current = String::new();
    let mut start_line = 1usize;
    let mut in_block_comment = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let mut rest = raw;
        let mut cleaned = String::new();
        loop {
            if in_block_comment {
                match rest.find("*/") {
                    Some(pos) => {
                        in_block_comment = false;
                        rest = &rest[pos + 2..];
                    }
                    None => break,
                }
            } else {
                let line_c = rest.find("//");
                let block_c = rest.find("/*");
                match (line_c, block_c) {
                    (Some(l), Some(b)) if l < b => {
                        cleaned.push_str(&rest[..l]);
                        break;
                    }
                    (Some(_), None) => {
                        cleaned.push_str(&rest[..line_c.expect("checked")]);
                        break;
                    }
                    (_, Some(b)) => {
                        cleaned.push_str(&rest[..b]);
                        in_block_comment = true;
                        rest = &rest[b + 2..];
                    }
                    (None, None) => {
                        cleaned.push_str(rest);
                        break;
                    }
                }
            }
        }
        // `endmodule` carries no semicolon: make it a statement of its own.
        let cleaned = cleaned.replace("endmodule", "; endmodule ;");
        for ch in cleaned.chars() {
            if ch == ';' {
                out.push((start_line, std::mem::take(&mut current)));
                start_line = line;
            } else {
                current.push(ch);
            }
        }
        if current.trim().is_empty() {
            start_line = line + 1;
        }
        current.push(' ');
    }
    if !current.trim().is_empty() {
        out.push((start_line, current));
    }
    Ok(out
        .into_iter()
        .filter_map(|(line, stmt)| {
            let trimmed = stmt.trim().to_owned();
            if trimmed.is_empty() {
                None
            } else {
                Some((line, trimmed))
            }
        })
        .collect())
}

/// Splits a statement into identifier / punctuation tokens.
fn tokenize(stmt: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in stmt.chars() {
        match ch {
            '(' | ')' | ',' | '=' | '[' | ']' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Serializes a circuit as structural Verilog.
///
/// Unnamed nodes receive synthetic `n<i>` names; constants, which the gate
/// primitives cannot express, are emitted as `assign` of `1'b0`/`1'b1` —
/// rejected by this parser but accepted by real Verilog tools. Circuits
/// containing constants therefore round-trip through `bench`/`blif`
/// instead.
#[must_use]
pub fn write(circuit: &Circuit) -> String {
    use std::fmt::Write as _;
    let names = super::unique_node_names(circuit);
    let name_of = |id: crate::NodeId| -> String { names[id.index()].clone() };
    let mut out = String::new();
    let inputs: Vec<String> = circuit.inputs().iter().map(|&i| name_of(i)).collect();
    // Output ports: use the output slot names, aliasing when they differ
    // from the driving node's name.
    let out_ports: Vec<String> = circuit
        .outputs()
        .iter()
        .map(|o| o.name().to_owned())
        .collect();
    let mut ports = inputs.clone();
    ports.extend(out_ports.iter().cloned());
    let _ = writeln!(
        out,
        "module {} ({});",
        sanitize(circuit.name()),
        ports.join(", ")
    );
    if !inputs.is_empty() {
        let _ = writeln!(out, "  input {};", inputs.join(", "));
    }
    if !out_ports.is_empty() {
        let _ = writeln!(out, "  output {};", out_ports.join(", "));
    }
    let wires: Vec<String> = circuit
        .iter()
        .filter(|(_, n)| n.kind().is_gate())
        .map(|(id, _)| name_of(id))
        .filter(|n| !out_ports.contains(n))
        .collect();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    for (id, node) in circuit.iter() {
        match node.kind() {
            GateKind::Input => {}
            GateKind::Const(v) => {
                let _ = writeln!(out, "  assign {} = 1'b{};", name_of(id), u8::from(v));
            }
            kind => {
                let args: Vec<String> = node.fanins().iter().map(|&f| name_of(f)).collect();
                let _ = writeln!(
                    out,
                    "  {} g{} ({}, {});",
                    kind.name(),
                    id.index(),
                    name_of(id),
                    args.join(", ")
                );
            }
        }
    }
    for o in circuit.outputs() {
        let driver = name_of(o.node());
        if driver != o.name() {
            let _ = writeln!(out, "  assign {} = {};", o.name(), driver);
        }
    }
    out.push_str("endmodule\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "top".to_owned()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17_STYLE: &str = "\
// ISCAS-85 style netlist
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
";

    #[test]
    fn parses_c17() {
        let c = parse(C17_STYLE).unwrap();
        assert_eq!(c.name(), "c17");
        assert_eq!(c.input_count(), 5);
        assert_eq!(c.output_count(), 2);
        assert_eq!(c.gate_count(), 6);
        // N22 = !(N10 & N16); check one vector: all inputs 1.
        let out = c.eval(&[true; 5]);
        // N10 = !(1&1)=0, N11 = 0, N16 = !(1&0)=1, N19 = !(0&1)=1,
        // N22 = !(0&1)=1, N23 = !(1&1)=0.
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn instance_names_are_optional_and_assign_works() {
        let text = "\
module t (a, b, y, z);
  input a, b;
  output y, z;
  and (y, a, b);
  assign z = y;
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[true, true]), vec![true, true]);
        assert_eq!(c.eval(&[true, false]), vec![false, false]);
    }

    #[test]
    fn block_comments_and_multiline_statements() {
        let text = "\
module t (a, y);
  input a; output y;
  /* a
     block comment */
  not g
    (y,
     a);
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[false]), vec![true]);
    }

    #[test]
    fn forward_references_resolve() {
        let text = "\
module t (a, y);
  input a;
  output y;
  not (y, m);
  buf (m, a);
endmodule
";
        let c = parse(text).unwrap();
        assert_eq!(c.eval(&[true]), vec![false]);
    }

    #[test]
    fn unsupported_constructs_are_reported() {
        assert!(matches!(
            parse("module t (a); input [3:0] a; endmodule"),
            Err(NetlistError::Unsupported { .. })
        ));
        assert!(matches!(
            parse("module t (y); output y; always @(posedge clk) y <= 1; endmodule"),
            Err(NetlistError::Unsupported { .. })
        ));
        assert!(matches!(
            parse("module a (x); input x; endmodule module b (y); input y; endmodule"),
            Err(NetlistError::Unsupported { .. })
        ));
        assert!(matches!(parse("wire w;"), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let text = "\
module t (a, y);
  input a;
  output y;
  not (y, a);
  buf (y, a);
endmodule
";
        assert!(matches!(
            parse(text),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn roundtrip_preserves_function() {
        let original = parse(C17_STYLE).unwrap();
        let text = write(&original);
        let back = parse(&text).unwrap();
        assert_eq!(back.input_count(), original.input_count());
        assert_eq!(back.output_count(), original.output_count());
        for v in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|j| v >> j & 1 != 0).collect();
            assert_eq!(original.eval(&bits), back.eval(&bits), "v={v:05b}");
        }
    }

    #[test]
    fn writer_aliases_renamed_outputs() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.set_node_name(g, "inv_out").unwrap();
        c.add_output("y", g); // output name differs from node name
        let text = write(&c);
        assert!(text.contains("assign y = inv_out;"), "{text}");
        let back = parse(&text).unwrap();
        assert_eq!(back.eval(&[true]), vec![false]);
    }
}
