//! Gate kinds and their Boolean semantics.
//!
//! [`GateKind`] is the single source of truth for how a node computes its
//! value: scalar evaluation, 64-lane packed evaluation, truth-table
//! enumeration, and arity constraints all live here so that the simulator,
//! the BDD bridge, and the analytical engines cannot drift apart.

use std::fmt;

/// The Boolean function computed by a netlist node.
///
/// `Input` and `Const` are sources (arity 0); `Buf`/`Not` are unary; the
/// remaining kinds accept any arity ≥ 1 with the usual n-ary semantics
/// (`Xor` is odd parity, `Xnor` even parity).
///
/// # Examples
///
/// ```
/// use relogic_netlist::GateKind;
///
/// assert!(GateKind::And.eval(&[true, true]));
/// assert!(!GateKind::Nand.eval(&[true, true]));
/// assert!(GateKind::Xor.eval(&[true, true, true])); // odd parity
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// Primary input: a free Boolean variable of the circuit.
    Input,
    /// Constant source driving the contained value.
    Const(bool),
    /// Identity (used for fanout buffering).
    Buf,
    /// Inverter.
    Not,
    /// n-ary conjunction.
    And,
    /// n-ary negated conjunction.
    Nand,
    /// n-ary disjunction.
    Or,
    /// n-ary negated disjunction.
    Nor,
    /// n-ary odd parity.
    Xor,
    /// n-ary even parity.
    Xnor,
}

impl GateKind {
    /// All logic-gate kinds (sources excluded), useful for exhaustive tests
    /// and random generation.
    pub const LOGIC_KINDS: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// A stable one-byte code for on-disk serialization. The mapping is
    /// part of the persistent artifact-store format: codes must never be
    /// renumbered, only appended (see [`GateKind::from_wire_code`]).
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            GateKind::Input => 0,
            GateKind::Const(false) => 1,
            GateKind::Const(true) => 2,
            GateKind::Buf => 3,
            GateKind::Not => 4,
            GateKind::And => 5,
            GateKind::Nand => 6,
            GateKind::Or => 7,
            GateKind::Nor => 8,
            GateKind::Xor => 9,
            GateKind::Xnor => 10,
        }
    }

    /// Inverse of [`GateKind::wire_code`]; `None` for codes no kind maps
    /// to (a deserializer must treat those as corruption, not panic).
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<GateKind> {
        Some(match code {
            0 => GateKind::Input,
            1 => GateKind::Const(false),
            2 => GateKind::Const(true),
            3 => GateKind::Buf,
            4 => GateKind::Not,
            5 => GateKind::And,
            6 => GateKind::Nand,
            7 => GateKind::Or,
            8 => GateKind::Nor,
            9 => GateKind::Xor,
            10 => GateKind::Xnor,
            _ => return None,
        })
    }

    /// Returns `true` for `Input` and `Const`, which take no fanins.
    #[must_use]
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const(_))
    }

    /// Returns `true` if this kind computes a logic function of fanins.
    #[must_use]
    pub fn is_gate(self) -> bool {
        !self.is_source()
    }

    /// Returns `true` if the gate's output is the complement of the
    /// corresponding non-inverting kind (`Nand`, `Nor`, `Xnor`, `Not`).
    #[must_use]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The range of fanin counts this kind accepts, as `(min, max)`.
    ///
    /// `max` is [`usize::MAX`] for the n-ary kinds; arity is additionally
    /// capped by [`Circuit`](crate::Circuit) policy when gates are created.
    #[must_use]
    pub fn arity_range(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const(_) => (0, 0),
            GateKind::Buf | GateKind::Not => (1, 1),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (1, usize::MAX),
        }
    }

    /// Returns `true` if `arity` fanins are acceptable for this kind.
    #[must_use]
    pub fn accepts_arity(self, arity: usize) -> bool {
        let (lo, hi) = self.arity_range();
        (lo..=hi).contains(&arity)
    }

    /// Evaluates the gate on scalar fanin values.
    ///
    /// # Panics
    ///
    /// Panics if `fanins.len()` violates [`GateKind::accepts_arity`], or if a
    /// source kind is evaluated with fanins.
    #[must_use]
    pub fn eval(self, fanins: &[bool]) -> bool {
        debug_assert!(
            self.accepts_arity(fanins.len()),
            "{self:?} cannot take {} fanins",
            fanins.len()
        );
        match self {
            GateKind::Input => panic!("primary inputs have no evaluation rule"),
            GateKind::Const(v) => v,
            GateKind::Buf => fanins[0],
            GateKind::Not => !fanins[0],
            GateKind::And => fanins.iter().all(|&b| b),
            GateKind::Nand => !fanins.iter().all(|&b| b),
            GateKind::Or => fanins.iter().any(|&b| b),
            GateKind::Nor => !fanins.iter().any(|&b| b),
            GateKind::Xor => fanins.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !fanins.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// Evaluates the gate across 64 packed patterns at once.
    ///
    /// Bit `k` of the result is the gate output for pattern `k`; this is the
    /// kernel of the parallel-pattern simulator.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) under the same conditions as [`GateKind::eval`].
    #[must_use]
    pub fn eval_word(self, fanins: &[u64]) -> u64 {
        debug_assert!(
            self.accepts_arity(fanins.len()),
            "{self:?} cannot take {} fanins",
            fanins.len()
        );
        match self {
            GateKind::Input => panic!("primary inputs have no evaluation rule"),
            GateKind::Const(false) => 0,
            GateKind::Const(true) => u64::MAX,
            GateKind::Buf => fanins[0],
            GateKind::Not => !fanins[0],
            GateKind::And => fanins.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nand => !fanins.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => fanins.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nor => !fanins.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => fanins.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !fanins.iter().fold(0, |acc, &w| acc ^ w),
        }
    }

    /// Evaluates the gate on the fanin combination encoded by `combo`.
    ///
    /// Bit `j` of `combo` is the value of fanin `j`. This is the
    /// truth-table form used by the single-pass reliability engine, where a
    /// gate's weight vector indexes input combinations the same way.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `arity` is unacceptable for this kind or
    /// exceeds 63.
    #[must_use]
    pub fn eval_combo(self, combo: usize, arity: usize) -> bool {
        debug_assert!(arity < 64, "combo evaluation supports arity < 64");
        debug_assert!(
            self.accepts_arity(arity),
            "{self:?} cannot take {arity} fanins"
        );
        match self {
            GateKind::Input => panic!("primary inputs have no evaluation rule"),
            GateKind::Const(v) => v,
            GateKind::Buf => combo & 1 != 0,
            GateKind::Not => combo & 1 == 0,
            GateKind::And => combo == (1usize << arity) - 1,
            GateKind::Nand => combo != (1usize << arity) - 1,
            GateKind::Or => combo != 0,
            GateKind::Nor => combo == 0,
            GateKind::Xor => (combo.count_ones() & 1) == 1,
            GateKind::Xnor => (combo.count_ones() & 1) == 0,
        }
    }

    /// The canonical lowercase name used by the textual formats.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Const(false) => "const0",
            GateKind::Const(true) => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
        }
    }

    /// Parses a gate-kind name as used by the ISCAS-85 `.bench` format
    /// (case-insensitive; `BUFF` is accepted as an alias for `buf`).
    ///
    /// Returns `None` for unknown names and for `input` (which the formats
    /// declare through dedicated directives, not gate lines).
    #[must_use]
    pub fn parse_name(name: &str) -> Option<GateKind> {
        let lower = name.to_ascii_lowercase();
        Some(match lower.as_str() {
            "buf" | "buff" => GateKind::Buf,
            "not" | "inv" => GateKind::Not,
            "and" => GateKind::And,
            "nand" => GateKind::Nand,
            "or" => GateKind::Or,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "const0" | "gnd" => GateKind::Const(false),
            "const1" | "vdd" => GateKind::Const(true),
            _ => return None,
        })
    }

    /// Returns the non-inverting dual of this kind (`Nand → And`, …) along
    /// with whether an inversion was stripped.
    ///
    /// Useful for algorithms that canonicalize to positive-phase gates plus
    /// an output complement.
    #[must_use]
    pub fn positive_phase(self) -> (GateKind, bool) {
        match self {
            GateKind::Nand => (GateKind::And, true),
            GateKind::Nor => (GateKind::Or, true),
            GateKind::Xnor => (GateKind::Xor, true),
            GateKind::Not => (GateKind::Buf, true),
            other => (other, false),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(combo: usize, arity: usize) -> Vec<bool> {
        (0..arity).map(|j| combo >> j & 1 != 0).collect()
    }

    #[test]
    fn scalar_truth_tables() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false, true]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[false, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::Const(true).eval(&[]));
        assert!(!GateKind::Const(false).eval(&[]));
    }

    #[test]
    fn combo_eval_matches_scalar_eval() {
        for kind in GateKind::LOGIC_KINDS {
            let arities: &[usize] = if matches!(kind, GateKind::Buf | GateKind::Not) {
                &[1]
            } else {
                &[1, 2, 3, 4, 5]
            };
            for &arity in arities {
                for combo in 0..1usize << arity {
                    assert_eq!(
                        kind.eval_combo(combo, arity),
                        kind.eval(&bits(combo, arity)),
                        "{kind:?} arity {arity} combo {combo:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        // Pack all 16 combinations of 4 inputs into the low 16 lanes.
        let mut lanes = [0u64; 4];
        for combo in 0..16 {
            for (j, lane) in lanes.iter_mut().enumerate() {
                if combo >> j & 1 != 0 {
                    *lane |= 1 << combo;
                }
            }
        }
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let word = kind.eval_word(&lanes);
            for combo in 0..16 {
                assert_eq!(
                    word >> combo & 1 != 0,
                    kind.eval(&bits(combo, 4)),
                    "{kind:?} combo {combo:04b}"
                );
            }
        }
        assert_eq!(GateKind::Not.eval_word(&[0b10]), !0b10);
        assert_eq!(GateKind::Buf.eval_word(&[0b10]), 0b10);
        assert_eq!(GateKind::Const(true).eval_word(&[]), u64::MAX);
        assert_eq!(GateKind::Const(false).eval_word(&[]), 0);
    }

    #[test]
    fn arity_constraints() {
        assert!(GateKind::Input.accepts_arity(0));
        assert!(!GateKind::Input.accepts_arity(1));
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(1));
        assert!(GateKind::And.accepts_arity(17));
        assert!(!GateKind::And.accepts_arity(0));
    }

    #[test]
    fn name_parse_roundtrip() {
        for kind in [
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Const(false),
            GateKind::Const(true),
        ] {
            assert_eq!(GateKind::parse_name(kind.name()), Some(kind), "{kind}");
        }
        assert_eq!(GateKind::parse_name("BUFF"), Some(GateKind::Buf));
        assert_eq!(GateKind::parse_name("NAND"), Some(GateKind::Nand));
        assert_eq!(GateKind::parse_name("widget"), None);
        assert_eq!(GateKind::parse_name("input"), None);
    }

    #[test]
    fn positive_phase_strips_inversion() {
        assert_eq!(GateKind::Nand.positive_phase(), (GateKind::And, true));
        assert_eq!(GateKind::Xor.positive_phase(), (GateKind::Xor, false));
        for kind in GateKind::LOGIC_KINDS {
            let (pos, inv) = kind.positive_phase();
            for combo in 0..4usize {
                let arity = if matches!(kind, GateKind::Buf | GateKind::Not) {
                    1
                } else {
                    2
                };
                if combo < 1 << arity {
                    assert_eq!(
                        kind.eval_combo(combo, arity),
                        pos.eval_combo(combo, arity) ^ inv
                    );
                }
            }
        }
    }

    #[test]
    fn inverting_flags() {
        assert!(GateKind::Nand.is_inverting());
        assert!(GateKind::Not.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(GateKind::Input.is_source());
        assert!(GateKind::Const(true).is_source());
        assert!(GateKind::Xor.is_gate());
    }

    #[test]
    fn wire_codes_round_trip_and_reject_garbage() {
        let all = [
            GateKind::Input,
            GateKind::Const(false),
            GateKind::Const(true),
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        let mut seen = std::collections::HashSet::new();
        for kind in all {
            let code = kind.wire_code();
            assert!(seen.insert(code), "duplicate wire code {code}");
            assert_eq!(GateKind::from_wire_code(code), Some(kind));
        }
        for code in 11u8..=255 {
            assert_eq!(GateKind::from_wire_code(code), None);
        }
    }
}
