//! Typed identifiers for netlist entities.
//!
//! Newtypes keep node handles, output slots, and primary-input positions
//! from being confused with one another or with raw indices
//! (C-NEWTYPE). All IDs are cheap `u32` wrappers and are only meaningful
//! relative to the [`Circuit`](crate::Circuit) that issued them.

use std::fmt;

/// Handle to a node (primary input, constant, or gate) inside a
/// [`Circuit`](crate::Circuit).
///
/// `NodeId`s are dense: the first node created receives index 0, the next
/// index 1, and so on, which lets analyses use plain vectors keyed by
/// [`NodeId::index`] instead of hash maps.
///
/// # Examples
///
/// ```
/// use relogic_netlist::Circuit;
///
/// let mut c = Circuit::new("demo");
/// let a = c.add_input("a");
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a `NodeId` from a raw index.
    ///
    /// Primarily useful for analyses that store results in dense vectors and
    /// need to convert back to handles. Passing an index that was never
    /// issued by the owning circuit yields a dangling handle; circuit
    /// accessors will panic on such handles.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("netlist node index exceeds u32 range"))
    }

    /// Returns the dense index of this node.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to a primary-output slot of a [`Circuit`](crate::Circuit).
///
/// Outputs are *slots* (name + driven node), not nodes: several outputs may
/// observe the same node, and an output can be re-pointed at a different
/// node without touching the logic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OutputId(pub(crate) u32);

impl OutputId {
    /// Creates an `OutputId` from a raw index.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        OutputId(u32::try_from(index).expect("netlist output index exceeds u32 range"))
    }

    /// Returns the dense index of this output slot.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for OutputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for OutputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn output_id_roundtrip() {
        let id = OutputId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "o7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(OutputId::from_index(0) < OutputId::from_index(9));
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from_index(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
