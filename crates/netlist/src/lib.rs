//! Gate-level combinational netlists for reliability analysis.
//!
//! `relogic-netlist` is the structural foundation of the `relogic` suite — a
//! Rust reproduction of *Choudhury & Mohanram, "Accurate and scalable
//! reliability analysis of logic circuits", DATE 2007*. It provides:
//!
//! * [`Circuit`] — an append-only netlist that is topologically sorted by
//!   construction (gates can only reference already-created fanins), so it
//!   can never contain a combinational cycle and analyses can sweep nodes in
//!   id order.
//! * [`GateKind`] — the Boolean semantics of every node, with scalar,
//!   64-lane packed, and truth-table-combination evaluation kernels shared
//!   by the simulator and the analytical reliability engines.
//! * [`structure`] — logic levels, fanout/stem maps, transitive fanin cones,
//!   cone extraction, and summary statistics.
//! * [`bench`] / [`blif`] / [`verilog`] — parsers and writers for the
//!   ISCAS-85 `.bench`, Berkeley BLIF, and structural gate-level Verilog
//!   interchange formats (combinational subsets).
//! * [`dot`] — Graphviz export.
//!
//! # Examples
//!
//! Parse a `.bench` netlist and inspect its structure:
//!
//! ```
//! # fn main() -> Result<(), relogic_netlist::NetlistError> {
//! use relogic_netlist::{bench, structure::CircuitStats};
//!
//! let c = bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")?;
//! let stats = CircuitStats::of(&c);
//! assert_eq!(stats.gates, 1);
//! assert_eq!(stats.depth, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod circuit;
pub mod dot;
mod error;
mod formats;
mod gate;
mod id;
pub mod structure;

pub use circuit::{Circuit, Node, Output};
pub use error::NetlistError;
pub use formats::{bench, blif, verilog};
pub use gate::GateKind;
pub use id::{NodeId, OutputId};
