//! Structural analyses over a [`Circuit`]: logic levels, fanout, stems,
//! transitive fanin cones, cone extraction, and summary statistics.
//!
//! All analyses run in `O(nodes + edges)` and return dense vectors keyed by
//! [`NodeId::index`], matching the circuit's construction order.

use crate::{Circuit, GateKind, NodeId, OutputId};
use std::collections::HashMap;

/// Per-node fanout information for a circuit.
///
/// Distinguishes *logic fanout* (how many gate fanin slots read the node,
/// counting duplicates) from *observation* by primary-output slots, because
/// reconvergence — the phenomenon the reliability algorithms care about —
/// only happens through logic fanout.
#[derive(Clone, Debug)]
pub struct FanoutMap {
    readers: Vec<Vec<NodeId>>,
    output_observers: Vec<u32>,
}

impl FanoutMap {
    /// Builds the fanout map of `circuit`.
    #[must_use]
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut readers = vec![Vec::new(); n];
        for (id, node) in circuit.iter() {
            for &f in node.fanins() {
                readers[f.index()].push(id);
            }
        }
        let mut output_observers = vec![0u32; n];
        for out in circuit.outputs() {
            output_observers[out.node().index()] += 1;
        }
        FanoutMap {
            readers,
            output_observers,
        }
    }

    /// Gates reading `node` (one entry per fanin slot, so a gate using the
    /// node twice appears twice).
    #[must_use]
    pub fn readers(&self, node: NodeId) -> &[NodeId] {
        &self.readers[node.index()]
    }

    /// Logic fanout of `node`: number of gate fanin slots reading it.
    #[must_use]
    pub fn logic_fanout(&self, node: NodeId) -> usize {
        self.readers[node.index()].len()
    }

    /// Number of primary-output slots observing `node`.
    #[must_use]
    pub fn output_observers(&self, node: NodeId) -> usize {
        self.output_observers[node.index()] as usize
    }

    /// Total fanout including output observation.
    #[must_use]
    pub fn total_fanout(&self, node: NodeId) -> usize {
        self.logic_fanout(node) + self.output_observers(node)
    }

    /// Returns `true` if `node` is a *fanout stem*: its signal branches to
    /// more than one logic reader, so errors on it can reconverge downstream.
    #[must_use]
    pub fn is_stem(&self, node: NodeId) -> bool {
        self.logic_fanout(node) > 1
    }

    /// All fanout stems in the circuit, in topological order.
    #[must_use]
    pub fn stems(&self) -> Vec<NodeId> {
        (0..self.readers.len())
            .map(NodeId::from_index)
            .filter(|&id| self.is_stem(id))
            .collect()
    }

    /// Maximum logic fanout over all nodes (0 for an empty circuit).
    #[must_use]
    pub fn max_logic_fanout(&self) -> usize {
        self.readers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Nodes with no logic readers and no output observers (dead logic).
    #[must_use]
    pub fn dangling_nodes(&self) -> Vec<NodeId> {
        (0..self.readers.len())
            .map(NodeId::from_index)
            .filter(|&id| self.total_fanout(id) == 0)
            .collect()
    }
}

/// Computes the logic level of every node: inputs and constants are level 0,
/// a gate is one more than its deepest fanin.
#[must_use]
pub fn levels(circuit: &Circuit) -> Vec<u32> {
    let mut lv = vec![0u32; circuit.len()];
    for (id, node) in circuit.iter() {
        if node.kind().is_gate() {
            lv[id.index()] = 1 + node
                .fanins()
                .iter()
                .map(|f| lv[f.index()])
                .max()
                .unwrap_or(0);
        }
    }
    lv
}

/// The circuit's depth: the maximum level over all primary outputs
/// (0 if there are no outputs).
#[must_use]
pub fn depth(circuit: &Circuit) -> u32 {
    let lv = levels(circuit);
    circuit
        .outputs()
        .iter()
        .map(|o| lv[o.node().index()])
        .max()
        .unwrap_or(0)
}

/// Sum of per-output logic levels — the paper's "total levels of logic over
/// all the outputs" metric used in the Fig. 8 fanout study.
#[must_use]
pub fn total_output_levels(circuit: &Circuit) -> u64 {
    let lv = levels(circuit);
    circuit
        .outputs()
        .iter()
        .map(|o| u64::from(lv[o.node().index()]))
        .sum()
}

/// Returns the transitive fanin cone of `roots` (including the roots),
/// as a sorted, deduplicated list of node ids.
#[must_use]
pub fn transitive_fanin(circuit: &Circuit, roots: &[NodeId]) -> Vec<NodeId> {
    let mut in_cone = vec![false; circuit.len()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut in_cone[id.index()], true) {
            continue;
        }
        stack.extend(circuit.node(id).fanins().iter().copied());
    }
    (0..circuit.len())
        .map(NodeId::from_index)
        .filter(|id| in_cone[id.index()])
        .collect()
}

/// Number of logic gates in the transitive fanin cone of each output.
///
/// This is the paper's "cone size" metric (Fig. 6 quotes cones of 662 and
/// 1034 gates for two outputs of i10).
#[must_use]
pub fn output_cone_sizes(circuit: &Circuit) -> Vec<usize> {
    circuit
        .outputs()
        .iter()
        .map(|o| {
            transitive_fanin(circuit, &[o.node()])
                .iter()
                .filter(|&&id| circuit.node(id).kind().is_gate())
                .count()
        })
        .collect()
}

/// Extracts the logic cone feeding the given output slots into a fresh,
/// self-contained circuit.
///
/// Unused primary inputs are dropped; the returned map sends old node ids
/// to new ones.
///
/// # Panics
///
/// Panics if an output id is out of range for `circuit`.
#[must_use]
pub fn extract_cone(circuit: &Circuit, outputs: &[OutputId]) -> (Circuit, HashMap<NodeId, NodeId>) {
    let roots: Vec<NodeId> = outputs.iter().map(|&o| circuit.output(o).node()).collect();
    let cone = transitive_fanin(circuit, &roots);
    let mut sub = Circuit::new(format!("{}_cone", circuit.name()));
    let mut map: HashMap<NodeId, NodeId> = HashMap::with_capacity(cone.len());
    for &old in &cone {
        let node = circuit.node(old);
        let new = match node.kind() {
            GateKind::Input => {
                let name = circuit.display_name(old);
                sub.try_add_input(name)
                    .expect("input names unique in source")
            }
            GateKind::Const(v) => sub.add_const(v),
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f]).collect();
                let id = sub.add_gate(kind, fanins).expect("cone preserves arity");
                if let Some(name) = circuit.node_name(old) {
                    let _ = sub.set_node_name(id, name);
                }
                id
            }
        };
        map.insert(old, new);
    }
    for &o in outputs {
        let out = circuit.output(o);
        sub.add_output(out.name(), map[&out.node()]);
    }
    (sub, map)
}

/// Summary statistics of a circuit's structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total node count (inputs + constants + gates).
    pub nodes: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Logic gate count.
    pub gates: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Maximum logic level over outputs.
    pub depth: u32,
    /// Sum of per-output levels (paper's "total levels of logic").
    pub total_output_levels: u64,
    /// Maximum logic fanout over all nodes.
    pub max_fanout: usize,
    /// Number of fanout stems (logic fanout > 1).
    pub stems: usize,
    /// Gate-kind histogram as `(kind name, count)` pairs sorted by name.
    pub kind_histogram: Vec<(&'static str, usize)>,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        let fan = FanoutMap::build(circuit);
        let mut hist: HashMap<&'static str, usize> = HashMap::new();
        for (_, node) in circuit.iter() {
            if node.kind().is_gate() {
                *hist.entry(node.kind().name()).or_default() += 1;
            }
        }
        let mut kind_histogram: Vec<_> = hist.into_iter().collect();
        kind_histogram.sort_unstable();
        CircuitStats {
            nodes: circuit.len(),
            inputs: circuit.input_count(),
            gates: circuit.gate_count(),
            outputs: circuit.output_count(),
            depth: depth(circuit),
            total_output_levels: total_output_levels(circuit),
            max_fanout: fan.max_logic_fanout(),
            stems: fan.stems().len(),
            kind_histogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y1 = (a & b) | c with (a & b) also feeding y2 = (a & b) ^ c.
    fn reconvergent() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let o1 = c.or([g, x]);
        let o2 = c.xor([g, x]);
        c.add_output("y1", o1);
        c.add_output("y2", o2);
        c
    }

    #[test]
    fn levels_and_depth() {
        let c = reconvergent();
        let lv = levels(&c);
        assert_eq!(lv, vec![0, 0, 0, 1, 2, 2]);
        assert_eq!(depth(&c), 2);
        assert_eq!(total_output_levels(&c), 4);
    }

    #[test]
    fn fanout_map_identifies_stems() {
        let c = reconvergent();
        let fan = FanoutMap::build(&c);
        let g = NodeId::from_index(3);
        assert_eq!(fan.logic_fanout(g), 2);
        assert!(fan.is_stem(g));
        // inputs a,b feed only the AND gate
        assert!(!fan.is_stem(NodeId::from_index(0)));
        // input c feeds both OR and XOR: also a stem
        assert!(fan.is_stem(NodeId::from_index(2)));
        assert_eq!(fan.stems(), vec![NodeId::from_index(2), g]);
        assert_eq!(fan.max_logic_fanout(), 2);
        assert_eq!(fan.output_observers(NodeId::from_index(4)), 1);
        assert_eq!(fan.dangling_nodes(), Vec::<NodeId>::new());
    }

    #[test]
    fn duplicate_fanin_counts_twice() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.xor([a, a]);
        c.add_output("y", g);
        let fan = FanoutMap::build(&c);
        assert_eq!(fan.logic_fanout(a), 2);
        assert!(fan.is_stem(a));
    }

    #[test]
    fn transitive_fanin_of_one_output() {
        let c = reconvergent();
        let cone = transitive_fanin(&c, &[NodeId::from_index(4)]);
        let idx: Vec<usize> = cone.iter().map(|n| n.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cone_sizes_count_gates_only() {
        let c = reconvergent();
        assert_eq!(output_cone_sizes(&c), vec![2, 2]);
    }

    #[test]
    fn extract_cone_is_self_contained_and_equivalent() {
        let c = reconvergent();
        let (sub, map) = extract_cone(&c, &[OutputId::from_index(1)]);
        assert_eq!(sub.output_count(), 1);
        assert_eq!(sub.input_count(), 3);
        assert!(sub.validate().is_ok());
        assert!(map.len() == 5);
        for a in [false, true] {
            for b in [false, true] {
                for x in [false, true] {
                    assert_eq!(c.eval(&[a, b, x])[1], sub.eval(&[a, b, x])[0]);
                }
            }
        }
    }

    #[test]
    fn extract_cone_drops_unused_inputs() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let _unused = c.add_input("u");
        let g = c.not(a);
        c.add_output("y", g);
        let (sub, _) = extract_cone(&c, &[OutputId::from_index(0)]);
        assert_eq!(sub.input_count(), 1);
        assert_eq!(sub.eval(&[true]), vec![false]);
    }

    #[test]
    fn stats_summary() {
        let c = reconvergent();
        let s = CircuitStats::of(&c);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.inputs, 3);
        assert_eq!(s.gates, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.depth, 2);
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.stems, 2);
        assert_eq!(s.kind_histogram, vec![("and", 1), ("or", 1), ("xor", 1)]);
    }

    #[test]
    fn dangling_detection() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let _dead = c.not(a);
        let live = c.buf(a);
        c.add_output("y", live);
        let fan = FanoutMap::build(&c);
        assert_eq!(fan.dangling_nodes(), vec![NodeId::from_index(1)]);
    }
}
