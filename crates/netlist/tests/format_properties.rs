//! Property tests: textual format round-trips preserve function on random
//! circuits, and structural analyses satisfy their invariants.

use proptest::prelude::*;
use relogic_netlist::{bench, blif, structure, verilog, Circuit, GateKind, NodeId};

/// Builds a random circuit directly (no dependency on relogic-gen, which
/// would be a dev-dependency cycle).
fn random_circuit(ops: &[(u8, u8, u8)], inputs: usize, outputs: usize) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..inputs {
        c.add_input(format!("x{i}"));
    }
    for &(kind, a, b) in ops {
        let len = c.len();
        let fa = NodeId::from_index(a as usize % len);
        let fb = NodeId::from_index(b as usize % len);
        let kind = GateKind::LOGIC_KINDS[kind as usize % GateKind::LOGIC_KINDS.len()];
        match kind {
            GateKind::Buf | GateKind::Not => {
                c.add_gate(kind, [fa]).unwrap();
            }
            _ => {
                c.add_gate(kind, [fa, fb]).unwrap();
            }
        }
    }
    let n = c.len();
    for k in 0..outputs {
        c.add_output(format!("po{k}"), NodeId::from_index(n - 1 - (k % n)));
    }
    c
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
        1usize..5,
        1usize..4,
    )
        .prop_map(|(ops, inputs, outputs)| random_circuit(&ops, inputs, outputs))
}

fn equivalent(a: &Circuit, b: &Circuit) -> bool {
    assert!(a.input_count() <= 8);
    (0..1usize << a.input_count()).all(|v| {
        let bits: Vec<bool> = (0..a.input_count()).map(|j| v >> j & 1 != 0).collect();
        a.eval(&bits) == b.eval(&bits)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bench_roundtrip_preserves_function(c in arb_circuit()) {
        let text = bench::write(&c);
        let back = bench::parse(&text).expect("own output parses");
        prop_assert_eq!(c.input_count(), back.input_count());
        prop_assert_eq!(c.output_count(), back.output_count());
        prop_assert!(equivalent(&c, &back));
    }

    #[test]
    fn blif_roundtrip_preserves_function(c in arb_circuit()) {
        let text = blif::write(&c);
        let back = blif::parse(&text).expect("own output parses");
        prop_assert!(equivalent(&c, &back));
    }

    #[test]
    fn verilog_roundtrip_preserves_function(c in arb_circuit()) {
        let text = verilog::write(&c);
        let back = verilog::parse(&text).expect("own output parses");
        prop_assert_eq!(c.input_count(), back.input_count());
        prop_assert_eq!(c.output_count(), back.output_count());
        prop_assert!(equivalent(&c, &back));
    }

    #[test]
    fn cross_format_conversions_agree(c in arb_circuit()) {
        // bench → blif → verilog → bench keeps the function intact.
        let via_blif = blif::parse(&blif::write(&c)).expect("blif");
        let via_verilog = verilog::parse(&verilog::write(&via_blif)).expect("verilog");
        let back = bench::parse(&bench::write(&via_verilog)).expect("bench");
        prop_assert!(equivalent(&c, &back));
    }

    #[test]
    fn levels_respect_fanin_order(c in arb_circuit()) {
        let lv = structure::levels(&c);
        for (id, node) in c.iter() {
            for &f in node.fanins() {
                prop_assert!(lv[f.index()] < lv[id.index()]);
            }
        }
    }

    #[test]
    fn cone_extraction_is_equivalent(c in arb_circuit()) {
        use relogic_netlist::OutputId;
        let (sub, _) = structure::extract_cone(&c, &[OutputId::from_index(0)]);
        prop_assert!(sub.validate().is_ok());
        // The cone keeps only needed inputs; evaluate via name matching.
        for v in 0..1usize << c.input_count() {
            let bits: Vec<bool> = (0..c.input_count()).map(|j| v >> j & 1 != 0).collect();
            let full = c.eval(&bits)[0];
            let sub_bits: Vec<bool> = sub
                .inputs()
                .iter()
                .map(|&i| {
                    let name = sub.node_name(i).expect("inputs named");
                    let pos = c.find(name).and_then(|n| c.input_position(n)).expect("same input");
                    bits[pos]
                })
                .collect();
            prop_assert_eq!(full, sub.eval(&sub_bits)[0]);
        }
    }

    #[test]
    fn fanout_totals_match_edge_count(c in arb_circuit()) {
        let fan = structure::FanoutMap::build(&c);
        let total_edges: usize = c.iter().map(|(_, n)| n.arity()).sum();
        let total_fanout: usize = c
            .node_ids()
            .map(|id| fan.logic_fanout(id))
            .sum();
        prop_assert_eq!(total_edges, total_fanout);
    }

    #[test]
    fn eval_all_is_consistent_with_eval(c in arb_circuit()) {
        for v in 0..1usize << c.input_count().min(6) {
            let bits: Vec<bool> = (0..c.input_count()).map(|j| v >> j & 1 != 0).collect();
            let all = c.eval_all(&bits);
            let outs = c.eval(&bits);
            for (k, o) in c.outputs().iter().enumerate() {
                prop_assert_eq!(outs[k], all[o.node().index()]);
            }
        }
    }
}
