//! Result-object builders shared by the daemon and the CLI's `--json`
//! output.
//!
//! Both surfaces call these functions with the same inputs and encode the
//! returned [`Json`] with the same encoder, so a script migrating from
//! `relogic-cli analyze --json` to the socket protocol parses an identical
//! schema — the only divergence is the `"cache"` member the caller appends
//! (`"hit"`/`"miss"` on the server, `"bypass"` on the one-shot CLI).

use crate::json::Json;
use crate::proto::{AnalyzeRequestOptions, ServeError};
use relogic::{CancelToken, GateEps, ObservabilityMatrix, SinglePass, Weights};
use relogic_estimate::{CriticalEpsReport, EstimateReport, HardenReport, ParetoPoint};
use relogic_netlist::Circuit;
use relogic_sim::MonteCarloConfig;

fn output_names(circuit: &Circuit) -> Json {
    Json::Arr(
        circuit
            .outputs()
            .iter()
            .map(|o| Json::from(o.name()))
            .collect(),
    )
}

fn delta_array(deltas: &[f64]) -> Json {
    Json::Arr(deltas.iter().map(|&d| Json::Num(d)).collect())
}

fn diagnostics_json(d: &relogic::Diagnostics) -> Json {
    Json::obj([
        ("prob_clamps", Json::from(d.prob_clamps())),
        ("coeff_saturations", Json::from(d.coeff_saturations())),
        ("theta_clamps", Json::from(d.theta_clamps())),
        (
            "correlation_fallbacks",
            Json::from(d.correlation_fallbacks()),
        ),
        ("worst_excursion", Json::Num(d.worst_excursion())),
    ])
}

/// Runs the §4/§4.1 single-pass engine at each ε point and builds the
/// `analyze` result object.
///
/// # Errors
///
/// Propagates engine errors ([`relogic::RelogicError`]) as typed
/// [`ServeError`]s.
pub fn analyze_result(
    circuit: &Circuit,
    weights: &Weights,
    eps: &[f64],
    options: &AnalyzeRequestOptions,
) -> Result<Json, ServeError> {
    analyze_result_cancellable(circuit, weights, eps, options, &CancelToken::new())
}

/// Like [`analyze_result`], but polls `cancel` between ε points so a
/// multi-point sweep unwinds promptly on a fired deadline. A run that
/// completes produces exactly the same object as [`analyze_result`].
///
/// # Errors
///
/// Engine errors, plus [`ServeError::DeadlineExceeded`] when the token
/// fires between points (site `"analyze_point"`) or inside the engine.
pub fn analyze_result_cancellable(
    circuit: &Circuit,
    weights: &Weights,
    eps: &[f64],
    options: &AnalyzeRequestOptions,
    cancel: &CancelToken,
) -> Result<Json, ServeError> {
    let engine = SinglePass::try_new(circuit, weights, options.single_pass.clone())
        .map_err(ServeError::from)?;
    let mut diagnostics = relogic::Diagnostics::new();
    let mut points = Vec::with_capacity(eps.len());
    for &e in eps {
        cancel
            .check("analyze_point")
            .map_err(relogic::RelogicError::from)
            .map_err(ServeError::from)?;
        let gate_eps = GateEps::try_uniform(circuit, e).map_err(ServeError::from)?;
        let result = engine.try_run(&gate_eps).map_err(ServeError::from)?;
        let mut point = Json::obj([
            ("eps", Json::Num(e)),
            ("delta", delta_array(result.per_output())),
        ]);
        if options.per_node {
            let nodes: Vec<Json> = circuit
                .iter()
                .filter(|(_, node)| node.kind().is_gate())
                .map(|(id, _)| {
                    Json::obj([
                        ("node", Json::from(circuit.display_name(id))),
                        ("p01", Json::Num(result.p01(id))),
                        ("p10", Json::Num(result.p10(id))),
                        ("delta", Json::Num(result.node_delta(id))),
                    ])
                })
                .collect();
            point.push("per_node", Json::Arr(nodes));
        }
        points.push(point);
        diagnostics.merge(result.diagnostics());
    }
    let mut result = Json::obj([
        ("outputs", output_names(circuit)),
        ("points", Json::Arr(points)),
    ]);
    if options.diagnostics {
        result.push("diagnostics", diagnostics_json(&diagnostics));
    }
    Ok(result)
}

/// Evaluates the §3 closed form at each ε point and builds the
/// `observability` result object.
///
/// # Errors
///
/// Propagates ε-validation errors as typed [`ServeError`]s.
pub fn observability_result(
    circuit: &Circuit,
    observability: &ObservabilityMatrix,
    eps: &[f64],
    per_gate: bool,
) -> Result<Json, ServeError> {
    let mut points = Vec::with_capacity(eps.len());
    for &e in eps {
        let gate_eps = GateEps::try_uniform(circuit, e).map_err(ServeError::from)?;
        points.push(Json::obj([
            ("eps", Json::Num(e)),
            ("delta", delta_array(&observability.closed_form(&gate_eps))),
        ]));
    }
    let mut result = Json::obj([
        ("outputs", output_names(circuit)),
        ("points", Json::Arr(points)),
    ]);
    if per_gate {
        let gates: Vec<Json> = circuit
            .iter()
            .filter(|(_, node)| node.kind().is_gate())
            .map(|(id, _)| {
                Json::obj([
                    ("node", Json::from(circuit.display_name(id))),
                    ("observability", Json::Num(observability.any(id))),
                ])
            })
            .collect();
        result.push("per_gate", Json::Arr(gates));
    }
    Ok(result)
}

/// Runs the deterministic chunk-seeded Monte Carlo reference and builds
/// the `monte_carlo` result object. Same seed ⇒ bit-identical result for
/// any thread count or client interleaving.
///
/// # Errors
///
/// Propagates simulator errors ([`relogic_sim::SimError`]) as typed
/// [`ServeError`]s.
pub fn monte_carlo_result(
    circuit: &Circuit,
    eps: f64,
    config: &MonteCarloConfig,
) -> Result<Json, ServeError> {
    let gate_eps = GateEps::try_uniform(circuit, eps).map_err(ServeError::from)?;
    let estimate = relogic_sim::try_estimate(circuit, gate_eps.as_slice(), config)
        .map_err(ServeError::from)?;
    monte_carlo_json(circuit, eps, config, &estimate)
}

/// Like [`monte_carlo_result`], but runs the compiled tape engine against
/// a pre-compiled [`relogic_sim::CircuitTape`] (e.g. one cached on a serve
/// artifact). Same JSON shape; the numbers come from the tape engine's
/// position-based RNG stream, matching the CLI's default engine.
///
/// # Errors
///
/// Any validation error of the ε value or Monte Carlo configuration.
pub fn monte_carlo_result_tape(
    circuit: &Circuit,
    tape: &relogic_sim::CircuitTape,
    eps: f64,
    config: &MonteCarloConfig,
) -> Result<Json, ServeError> {
    monte_carlo_result_tape_cancellable(circuit, tape, eps, config, &CancelToken::new())
}

/// Like [`monte_carlo_result_tape`], but the tape engine polls `cancel`
/// at every chunk hand-out. Completed runs are bit-identical to
/// [`monte_carlo_result_tape`] — the token never alters the RNG stream or
/// the merge order, only whether an answer is produced.
///
/// # Errors
///
/// Validation errors, plus [`ServeError::DeadlineExceeded`] when the
/// token fires mid-simulation.
pub fn monte_carlo_result_tape_cancellable(
    circuit: &Circuit,
    tape: &relogic_sim::CircuitTape,
    eps: f64,
    config: &MonteCarloConfig,
    cancel: &CancelToken,
) -> Result<Json, ServeError> {
    let gate_eps = GateEps::try_uniform(circuit, eps).map_err(ServeError::from)?;
    let estimate = relogic_sim::try_estimate_tape_cancellable(
        circuit,
        tape,
        gate_eps.as_slice(),
        config,
        relogic_sim::DEFAULT_LANES,
        cancel,
    )
    .map_err(ServeError::from)?;
    monte_carlo_json(circuit, eps, config, &estimate)
}

/// Builds the `estimate` result object from a tiered-estimation report:
/// which tier answered, why, the per-output δ it produced, and (when the
/// Monte Carlo tier refined a saturated estimate) the propagation deltas
/// it replaced.
#[must_use]
pub fn estimate_result(circuit: &Circuit, eps: f64, report: &EstimateReport) -> Json {
    let mut result = Json::obj([
        ("eps", Json::Num(eps)),
        ("tier", Json::from(report.tier.name())),
        ("reason", Json::from(report.reason.as_str())),
        ("outputs", output_names(circuit)),
        ("delta", delta_array(&report.per_output)),
        (
            "estimator_fallbacks",
            Json::from(report.diagnostics.estimator_fallbacks()),
        ),
    ]);
    if let Some(prop) = &report.propagation {
        result.push("propagation", delta_array(prop));
    }
    result
}

fn pareto_point_json(point: &ParetoPoint) -> Json {
    Json::obj([
        ("protected", Json::from(point.protected)),
        ("gates", Json::from(point.gates)),
        ("area_ratio", Json::Num(point.area_ratio)),
        ("mean_delta", Json::Num(point.mean_delta)),
        ("max_delta", Json::Num(point.max_delta)),
    ])
}

/// Builds the `harden` result object: the unprotected baseline, every
/// evaluated TMR candidate, the non-dominated reliability-per-area front,
/// and the gate protection order with criticalities.
#[must_use]
pub fn harden_result(circuit: &Circuit, eps: f64, area_budget: f64, report: &HardenReport) -> Json {
    let points = |ps: &[ParetoPoint]| Json::Arr(ps.iter().map(pareto_point_json).collect());
    let ranking: Vec<Json> = report
        .ranking
        .iter()
        .map(|&(id, criticality)| {
            Json::obj([
                ("node", Json::from(circuit.display_name(id))),
                ("criticality", Json::Num(criticality)),
            ])
        })
        .collect();
    Json::obj([
        ("eps", Json::Num(eps)),
        ("area_budget", Json::Num(area_budget)),
        ("baseline", pareto_point_json(&report.baseline)),
        ("evaluated", points(&report.evaluated)),
        ("front", points(&report.front)),
        ("ranking", Json::Arr(ranking)),
    ])
}

/// Builds the `critical_eps` result object: whether δ crosses the
/// threshold in `ε ∈ [0, ½]`, the bisected critical ε (or null), and the
/// final bracket.
#[must_use]
pub fn critical_eps_result(circuit: &Circuit, report: &CriticalEpsReport) -> Json {
    Json::obj([
        ("metric", Json::from(report.metric.name())),
        ("threshold", Json::Num(report.threshold)),
        ("outputs", output_names(circuit)),
        ("crossed", Json::from(report.crossed)),
        ("critical", report.critical.map_or(Json::Null, Json::Num)),
        ("lo", Json::Num(report.lo)),
        ("hi", Json::Num(report.hi)),
        ("delta_lo", Json::Num(report.delta_lo)),
        ("delta_hi", Json::Num(report.delta_hi)),
        ("steps", Json::from(report.steps)),
    ])
}

fn monte_carlo_json(
    circuit: &Circuit,
    eps: f64,
    config: &MonteCarloConfig,
    estimate: &relogic_sim::ReliabilityEstimate,
) -> Result<Json, ServeError> {
    let std_errors: Vec<Json> = (0..circuit.output_count())
        .map(|k| Json::Num(estimate.std_error(k)))
        .collect();
    Ok(Json::obj([
        ("eps", Json::Num(eps)),
        ("patterns", Json::from(estimate.patterns())),
        ("seed", Json::from(config.seed)),
        ("outputs", output_names(circuit)),
        ("delta", delta_array(estimate.per_output())),
        ("std_error", Json::Arr(std_errors)),
        ("any_output", Json::Num(estimate.any_output())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relogic::{Backend, InputDistribution, SinglePassOptions};

    fn small() -> Circuit {
        relogic_netlist::bench::parse("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = NAND(a, b)\ny = NOT(t)\n")
            .unwrap()
    }

    fn options() -> AnalyzeRequestOptions {
        AnalyzeRequestOptions {
            single_pass: SinglePassOptions::default(),
            diagnostics: false,
            per_node: false,
        }
    }

    #[test]
    fn analyze_result_shape_and_values() {
        let c = small();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let r = analyze_result(&c, &w, &[0.1], &options()).unwrap();
        let points = r.get("points").and_then(Json::as_array).unwrap();
        assert_eq!(points.len(), 1);
        let delta = points[0].get("delta").and_then(Json::as_array).unwrap();
        // Two noisy gates in series: δ = 2·0.1·0.9 = 0.18.
        assert!((delta[0].as_f64().unwrap() - 0.18).abs() < 1e-12);
        assert!(r.get("diagnostics").is_none());
    }

    #[test]
    fn analyze_per_node_and_diagnostics_sections() {
        let c = small();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let mut opts = options();
        opts.per_node = true;
        opts.diagnostics = true;
        let r = analyze_result(&c, &w, &[0.05, 0.1], &opts).unwrap();
        let points = r.get("points").and_then(Json::as_array).unwrap();
        assert_eq!(points.len(), 2);
        let per_node = points[0].get("per_node").and_then(Json::as_array).unwrap();
        assert_eq!(per_node.len(), 2, "two gates");
        assert!(r.get("diagnostics").is_some());
    }

    #[test]
    fn observability_result_matches_closed_form() {
        let c = small();
        let obs = ObservabilityMatrix::try_compute(&c, &InputDistribution::Uniform, Backend::Bdd)
            .unwrap();
        let r = observability_result(&c, &obs, &[0.1], true).unwrap();
        let points = r.get("points").and_then(Json::as_array).unwrap();
        let delta = points[0].get("delta").and_then(Json::as_array).unwrap();
        let expected = obs.closed_form(&GateEps::try_uniform(&c, 0.1).unwrap());
        assert_eq!(delta[0].as_f64().unwrap(), expected[0]);
        assert!(r.get("per_gate").is_some());
    }

    #[test]
    fn monte_carlo_result_is_deterministic() {
        let c = small();
        let cfg = MonteCarloConfig {
            patterns: 4096,
            seed: 11,
            ..MonteCarloConfig::default()
        };
        let a = monte_carlo_result(&c, 0.1, &cfg).unwrap().encode();
        let mut cfg2 = cfg.clone();
        cfg2.threads = 7;
        let b = monte_carlo_result(&c, 0.1, &cfg2).unwrap().encode();
        assert_eq!(a, b, "thread count must not change the estimate");
    }

    #[test]
    fn invalid_eps_is_a_typed_analysis_error() {
        let c = small();
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let err = analyze_result(&c, &w, &[1.5], &options()).unwrap_err();
        assert_eq!(err.code(), "analysis_error");
    }
}
